//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly). A poisoned std
//! lock — a panic while holding the guard — is recovered by taking the
//! inner data, matching `parking_lot`'s "no poisoning" semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with the `parking_lot::Mutex` API subset.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock` API subset.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let l = std::sync::Arc::new(RwLock::new(0u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison");
        })
        .join();
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
