//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *minimal* subset of the `rand` 0.8 API it actually uses:
//! [`RngCore`], [`Rng`] (`gen_bool`, `gen_range`), [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is SplitMix64 — statistically fine for simulation and
//! test-data purposes, deterministic per seed, and obviously **not**
//! cryptographic. Key material derived from it in this repository is
//! simulated to begin with (see `fabric-crypto`).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A type that can be sampled uniformly from an integer range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)` (`high > low`).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        // 53 uniform mantissa bits, as rand does.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Slice shuffling and sampling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(
            StdRng::seed_from_u64(1).next_u64(),
            StdRng::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=6);
            assert!((5..=6).contains(&w));
            let s = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((700..1300).contains(&hits), "suspicious bias: {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
