//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest's API this workspace uses: the
//! [`Strategy`] trait with `prop_map`, integer-range / tuple / regex-string
//! strategies, [`collection::vec`], [`option::of`], [`arbitrary::any`],
//! [`test_runner::ProptestConfig`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs (via the assert
//!   message and `Debug`-formatted bindings) but is not minimized;
//! * **deterministic** — the RNG is seeded from the test name, so a
//!   failure always reproduces;
//! * the regex strategy supports the subset used here: literal characters,
//!   `.`, character classes `[a-zA-Z0-9 _.-]` (with ranges), and the
//!   quantifiers `*`, `+`, `?`, `{n}`, `{m,n}`.

pub mod test_runner {
    //! Test configuration and the deterministic RNG.

    /// Configuration for a `proptest!` block (subset of proptest's).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator used for all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a), so each test has
        /// a stable, reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x1_0000_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform `usize` in `[low, high)`.
        pub fn usize_in(&mut self, low: usize, high: usize) -> usize {
            assert!(low < high, "empty range");
            low + self.below((high - low) as u64) as usize
        }

        /// Returns `true` with probability `num/den`.
        pub fn ratio(&mut self, num: u64, den: u64) -> bool {
            self.below(den) < num
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A generator of values of one type (no shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A weighted union of strategies producing the same value type; each
    /// generation picks one arm with probability proportional to its
    /// weight. Backs the [`prop_oneof!`](crate::prop_oneof) macro.
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// If `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(
                arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
                "prop_oneof needs at least one arm with nonzero weight"
            );
            Union { arms }
        }
    }

    /// Boxes a strategy, fixing the trait object's `Value` to the input
    /// strategy's own value type (used by `prop_oneof!` so arm types — not
    /// integer-literal defaulting at the use site — drive inference).
    #[doc(hidden)]
    pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(strategy)
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (weight, strategy) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strategy.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("pick < total by construction")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (*self.start() as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Regex-subset string strategy: `"[a-z]{1,8}"`, `".*"`, literals.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod string {
    //! Generation from a regex subset.

    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Any,
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Characters `.` draws from: mostly printable ASCII, plus characters
    /// that exercise escaping and multi-byte handling.
    const ANY_EXTRAS: [char; 8] = ['"', '\\', '\n', '\t', 'é', 'λ', '√', '😀'];

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut pieces = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
                '[' => {
                    let mut members: Vec<char> = Vec::new();
                    for m in chars.by_ref() {
                        if m == ']' {
                            break;
                        }
                        members.push(m);
                    }
                    let mut ranges = Vec::new();
                    let mut i = 0;
                    while i < members.len() {
                        if i + 2 < members.len() && members[i + 1] == '-' {
                            ranges.push((members[i], members[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((members[i], members[i]));
                            i += 1;
                        }
                    }
                    Atom::Class(ranges)
                }
                other => Atom::Literal(other),
            };
            let (min, max) = match chars.peek() {
                Some('*') => {
                    chars.next();
                    (0, 16)
                }
                Some('+') => {
                    chars.next();
                    (1, 16)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for m in chars.by_ref() {
                        if m == '}' {
                            break;
                        }
                        spec.push(m);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => {
                            let lo: usize = lo.trim().parse().unwrap_or(0);
                            let hi: usize = hi.trim().parse().unwrap_or(lo + 8);
                            (lo, hi)
                        }
                        None => {
                            let n: usize = spec.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Any => {
                if rng.ratio(1, 8) {
                    ANY_EXTRAS[rng.below(ANY_EXTRAS.len() as u64) as usize]
                } else {
                    // Printable ASCII, space through tilde.
                    char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('x')
                }
            }
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| u64::from(*hi as u32) - u64::from(*lo as u32) + 1)
                    .sum();
                let mut pick = rng.below(total.max(1));
                for (lo, hi) in ranges {
                    let span = u64::from(*hi as u32) - u64::from(*lo as u32) + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                    }
                    pick -= span;
                }
                'x'
            }
        }
    }

    /// Generates one string matching `pattern` (regex subset).
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = if piece.min >= piece.max {
                piece.min
            } else {
                piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize
            };
            for _ in 0..count {
                out.push(gen_char(&piece.atom, rng));
            }
        }
        out
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy for an [`Arbitrary`] type; returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> std::fmt::Debug for Any<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("any")
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Mix edge values in at ~1/16 to probe boundaries.
                    if rng.ratio(1, 16) {
                        match rng.below(4) {
                            0 => 0 as $t,
                            1 => <$t>::MAX,
                            2 => <$t>::MIN,
                            _ => 1 as $t,
                        }
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.below(2) == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.ratio(1, 8) {
                ['\0', '"', '\\', '\n', 'é', 'λ', '😀', '\u{7f}'][rng.below(8) as usize]
            } else {
                char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('x')
            }
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let len = rng.below(24) as usize;
            (0..len).map(|_| char::arbitrary(rng)).collect()
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let len = rng.below(24) as usize;
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.ratio(1, 4) {
                None
            } else {
                Some(T::arbitrary(rng))
            }
        }
    }

    impl<K: Arbitrary + Ord, V: Arbitrary> Arbitrary for BTreeMap<K, V> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let len = rng.below(12) as usize;
            (0..len)
                .map(|_| (K::arbitrary(rng), V::arbitrary(rng)))
                .collect()
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }

    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive size specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        /// `(min, max)` with `max` exclusive.
        pub(crate) fn bounds(&self) -> (usize, usize) {
            (self.min, self.max)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element` (proptest's
    /// `collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.min + 1 >= self.size.max {
                self.size.min
            } else {
                rng.usize_in(self.size.min, self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (proptest's `option::of`).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Yields `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.ratio(1, 4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling strategies over fixed collections.

    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for order-preserving subsequences of a fixed vector (see
    /// [`subsequence`]).
    #[derive(Debug, Clone)]
    pub struct SubsequenceStrategy<T: Clone> {
        values: Vec<T>,
        size: SizeRange,
    }

    /// Generates subsequences of `values` whose length is drawn from
    /// `size`, preserving the original element order (proptest's
    /// `sample::subsequence`).
    pub fn subsequence<T: Clone>(
        values: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> SubsequenceStrategy<T> {
        let size = size.into();
        let (min, max) = size.bounds();
        assert!(min < max, "empty subsequence size range");
        assert!(
            max <= values.len() + 1,
            "subsequence size range exceeds the {} source values",
            values.len()
        );
        SubsequenceStrategy { values, size }
    }

    impl<T: Clone> Strategy for SubsequenceStrategy<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let (min, max) = self.size.bounds();
            let len = if min + 1 >= max {
                min
            } else {
                rng.usize_in(min, max)
            };
            // Floyd's sampling: `len` distinct indices, then emit them in
            // source order to preserve the subsequence property.
            let n = self.values.len();
            let mut picked = vec![false; n];
            for j in n - len..n {
                let t = rng.usize_in(0, j + 1);
                if picked[t] {
                    picked[j] = true;
                } else {
                    picked[t] = true;
                }
            }
            (0..n)
                .filter(|&i| picked[i])
                .map(|i| self.values[i].clone())
                .collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test needs in scope.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted choice between strategies of one value type: arms are either
/// `weight => strategy` or bare strategies (weight 1). Expands to a
/// [`strategy::Union`].
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Asserts a condition inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests. Supports proptest's two parameter styles —
/// `name: Type` (uses [`arbitrary::any`]) and `name in strategy` — plus an
/// optional leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident ($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_bind! { __rng, $($params)* }
                $body
            }
        }
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        $crate::__proptest_bind! { $rng, $name: $ty, }
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn typed_params(v: u64, flag: bool) {
            let _ = (v, flag);
        }

        #[test]
        fn in_params(x in 3u32..7, s in "[a-z]{1,8}") {
            assert!((3..7).contains(&x));
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn combinators(pairs in crate::collection::vec(("[A-Z]{2}", 0u64..5), 0..6)) {
            assert!(pairs.len() < 6);
            for (k, v) in &pairs {
                assert_eq!(k.len(), 2);
                assert!(*v < 5);
            }
        }

        #[test]
        fn option_and_map(v in crate::option::of((0u64..10, 0u64..10).prop_map(|(a, b)| a + b))) {
            if let Some(total) = v {
                assert!(total < 20);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn oneof_respects_arm_ranges(v in prop_oneof![
            3 => (0u32..10).prop_map(|x| x),
            1 => 100u32..110,
        ]) {
            assert!(v < 10 || (100..110).contains(&v));
        }

        #[test]
        fn subsequence_preserves_order_and_size(
            s in crate::sample::subsequence(vec![1u8, 2, 3, 4, 5], 1..=5)
        ) {
            assert!((1..=5).contains(&s.len()));
            assert!(s.windows(2).all(|w| w[0] < w[1]), "not a subsequence: {s:?}");
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::from_name("oneof_arms");
        let strategy = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(strategy.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3, "arms never chosen: {seen:?}");
    }

    #[test]
    fn subsequence_spans_all_sizes() {
        let mut rng = TestRng::from_name("subseq_sizes");
        let strategy = crate::sample::subsequence(vec![0usize, 1, 2], 0..=3);
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..128 {
            lens.insert(strategy.generate(&mut rng).len());
        }
        assert_eq!(lens.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dot_star_generates_varied_strings() {
        let mut rng = TestRng::from_name("dot_star");
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..64 {
            lens.insert(crate::string::generate_from_pattern(".*", &mut rng).len());
        }
        assert!(lens.len() > 3, "degenerate .* lengths: {lens:?}");
    }

    #[test]
    fn class_with_trailing_dash() {
        let mut rng = TestRng::from_name("class");
        for _ in 0..64 {
            let s = crate::string::generate_from_pattern("[a-zA-Z0-9 _.-]{0,16}", &mut rng);
            assert!(s.len() <= 16);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.-".contains(c)));
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
