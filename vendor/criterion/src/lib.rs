//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `iter` /
//! `iter_batched`, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple wall-clock timing loop.
//! There is no statistical analysis, outlier rejection, or HTML report:
//! each benchmark runs a warm-up pass plus `sample_size` timed samples
//! and prints the median per-iteration time.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample iteration count picker: aim each sample at ~2ms of work.
const TARGET_SAMPLE: Duration = Duration::from_millis(2);

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup (accepted, not acted on).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations to run per timed sample.
    iters: u64,
    /// Total elapsed across the sample, set by `iter*`.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// A named set of related benchmarks. Borrows the [`Criterion`] driver
/// mutably for its lifetime, matching real criterion's signature.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let median = run_samples(self.sample_size, &mut f);
        report(&self.name, &id.id, median, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Runs warm-up, calibrates iterations per sample, and returns the median
/// per-iteration time.
fn run_samples<F: FnMut(&mut Bencher)>(sample_size: usize, f: &mut F) -> Duration {
    // Warm-up / calibration: find an iteration count filling TARGET_SAMPLE.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
            break;
        }
        iters = if b.elapsed.is_zero() {
            iters * 16
        } else {
            let scale = TARGET_SAMPLE.as_nanos() / b.elapsed.as_nanos().max(1) + 1;
            (iters.saturating_mul(scale.min(64) as u64)).max(iters + 1)
        };
    }
    let mut samples: Vec<Duration> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed / iters as u32
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn report(group: &str, id: &str, median: Duration, throughput: Option<Throughput>) {
    let per_iter = median.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>10.0} elem/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("{group}/{id:<40} {median:>12.2?}/iter{rate}");
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let median = run_samples(10, &mut f);
        report("bench", id, median, None);
        self
    }
}

/// Declares a group of benchmark functions (criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point (criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(64));
        let mut count = 0u64;
        group.bench_function("add", |b| b.iter(|| count = count.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut b = Bencher {
            iters: 4,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.elapsed < Duration::from_secs(1));
    }
}
