//! Observability end-to-end: one shared [`Telemetry`] pipeline attached to
//! a whole network, driven through the secured-trade workflow, then dumped
//! as a Prometheus text exposition, a span-tree flamegraph report, and the
//! security-audit event log.
//!
//! Run with `cargo run -p fabric-pdc --example telemetry`; pass `--smoke`
//! for the abbreviated CI variant (metrics dump only).

use fabric_pdc::prelude::*;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // One telemetry pipeline; every peer and the orderer report into it.
    let telemetry = Telemetry::new();
    let mut net = NetworkBuilder::new("trade-channel")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(4)
        .with_telemetry(telemetry.clone())
        .build();

    let definition = ChaincodeDefinition::new("trade")
        .with_endorsement_policy("ANY Endorsement")
        .with_collection(
            CollectionConfig::membership_of("sellerCollection", &[OrgId::new("Org1MSP")])
                .with_endorsement_policy("OR('Org1MSP.peer')"),
        );
    net.deploy_chaincode(definition, Arc::new(SecuredTrade::new("sellerCollection")));

    // The secured-trade workflow: the seller offers assets (appraisals
    // travel in the transient map), the buyer verifies one claim against
    // the on-chain hash at its own peer.
    for (asset, appraisal) in [
        ("asset1", "appraised-at-9500-USD"),
        ("asset2", "appraised-at-120-USD"),
        ("asset3", "appraised-at-88000-USD"),
    ] {
        let outcome = net.submit_transaction(
            "client0.org1",
            "trade",
            "offer",
            &[asset],
            &[("appraisal", appraisal.as_bytes())],
            &["peer0.org1"],
        )?;
        assert!(outcome.validation_code.is_valid());
    }
    let mut buyer = Client::new(
        "Org2MSP",
        Keypair::generate_from_seed(77),
        DefenseConfig::original(),
    );
    let proposal = buyer.create_proposal(
        net.channel().clone(),
        ChaincodeId::new("trade"),
        "verify",
        vec![b"asset1".to_vec()],
        [("claimed".to_string(), b"appraised-at-9500-USD".to_vec())]
            .into_iter()
            .collect(),
    );
    net.endorse("peer0.org2", &proposal)?;

    // 1. Metrics, Prometheus text exposition format.
    println!("== metrics (Prometheus text format) ==");
    print!("{}", telemetry.metrics().render_prometheus());

    if smoke {
        return Ok(());
    }

    // 2. Spans, rendered as a flamegraph-style tree per root span.
    println!("\n== span tree (per-stage timings) ==");
    print!(
        "{}",
        telemetry.trace().expect("in-memory sink").render_tree()
    );

    // 2b. The same spans as Chrome-trace/Perfetto JSON and JSON-lines
    //     (see the `trace_tx` example for the per-transaction view).
    let records = telemetry.trace().expect("in-memory sink").records();
    println!("\n== chrome trace (load in ui.perfetto.dev) ==");
    println!("{}", render_chrome_trace(&records));
    println!("== spans, JSON-lines ==");
    print!("{}", render_spans_jsonl(&records));

    // 3. Security-audit events. The workflow ran with the original (no
    //    defenses) configuration, so the offers' public response payloads
    //    committed in plaintext — exactly the paper's Use Case 3 signal.
    println!("\n== security-audit events ==");
    for event in telemetry.audit().events() {
        println!("{event}");
    }
    println!(
        "\n{} spans, {} audit events, metrics JSON snapshot: {} bytes",
        telemetry.trace().expect("sink").len(),
        telemetry.audit().len(),
        telemetry.metrics().render_json().len()
    );
    Ok(())
}
