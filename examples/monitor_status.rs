//! Online monitoring and alerting over the attack lab.
//!
//! The attack lab wires the full observability stack: a telemetry
//! pipeline with a flight recorder, and a streaming [`Monitor`] the
//! network ticks once per delivered block. This example runs the
//! paper's fake PDC write attack and watches the monitor react:
//!
//! 1. the attack's non-member endorsement trips the
//!    `uc1_nonmember_endorsement_rate` detector and the alert fires,
//!    with a flight-recorder dump of the surrounding events attached;
//! 2. the live status table shows per-node health, every detector's
//!    window, and the firing alerts;
//! 3. after a quiet interval the detector windows drain, the alerts
//!    resolve, and the transition log records the full lifecycle;
//! 4. the same log exports as JSON lines for downstream tooling.
//!
//! Run with `cargo run -p fabric-pdc --example monitor_status`; pass
//! `--smoke` to run the single-attack variant CI greps.

use fabric_pdc::attacks::{build_lab, run_attack, AttackKind, LabConfig};
use fabric_pdc::prelude::*;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let mut lab = build_lab(&LabConfig::default());
    let monitor = lab
        .net
        .monitor()
        .expect("the attack lab attaches a monitor")
        .clone();

    println!("=== 1. Fake PDC results injection under the default MAJORITY policy ===\n");
    let kinds: &[AttackKind] = if smoke {
        &[AttackKind::FakeWrite]
    } else {
        &AttackKind::all()
    };
    for &kind in kinds {
        let outcome = run_attack(&mut lab, kind);
        println!(
            "{:<14} attack {}: {}",
            kind.label(),
            if outcome.succeeded {
                "SUCCEEDS"
            } else {
                "fails  "
            },
            outcome.note
        );
        for t in &outcome.alerts {
            println!("    alert {t}");
        }
    }

    println!("\n=== 2. Network status while the alerts fire ===\n");
    println!("{}", monitor.render_status());

    // Each firing rate alert with audit evidence carries a flight dump:
    // the recorder ring at the moment the alert fired, for forensics.
    for alert in monitor.active_alerts() {
        let Some(dump) = &alert.forensics else {
            continue;
        };
        println!(
            "forensics for {} (trigger {}):",
            alert.key,
            dump.trigger.kind()
        );
        for (kind, tx_id) in dump.audit_signature() {
            println!("    {kind} tx={tx_id}");
        }
    }

    // Quiet interval: the attack traffic stops, the sliding windows
    // drain (64 ticks), and the resolve hysteresis (64 more) closes the
    // alerts.
    let quiet_ticks = 140;
    println!("\n=== 3. Status after {quiet_ticks} quiet ticks: alerts resolve ===\n");
    lab.net.advance(quiet_ticks);
    println!("{}", monitor.render_status());

    println!("=== 4. Alert transition log (JSON lines) ===\n");
    print!("{}", monitor.alerts_jsonl());

    let transitions = monitor.transitions();
    assert!(
        transitions
            .iter()
            .any(|t| t.to == AlertPhase::Firing && t.rule == "uc1_nonmember_endorsement_rate"),
        "the non-member endorsement alert must have fired"
    );
    assert!(
        transitions.iter().any(|t| t.to == AlertPhase::Resolved),
        "alerts must resolve after the quiet interval"
    );
}
