//! The paper's §V-A attack experiments, end to end: all four fake PDC
//! results injection attacks, under the default `MAJORITY Endorsement`
//! policy and under the proposed defenses.
//!
//! Run with `cargo run -p fabric-pdc --example attack_demo`.

use fabric_pdc::attacks::{
    build_lab, render_table2, run_attack, run_table2, AttackKind, LabConfig,
};
use fabric_pdc::prelude::DefenseConfig;

fn main() {
    println!("=== Fake PDC results injection vs. the default MAJORITY policy ===\n");
    for kind in AttackKind::all() {
        let mut lab = build_lab(&LabConfig::default());
        let outcome = run_attack(&mut lab, kind);
        println!(
            "{:<14} attack {}: {}",
            kind.label(),
            if outcome.succeeded {
                "SUCCEEDS"
            } else {
                "fails  "
            },
            outcome.note
        );
    }

    println!("\n=== Same attacks vs. the paper's defenses (Feature 1 + non-member filter) ===\n");
    let defended = LabConfig {
        collection_policy: Some("AND('Org1MSP.peer','Org2MSP.peer')".to_string()),
        defense: DefenseConfig {
            collection_policy_for_reads: true,
            filter_non_member_endorsers: true,
            ..DefenseConfig::original()
        },
        seed: 77,
        ..LabConfig::default()
    };
    for kind in AttackKind::all() {
        let mut lab = build_lab(&defended);
        let outcome = run_attack(&mut lab, kind);
        println!(
            "{:<14} attack {}: {}",
            kind.label(),
            if outcome.succeeded {
                "SUCCEEDS"
            } else {
                "fails  "
            },
            outcome.note
        );
    }

    println!("\n=== Full Table II reproduction ===\n");
    let rows = run_table2(2021);
    println!("{}", render_table2(&rows));
}
