//! End-to-end transaction tracing: one secured-trade transaction followed
//! across every node it touches. The client, both endorsing peers, the
//! ordering service, the Raft substrate, and every committing peer all
//! report spans into one shared [`Telemetry`] pipeline; because trace IDs
//! derive deterministically from the transaction ID, the whole journey is
//! resolvable afterwards from the tx ID alone.
//!
//! Prints the per-transaction lifecycle timeline (endorse → order →
//! replicate → validate → commit), then exports all spans as a
//! Chrome-trace/Perfetto JSON document (paste into `ui.perfetto.dev` or
//! `chrome://tracing`) and as JSON-lines.
//!
//! Run with `cargo run -p fabric-pdc --example trace_tx`; pass `--smoke`
//! for the abbreviated CI variant.

use fabric_pdc::prelude::*;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // One telemetry pipeline with a flight recorder; every node reports
    // into it, so a single transaction's spans land in one causal tree.
    let telemetry = Telemetry::with_flight_recorder(256);
    let mut net = NetworkBuilder::new("trade-channel")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(7)
        .with_telemetry(telemetry.clone())
        .build();

    // Both trading orgs are collection members and must co-endorse.
    let definition = ChaincodeDefinition::new("trade")
        .with_endorsement_policy("AND('Org1MSP.peer','Org2MSP.peer')")
        .with_collection(
            CollectionConfig::membership_of(
                "tradeCollection",
                &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")],
            )
            .with_endorsement_policy("OR('Org1MSP.peer','Org2MSP.peer')"),
        );
    net.deploy_chaincode(definition, Arc::new(SecuredTrade::new("tradeCollection")));

    let outcome = net.submit_transaction(
        "client0.org1",
        "trade",
        "offer",
        &["asset1"],
        &[("appraisal", b"appraised-at-9500-USD".as_slice())],
        &["peer0.org1", "peer0.org2"],
    )?;
    assert!(outcome.validation_code.is_valid());

    let records = telemetry.trace().expect("in-memory sink").records();

    // 1. The per-transaction lifecycle timeline, resolved from the tx ID.
    let timeline = TxTimeline::collect(&records, outcome.tx_id.as_str());
    println!("== transaction timeline ==");
    print!("{}", timeline.render());
    assert!(
        timeline.complete(),
        "a committed transaction must have all five lifecycle phases"
    );
    println!(
        "nodes on the transaction's path: {}",
        timeline.nodes().join(", ")
    );

    // 2. Chrome-trace/Perfetto export of every span the network recorded.
    println!("\n== chrome trace (load in ui.perfetto.dev) ==");
    println!("{}", render_chrome_trace(&records));

    if smoke {
        return Ok(());
    }

    // 3. JSON-lines export (one span per line; `jq`-friendly).
    println!("\n== spans, JSON-lines ==");
    print!("{}", render_spans_jsonl(&records));

    // 4. Flight-recorder status: no attack signals fired in this honest
    //    run, so the ring holds recent traffic but no dump was triggered.
    let recorder = telemetry.flight_recorder().expect("recorder attached");
    println!(
        "\nflight recorder: {} entries buffered, {} dump(s) triggered",
        recorder.recent().len(),
        recorder.dumps().len()
    );
    Ok(())
}
