//! Secured asset trade: the legitimate, privacy-preserving use of
//! `GetPrivateDataHash` — the same API the paper's endorsement forgery
//! abuses (§IV-A1). A seller's appraisal never enters a block; a buyer
//! verifies the claimed value against the on-chain hash at its *own* peer.
//!
//! Run with `cargo run -p fabric-pdc --example secured_trade`.

use fabric_pdc::prelude::*;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let mut net = NetworkBuilder::new("trade-channel")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(4)
        .build();
    let definition = ChaincodeDefinition::new("trade")
        // One endorsement suffices on this channel; the collection policy
        // pins writes to the seller.
        .with_endorsement_policy("ANY Endorsement")
        .with_collection(
            CollectionConfig::membership_of("sellerCollection", &[OrgId::new("Org1MSP")])
                .with_endorsement_policy("OR('Org1MSP.peer')"),
        );
    net.deploy_chaincode(definition, Arc::new(SecuredTrade::new("sellerCollection")));

    // The seller (org1) offers an asset; the appraisal travels in the
    // transient map and only its SHA-256 reaches the ledger.
    let appraisal = b"appraised-at-9500-USD";
    let outcome = net.submit_transaction(
        "client0.org1",
        "trade",
        "offer",
        &["asset1"],
        &[("appraisal", appraisal)],
        &["peer0.org1"],
    )?;
    println!("offer committed: {}", outcome.validation_code);

    // Nothing private is in any block: scan the non-member's chain.
    let leaks = fabric_pdc::attacks::extract_payload_leaks(net.peer("peer0.org2"));
    let leaked = leaks.iter().any(|l| l.payload == appraisal.to_vec());
    println!("appraisal visible in org2's blocks: {leaked}");

    // Off-band, the seller tells the buyer the appraisal. The buyer (org2)
    // verifies against the hash at ITS OWN peer — no trust in the seller's
    // peer needed.
    let mut buyer = Client::new(
        "Org2MSP",
        Keypair::generate_from_seed(77),
        DefenseConfig::original(),
    );
    let proposal = buyer.create_proposal(
        net.channel().clone(),
        ChaincodeId::new("trade"),
        "verify",
        vec![b"asset1".to_vec()],
        [("claimed".to_string(), appraisal.to_vec())]
            .into_iter()
            .collect(),
    );
    let response = net.endorse("peer0.org2", &proposal)?;
    println!(
        "buyer verification of the truthful claim: {}",
        String::from_utf8_lossy(&response.payload.response.payload)
    );

    // A dishonest seller claiming a higher appraisal is caught.
    let proposal = buyer.create_proposal(
        net.channel().clone(),
        ChaincodeId::new("trade"),
        "verify",
        vec![b"asset1".to_vec()],
        [("claimed".to_string(), b"appraised-at-15000-USD".to_vec())]
            .into_iter()
            .collect(),
    );
    let response = net.endorse("peer0.org2", &proposal)?;
    println!(
        "buyer verification of an inflated claim:  {}",
        String::from_utf8_lossy(&response.payload.response.payload)
    );

    println!(
        "\nGetPrivateDataHash is dual-use: here it verifies claims without \
         revealing data;\nin the paper's attack the same call hands non-members \
         valid (key, version) pairs to forge read endorsements."
    );
    Ok(())
}
