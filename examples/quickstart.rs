//! Quickstart: a 3-organization channel running public and private data
//! transactions through the full execute–order–validate workflow.
//!
//! Run with `cargo run -p fabric-pdc --example quickstart`.

use fabric_pdc::prelude::*;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // ---- 1. Build a channel: 3 orgs, 1 peer + 1 client each, Raft
    //         ordering service, gossip for private data. ----
    let mut net = NetworkBuilder::new("mychannel")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(2026)
        .build();
    println!(
        "channel {} up with peers {:?}",
        net.channel(),
        net.peer_names()
    );

    // ---- 2. Public data: the asset-transfer chaincode. ----
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));

    let outcome = net.submit_transaction(
        "client0.org1",
        "assets",
        "CreateAsset",
        &["asset1", "blue", "alice", "400"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )?;
    println!(
        "CreateAsset committed: tx {}… -> {}",
        &outcome.tx_id.as_str()[..8],
        outcome.validation_code
    );

    let outcome = net.submit_transaction(
        "client0.org2",
        "assets",
        "TransferAsset",
        &["asset1", "bob"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )?;
    println!(
        "TransferAsset committed: previous owner was {:?}",
        String::from_utf8_lossy(&outcome.payload)
    );

    // ---- 3. Private data: a collection shared by org1 and org2 only. ----
    let definition = ChaincodeDefinition::new("private").with_collection(
        CollectionConfig::membership_of("PDC1", &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")]),
    );
    net.deploy_chaincode(definition, Arc::new(GuardedPdc::unconstrained("PDC1")));

    let outcome = net.submit_transaction(
        "client0.org1",
        "private",
        "write",
        &["trade-price", "250"],
        &[],
        &["peer0.org1", "peer0.org2"],
    )?;
    println!("PDC write committed: {}", outcome.validation_code);

    // Members hold plaintext; the non-member org3 holds only hashes.
    let ns = ChaincodeId::new("private");
    let col = CollectionName::new("PDC1");
    let at_member = net
        .peer("peer0.org1")
        .world_state()
        .get_private(&ns, &col, "trade-price")
        .map(|v| String::from_utf8_lossy(&v.value).into_owned());
    let at_non_member = net
        .peer("peer0.org3")
        .world_state()
        .get_private(&ns, &col, "trade-price");
    let hash_at_non_member =
        net.peer("peer0.org3")
            .world_state()
            .get_private_hash(&ns, &col, "trade-price");
    println!("org1 (member)     sees plaintext: {at_member:?}");
    println!("org3 (non-member) sees plaintext: {at_non_member:?}");
    println!(
        "org3 (non-member) sees hash:      {}",
        hash_at_non_member
            .map(|(h, v)| format!("{}… @ version {v}", &h.to_hex()[..12]))
            .unwrap_or_default()
    );

    // ---- 4. A member reads the private value back. ----
    let payload = net.evaluate_transaction(
        "client0.org1",
        "peer0.org1",
        "private",
        "read",
        &["trade-price"],
    )?;
    println!("member read returns: {}", String::from_utf8_lossy(&payload));

    // The ledgers agree everywhere.
    for name in net.peer_names() {
        let peer = net.peer(&name);
        assert!(peer.block_store().verify_chain());
        println!(
            "{name}: chain height {} (verified)",
            peer.block_store().height()
        );
    }
    Ok(())
}
