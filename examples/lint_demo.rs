//! Linting a live network: run every PDC rule over the chaincode
//! definitions actually deployed on a channel.
//!
//! Deploys two chaincodes — the defended `SecuredTrade` setup from the
//! `secured_trade` example and the paper's vulnerable `SaccPrivate`
//! (Listings 1/2) — then lints both and prints the text report plus the
//! SARIF document a CI system would archive.
//!
//! Run with `cargo run -p fabric-pdc --example lint_demo`.

use fabric_pdc::lint::{self, probe, render, LintSubject};
use fabric_pdc::prelude::*;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let mut net = NetworkBuilder::new("audit-channel")
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(9)
        .build();

    // Defended: collection-level endorsement policy pinned to the seller.
    net.deploy_chaincode(
        ChaincodeDefinition::new("trade")
            .with_endorsement_policy("ANY Endorsement")
            .with_collection(
                CollectionConfig::membership_of("sellerCollection", &[OrgId::new("Org1MSP")])
                    .with_endorsement_policy("OR('Org1MSP.peer')")
                    .with_required_peer_count(1),
            ),
        Arc::new(SecuredTrade::new("sellerCollection")),
    );
    // Vulnerable: the paper's sacc — chaincode-level policy governs the
    // collection (Use Case 2) and both functions leak (Use Case 3).
    net.deploy_chaincode(
        ChaincodeDefinition::new("sacc")
            .with_endorsement_policy("ANY Endorsement")
            .with_collection(CollectionConfig::membership_of(
                "demo",
                &[OrgId::new("Org1MSP")],
            )),
        Arc::new(SaccPrivate::default()),
    );

    // One subject per deployed definition; dynamic payload probes supply
    // the leak facts PDC009 needs.
    let mut subjects: Vec<LintSubject> = net
        .deployed_definitions()
        .into_iter()
        .map(|d| LintSubject::from_definition(d, net.orgs()))
        .collect();
    for subject in &mut subjects {
        if subject.name == "sacc" {
            let definition = net
                .deployed_definitions()
                .into_iter()
                .find(|d| d.id.as_str() == "sacc")
                .expect("sacc deployed")
                .clone();
            subject.leaks = probe::probe_leaks(
                &SaccPrivate::default(),
                &definition,
                &subject.uri,
                &probe::sacc_probes(),
            );
        }
    }

    let findings = lint::lint_subjects(&subjects);
    println!("== fabric-lint over audit-channel ==\n");
    print!("{}", render::render_text(&findings));

    println!("\n== SARIF 2.1.0 (for CI upload) ==\n");
    print!("{}", render::render_sarif(&findings));
    Ok(())
}
