//! The paper's §V-C GitHub study: generate a synthetic Fabric-project
//! corpus on disk, run the static analyzer over the real file trees, and
//! print Figs. 7–10.
//!
//! Run with `cargo run -p fabric-pdc --example corpus_scan [--full]`.
//! The default scans a 320-project corpus; `--full` scans the paper-scale
//! 6392-project corpus (a few seconds and ~40 MB of temp files).

use fabric_pdc::analyzer::{scan_corpus, CorpusReport, CorpusSpec};
use std::error::Error;
use std::fs;

fn main() -> Result<(), Box<dyn Error>> {
    let full = std::env::args().any(|a| a == "--full");
    let spec = if full {
        CorpusSpec::default()
    } else {
        CorpusSpec::small(2021)
    };
    let root = std::env::temp_dir().join(format!(
        "fabric-pdc-corpus-{}-{}",
        if full { "full" } else { "small" },
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&root);

    println!(
        "materializing {} synthetic Fabric projects under {} ...",
        spec.total(),
        root.display()
    );
    fabric_pdc::analyzer::corpus::materialize(&spec, &root)?;

    println!("scanning with the static analyzer ...\n");
    let reports = scan_corpus(&root)?;
    let agg = CorpusReport::from_reports(&reports);

    println!("{}", agg.render_fig7());
    println!("{}", agg.render_fig8());
    println!("{}", agg.render_fig9());
    println!("{}", agg.render_fig10());

    println!(
        "headline numbers: {:.2} % of explicit PDC projects use the (vulnerable) \
         chaincode-level policy; {:.2} % have PDC leakage issues",
        agg.pct_chaincode_level(),
        agg.pct_leaky()
    );

    let _ = fs::remove_dir_all(&root);
    Ok(())
}
