//! The ordering-service substrate on its own: a 5-node Raft cluster
//! electing leaders, replicating entries, and surviving a partition.
//!
//! Run with `cargo run -p fabric-pdc --example raft_demo`.

use fabric_pdc::raft::Cluster;

fn main() {
    let mut cluster = Cluster::new(5, 99);
    let leader = cluster.run_until_leader(1000).expect("leader elected");
    println!(
        "leader elected: node {leader} (term {})",
        cluster.node(leader).term()
    );

    for i in 0..3u8 {
        cluster.propose(leader, vec![i]).expect("leader accepts");
    }
    cluster.run_ticks(50);
    println!(
        "after replication, every node committed {:?}",
        cluster.committed(1)
    );

    // Partition the leader with one follower away from the other three.
    let minority: Vec<u64> = vec![leader, if leader == 1 { 2 } else { 1 }];
    let majority: Vec<u64> = cluster
        .node_ids()
        .into_iter()
        .filter(|n| !minority.contains(n))
        .collect();
    println!("partitioning minority {minority:?} from majority {majority:?}");
    cluster.partition(&minority, &majority);
    let _ = cluster.propose(leader, b"lost-entry".to_vec());
    cluster.run_ticks(100);

    let new_leader = cluster.leader().expect("majority side elects");
    println!(
        "majority side elected node {new_leader} (term {})",
        cluster.node(new_leader).term()
    );
    cluster
        .propose(new_leader, b"committed-entry".to_vec())
        .unwrap();
    cluster.run_ticks(50);

    println!("healing the partition ...");
    cluster.heal();
    cluster.run_ticks(100);

    for id in cluster.node_ids() {
        let log: Vec<String> = cluster
            .committed(id)
            .iter()
            .map(|c| String::from_utf8_lossy(c).into_owned())
            .collect();
        println!("node {id} committed: {log:?}");
    }
    println!("note: the minority's uncommitted 'lost-entry' was discarded, as Raft requires");
}
