//! The paper's §V-B leakage experiments: a PDC non-member peer recovers
//! private values from its own copy of the blockchain, and New Feature 2
//! (the cryptographic payload commitment) stops it.
//!
//! Run with `cargo run -p fabric-pdc --example leakage_audit`.

use fabric_pdc::attacks::{run_read_leakage_scenario, run_write_leakage_scenario};
use fabric_pdc::prelude::DefenseConfig;

fn show(label: &str, scenario: &fabric_pdc::attacks::LeakScenario) {
    println!("--- {label} ---");
    println!(
        "secret written/read : {:?}",
        String::from_utf8_lossy(&scenario.secret)
    );
    println!(
        "non-member recovered {} payload(s) from its local blocks:",
        scenario.recovered.len()
    );
    for rec in &scenario.recovered {
        let printable = String::from_utf8_lossy(&rec.payload);
        let rendered = if printable.chars().all(|c| !c.is_control()) && printable.len() < 60 {
            printable.into_owned()
        } else {
            format!("{} opaque bytes (hash)", rec.payload.len())
        };
        println!(
            "  tx {}… [{}]: {rendered}",
            &rec.tx_id.as_str()[..8],
            rec.chaincode
        );
    }
    println!(
        "plaintext secret leaked to the non-member: {}\n",
        if scenario.leaked { "YES" } else { "no" }
    );
}

fn main() {
    println!("=== PDC leakage through PDC READ transactions (Listing 1 project) ===\n");
    let original = run_read_leakage_scenario(DefenseConfig::original(), 1);
    show("original Fabric framework", &original);
    let defended = run_read_leakage_scenario(DefenseConfig::feature2(), 2);
    show("with New Feature 2 (hashed payload commitment)", &defended);

    println!("=== PDC leakage through PDC WRITE transactions (Listing 2 project) ===\n");
    let original = run_write_leakage_scenario(DefenseConfig::original(), 3);
    show("original Fabric framework", &original);
    let defended = run_write_leakage_scenario(DefenseConfig::feature2(), 4);
    show("with New Feature 2 (hashed payload commitment)", &defended);
}
