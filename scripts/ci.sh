#!/usr/bin/env bash
# CI gate for the fabric-pdc workspace.
#
# Keeps the repo at a fixed quality bar:
#   1. `cargo fmt --check`                            — formatting drift
#   2. `cargo clippy --all-targets -- -D warnings`    — lint-clean, tests included
#   3. `cargo build --release`                        — release build works
#   4. `cargo test -q`                                — full test suite
#   5. commit-throughput bench smoke run              — bench code can't rot
#   6. telemetry example smoke run                    — the metric surface
#      other tooling scrapes (names below) must keep exporting
#   7. trace_tx example smoke run                     — a tx id must keep
#      resolving to a complete five-phase timeline and a Chrome-trace
#      export
#
# Run from anywhere; operates on the repository containing this script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> commit_throughput --smoke"
cargo run --release -p fabric-bench --bin commit_throughput -- --smoke

echo "==> telemetry example --smoke"
# The Prometheus dump must keep exporting the metric families dashboards
# and the bench's stage breakdown scrape by name.
telemetry_out="$(cargo run --release -p fabric-pdc --example telemetry -- --smoke)"
for metric in \
    fabric_commit_stage_seconds \
    fabric_validation_results_total \
    fabric_blocks_committed_total \
    fabric_txs_processed_total \
    fabric_committed_block_height \
    fabric_endorsements_total \
    fabric_audit_events_total; do
    if ! grep -q "^${metric}" <<<"$telemetry_out"; then
        echo "FAIL: telemetry smoke output is missing metric '${metric}'" >&2
        exit 1
    fi
done
echo "telemetry smoke: all required metric families exported"

echo "==> trace_tx example --smoke"
# The traced lifecycle must keep deriving every phase latency from one
# tx id, and the Chrome-trace export must keep its JSON envelope.
trace_out="$(cargo run --release -p fabric-pdc --example trace_tx -- --smoke)"
for phase in endorse order replicate validate commit; do
    if ! grep -q "phase=${phase}" <<<"$trace_out"; then
        echo "FAIL: trace_tx smoke output is missing 'phase=${phase}'" >&2
        exit 1
    fi
done
if ! grep -q '"traceEvents"' <<<"$trace_out"; then
    echo "FAIL: trace_tx smoke output is missing the Chrome-trace header" >&2
    exit 1
fi
echo "trace_tx smoke: five-phase timeline + Chrome-trace export present"

echo "CI gate passed."
