#!/usr/bin/env bash
# CI gate for the fabric-pdc workspace.
#
# Keeps the repo at a fixed quality bar:
#   1. `cargo fmt --check`                            — formatting drift
#   2. `cargo clippy --all-targets -- -D warnings`    — lint-clean, tests included
#   3. `cargo build --release`                        — release build works
#   4. `cargo test -q`                                — full test suite
#   5. commit-throughput bench smoke run              — bench code can't
#      rot, and the pipeline-overlap + sharded rows must keep printing
#   5b. e2e-throughput bench smoke run                — the end-to-end
#      fan-out bench must keep measuring both fan-out modes, and
#      BENCH_e2e.json must keep its headline speedup field
#   5c. workload-throughput bench smoke run           — the open-loop
#      sweep must keep producing multi-rate curves with knees, and
#      BENCH_workload.json must keep its header + per-rate rows
#   6. telemetry example smoke run                    — the metric surface
#      other tooling scrapes (names below) must keep exporting
#   7. trace_tx example smoke run                     — a tx id must keep
#      resolving to a complete five-phase timeline and a Chrome-trace
#      export
#   8. monitor_status example smoke run               — the fake-write
#      attack must keep firing (and, after a quiet interval, resolving)
#      the Use Case 1 rate alert with forensics attached
#   9. flow-analysis smoke run                        — `analyze lint
#      --flow` must keep flagging every flow rule on the leaky sample
#      (with a rendered source→sink path) and stay silent on the
#      defended samples
#
# Run from anywhere; operates on the repository containing this script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> pipeline_equivalence test inventory"
# The equivalence proptests are the proof the pipelined/sharded commit
# schedulers and the zero-copy fan-out preserve the reference semantics.
# A refactor that renames or drops one would silently skip the proof, so
# the gate pins the names.
equivalence_tests="$(cargo test --release --test pipeline_equivalence -- --list)"
for t in \
    pipeline_matches_reference_on_random_blocks \
    overlap_matches_reference_on_random_streams \
    alert_log_is_deterministic_across_schedulers \
    fanout_modes_agree_on_random_live_streams; do
    if ! grep -q "${t}" <<<"$equivalence_tests"; then
        echo "FAIL: pipeline_equivalence no longer lists proptest '${t}'" >&2
        exit 1
    fi
done
echo "equivalence inventory: scheduler + alert + fan-out proptests present"

echo "==> zero_copy_fanout test inventory"
# The counting-allocator tests are the proof block fan-out stays O(1)
# deep copies per peer; pin their names so they can't be silently lost.
fanout_tests="$(cargo test --release --test zero_copy_fanout -- --list)"
for t in \
    block_clone_is_allocation_free \
    shared_fanout_cuts_deliver_path_allocations \
    fanout_modes_converge_identically; do
    if ! grep -q "${t}" <<<"$fanout_tests"; then
        echo "FAIL: zero_copy_fanout no longer lists test '${t}'" >&2
        exit 1
    fi
done
echo "zero-copy inventory: allocator + convergence tests present"

echo "==> workload_determinism test inventory"
# The determinism tests are the proof the workload harness is a usable
# measurement instrument (same seed+config ⇒ identical tick-denominated
# results, including across the parallel-validation knob); pin their
# names so a refactor can't silently drop the proof.
determinism_tests="$(cargo test --release --test workload_determinism -- --list)"
for t in \
    same_seed_and_config_reproduce_the_load_point_exactly \
    parallel_validation_changes_wall_clock_only \
    different_seeds_produce_different_schedules; do
    if ! grep -q "${t}" <<<"$determinism_tests"; then
        echo "FAIL: workload_determinism no longer lists test '${t}'" >&2
        exit 1
    fi
done
echo "workload inventory: determinism tests present"

echo "==> commit_throughput --smoke"
bench_out="$(cargo run --release -p fabric-bench --bin commit_throughput -- --smoke)"
echo "$bench_out"
# The stream and sharded sections must keep measuring (a bench refactor
# that drops a mode would otherwise pass silently).
for row in "mode=pipeline-overlap" "sharded channels=" "aggregate_txs/sec="; do
    if ! grep -q "${row}" <<<"$bench_out"; then
        echo "FAIL: commit_throughput smoke output is missing '${row}'" >&2
        exit 1
    fi
done
echo "commit_throughput smoke: overlap + sharded rows present"

echo "==> e2e_throughput --smoke"
e2e_out="$(cargo run --release -p fabric-bench --bin e2e_throughput -- --smoke)"
echo "$e2e_out"
# Both fan-out modes must keep measuring end to end, and the recorded
# baseline must keep its headline fields.
for row in "fanout=deep-clone" "fanout=shared" "shared vs deep-clone:" "phase=commit"; do
    if ! grep -q "${row}" <<<"$e2e_out"; then
        echo "FAIL: e2e_throughput smoke output is missing '${row}'" >&2
        exit 1
    fi
done
for field in '"bench": "e2e_throughput"' '"speedup_4peers_1000tx_shared_vs_deep_clone"'; do
    if ! grep -qF "${field}" BENCH_e2e.json; then
        echo "FAIL: BENCH_e2e.json is missing ${field}" >&2
        exit 1
    fi
done
echo "e2e_throughput smoke: both fan-out modes + recorded baseline present"

echo "==> workload_throughput --smoke"
workload_out="$(cargo run --release -p fabric-bench --bin workload_throughput -- --smoke)"
echo "$workload_out"
# The sweep must keep fitting both curves (uniform + zipf) and locating
# a knee, and the recorded JSON must keep its header and at least two
# distinct offered-rate rows per curve.
for row in "skew0.00/pdc-heavy" "skew0.99/pdc-heavy" "knee at rate" "sub-knee mvcc abort rate"; do
    if ! grep -q "${row}" <<<"$workload_out"; then
        echo "FAIL: workload_throughput smoke output is missing '${row}'" >&2
        exit 1
    fi
done
for field in '"bench": "workload_throughput"' '"offered_rate": 1.0' '"offered_rate": 8.0' '"knee"'; do
    if ! grep -qF "${field}" BENCH_workload.json; then
        echo "FAIL: BENCH_workload.json is missing ${field}" >&2
        exit 1
    fi
done
echo "workload_throughput smoke: both curves, knee, and recorded sweep present"

echo "==> telemetry example --smoke"
# The Prometheus dump must keep exporting the metric families dashboards
# and the bench's stage breakdown scrape by name.
telemetry_out="$(cargo run --release -p fabric-pdc --example telemetry -- --smoke)"
for metric in \
    fabric_commit_stage_seconds \
    fabric_validation_results_total \
    fabric_blocks_committed_total \
    fabric_txs_processed_total \
    fabric_committed_block_height \
    fabric_endorsements_total \
    fabric_audit_events_total; do
    if ! grep -q "^${metric}" <<<"$telemetry_out"; then
        echo "FAIL: telemetry smoke output is missing metric '${metric}'" >&2
        exit 1
    fi
done
echo "telemetry smoke: all required metric families exported"

echo "==> trace_tx example --smoke"
# The traced lifecycle must keep deriving every phase latency from one
# tx id, and the Chrome-trace export must keep its JSON envelope.
trace_out="$(cargo run --release -p fabric-pdc --example trace_tx -- --smoke)"
for phase in endorse order replicate validate commit; do
    if ! grep -q "phase=${phase}" <<<"$trace_out"; then
        echo "FAIL: trace_tx smoke output is missing 'phase=${phase}'" >&2
        exit 1
    fi
done
if ! grep -q '"traceEvents"' <<<"$trace_out"; then
    echo "FAIL: trace_tx smoke output is missing the Chrome-trace header" >&2
    exit 1
fi
echo "trace_tx smoke: five-phase timeline + Chrome-trace export present"

echo "==> monitor_status example --smoke"
# The online-alerting path must keep working end to end: the fake-write
# attack fires the Use Case 1 rate alert (with the status table around
# it), and a quiet interval resolves it — in the table, the transition
# log, and the JSON-lines export.
monitor_out="$(cargo run --release -p fabric-pdc --example monitor_status -- --smoke)"
for line in \
    "FIRING uc1_nonmember_endorsement_rate" \
    "RESOLVED uc1_nonmember_endorsement_rate" \
    "flight dump attached" \
    "\"phase\":\"resolved\""; do
    if ! grep -q "${line}" <<<"$monitor_out"; then
        echo "FAIL: monitor_status smoke output is missing '${line}'" >&2
        exit 1
    fi
done
for header in "NODE" "DETECTOR" "ALERTS"; do
    if ! grep -q "^${header}" <<<"$monitor_out"; then
        echo "FAIL: monitor_status smoke output is missing the '${header}' table" >&2
        exit 1
    fi
done
echo "monitor_status smoke: firing, forensics, and resolution all present"

echo "==> analyze lint --flow smoke"
# Taint analysis of the built-in sample registry: the deliberately leaky
# escrow sample carries Error-severity findings, so the lint exit code is
# non-zero by design — the gate checks the report contents instead.
flow_dir="$(mktemp -d)"
flow_out="$(cargo run --release -p fabric-analyzer --bin analyze -- lint "$flow_dir" --flow || true)"
rmdir "$flow_dir"
for rule in PDC012 PDC013 PDC014 PDC015 PDC016 PDC017; do
    if ! grep -q "${rule}" <<<"$flow_out"; then
        echo "FAIL: flow smoke output is missing rule '${rule}'" >&2
        exit 1
    fi
done
if ! grep -q "leaky_escrow" <<<"$flow_out"; then
    echo "FAIL: flow smoke output does not name the leaky sample" >&2
    exit 1
fi
if ! grep -q "flow: GetPrivateData(escrowCollection" <<<"$flow_out"; then
    echo "FAIL: flow smoke output is missing a source→sink flow path" >&2
    exit 1
fi
for clean in guarded sacc secured_trade; do
    if grep -qw "${clean}" <<<"$flow_out"; then
        echo "FAIL: flow smoke flagged the defended sample '${clean}'" >&2
        exit 1
    fi
done
echo "flow smoke: all six flow rules fire on the leaky sample only"

echo "CI gate passed."
