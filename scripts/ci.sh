#!/usr/bin/env bash
# CI gate for the fabric-pdc workspace.
#
# Keeps the repo at a fixed quality bar:
#   1. `cargo fmt --check`                            — formatting drift
#   2. `cargo clippy --all-targets -- -D warnings`    — lint-clean, tests included
#   3. `cargo build --release`                        — release build works
#   4. `cargo test -q`                                — full test suite
#   5. commit-throughput bench smoke run              — bench code can't rot
#   6. telemetry example smoke run                    — the metric surface
#      other tooling scrapes (names below) must keep exporting
#
# Run from anywhere; operates on the repository containing this script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> commit_throughput --smoke"
cargo run --release -p fabric-bench --bin commit_throughput -- --smoke

echo "==> telemetry example --smoke"
# The Prometheus dump must keep exporting the metric families dashboards
# and the bench's stage breakdown scrape by name.
telemetry_out="$(cargo run --release -p fabric-pdc --example telemetry -- --smoke)"
for metric in \
    fabric_commit_stage_seconds \
    fabric_validation_results_total \
    fabric_blocks_committed_total \
    fabric_txs_processed_total \
    fabric_committed_block_height \
    fabric_endorsements_total \
    fabric_audit_events_total; do
    if ! grep -q "^${metric}" <<<"$telemetry_out"; then
        echo "FAIL: telemetry smoke output is missing metric '${metric}'" >&2
        exit 1
    fi
done
echo "telemetry smoke: all required metric families exported"

echo "CI gate passed."
