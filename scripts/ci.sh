#!/usr/bin/env bash
# CI gate for the fabric-pdc workspace.
#
# Keeps the repo at a fixed quality bar:
#   1. `cargo fmt --check`                            — formatting drift
#   2. `cargo clippy --all-targets -- -D warnings`    — lint-clean, tests included
#   3. `cargo build --release`                        — release build works
#   4. `cargo test -q`                                — full test suite
#   5. commit-throughput bench smoke run              — bench code can't
#      rot, and the pipeline-overlap + sharded rows must keep printing
#   6. telemetry example smoke run                    — the metric surface
#      other tooling scrapes (names below) must keep exporting
#   7. trace_tx example smoke run                     — a tx id must keep
#      resolving to a complete five-phase timeline and a Chrome-trace
#      export
#   8. monitor_status example smoke run               — the fake-write
#      attack must keep firing (and, after a quiet interval, resolving)
#      the Use Case 1 rate alert with forensics attached
#   9. flow-analysis smoke run                        — `analyze lint
#      --flow` must keep flagging every flow rule on the leaky sample
#      (with a rendered source→sink path) and stay silent on the
#      defended samples
#
# Run from anywhere; operates on the repository containing this script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> pipeline_equivalence test inventory"
# The equivalence proptests are the proof the pipelined/sharded commit
# schedulers preserve the reference semantics. A refactor that renames or
# drops one would silently skip the proof, so the gate pins both names.
equivalence_tests="$(cargo test --release --test pipeline_equivalence -- --list)"
for t in \
    pipeline_matches_reference_on_random_blocks \
    overlap_matches_reference_on_random_streams \
    alert_log_is_deterministic_across_schedulers; do
    if ! grep -q "${t}" <<<"$equivalence_tests"; then
        echo "FAIL: pipeline_equivalence no longer lists proptest '${t}'" >&2
        exit 1
    fi
done
echo "equivalence inventory: scheduler + alert-determinism proptests present"

echo "==> commit_throughput --smoke"
bench_out="$(cargo run --release -p fabric-bench --bin commit_throughput -- --smoke)"
echo "$bench_out"
# The stream and sharded sections must keep measuring (a bench refactor
# that drops a mode would otherwise pass silently).
for row in "mode=pipeline-overlap" "sharded channels=" "aggregate_txs/sec="; do
    if ! grep -q "${row}" <<<"$bench_out"; then
        echo "FAIL: commit_throughput smoke output is missing '${row}'" >&2
        exit 1
    fi
done
echo "commit_throughput smoke: overlap + sharded rows present"

echo "==> telemetry example --smoke"
# The Prometheus dump must keep exporting the metric families dashboards
# and the bench's stage breakdown scrape by name.
telemetry_out="$(cargo run --release -p fabric-pdc --example telemetry -- --smoke)"
for metric in \
    fabric_commit_stage_seconds \
    fabric_validation_results_total \
    fabric_blocks_committed_total \
    fabric_txs_processed_total \
    fabric_committed_block_height \
    fabric_endorsements_total \
    fabric_audit_events_total; do
    if ! grep -q "^${metric}" <<<"$telemetry_out"; then
        echo "FAIL: telemetry smoke output is missing metric '${metric}'" >&2
        exit 1
    fi
done
echo "telemetry smoke: all required metric families exported"

echo "==> trace_tx example --smoke"
# The traced lifecycle must keep deriving every phase latency from one
# tx id, and the Chrome-trace export must keep its JSON envelope.
trace_out="$(cargo run --release -p fabric-pdc --example trace_tx -- --smoke)"
for phase in endorse order replicate validate commit; do
    if ! grep -q "phase=${phase}" <<<"$trace_out"; then
        echo "FAIL: trace_tx smoke output is missing 'phase=${phase}'" >&2
        exit 1
    fi
done
if ! grep -q '"traceEvents"' <<<"$trace_out"; then
    echo "FAIL: trace_tx smoke output is missing the Chrome-trace header" >&2
    exit 1
fi
echo "trace_tx smoke: five-phase timeline + Chrome-trace export present"

echo "==> monitor_status example --smoke"
# The online-alerting path must keep working end to end: the fake-write
# attack fires the Use Case 1 rate alert (with the status table around
# it), and a quiet interval resolves it — in the table, the transition
# log, and the JSON-lines export.
monitor_out="$(cargo run --release -p fabric-pdc --example monitor_status -- --smoke)"
for line in \
    "FIRING uc1_nonmember_endorsement_rate" \
    "RESOLVED uc1_nonmember_endorsement_rate" \
    "flight dump attached" \
    "\"phase\":\"resolved\""; do
    if ! grep -q "${line}" <<<"$monitor_out"; then
        echo "FAIL: monitor_status smoke output is missing '${line}'" >&2
        exit 1
    fi
done
for header in "NODE" "DETECTOR" "ALERTS"; do
    if ! grep -q "^${header}" <<<"$monitor_out"; then
        echo "FAIL: monitor_status smoke output is missing the '${header}' table" >&2
        exit 1
    fi
done
echo "monitor_status smoke: firing, forensics, and resolution all present"

echo "==> analyze lint --flow smoke"
# Taint analysis of the built-in sample registry: the deliberately leaky
# escrow sample carries Error-severity findings, so the lint exit code is
# non-zero by design — the gate checks the report contents instead.
flow_dir="$(mktemp -d)"
flow_out="$(cargo run --release -p fabric-analyzer --bin analyze -- lint "$flow_dir" --flow || true)"
rmdir "$flow_dir"
for rule in PDC012 PDC013 PDC014 PDC015 PDC016 PDC017; do
    if ! grep -q "${rule}" <<<"$flow_out"; then
        echo "FAIL: flow smoke output is missing rule '${rule}'" >&2
        exit 1
    fi
done
if ! grep -q "leaky_escrow" <<<"$flow_out"; then
    echo "FAIL: flow smoke output does not name the leaky sample" >&2
    exit 1
fi
if ! grep -q "flow: GetPrivateData(escrowCollection" <<<"$flow_out"; then
    echo "FAIL: flow smoke output is missing a source→sink flow path" >&2
    exit 1
fi
for clean in guarded sacc secured_trade; do
    if grep -qw "${clean}" <<<"$flow_out"; then
        echo "FAIL: flow smoke flagged the defended sample '${clean}'" >&2
        exit 1
    fi
done
echo "flow smoke: all six flow rules fire on the leaky sample only"

echo "CI gate passed."
