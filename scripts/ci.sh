#!/usr/bin/env bash
# CI gate for the fabric-pdc workspace.
#
# Keeps the repo at a fixed quality bar:
#   1. `cargo fmt --check`                            — formatting drift
#   2. `cargo clippy --all-targets -- -D warnings`    — lint-clean, tests included
#   3. `cargo build --release`                        — release build works
#   4. `cargo test -q`                                — full test suite
#   5. commit-throughput bench smoke run              — bench code can't rot
#
# Run from anywhere; operates on the repository containing this script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> commit_throughput --smoke"
cargo run --release -p fabric-bench --bin commit_throughput -- --smoke

echo "CI gate passed."
