//! The peer node: identity, ledger, installed chaincodes.

use crate::channel::ChannelPolicies;
use fabric_chaincode::{ChaincodeDefinition, ChaincodeHandle, CompiledPolicies};
use fabric_crypto::Keypair;
use fabric_gossip::PeerId;
use fabric_ledger::{BlockStore, HistoryDb, WorldState};
use fabric_policy::PolicyCache;
use fabric_telemetry::Telemetry;
use fabric_types::{ChaincodeId, ChannelId, CollectionName, DefenseConfig, Identity, OrgId, Role};
use std::collections::{HashMap, HashSet};

/// A chaincode installed on a peer: the channel-agreed definition plus this
/// peer's (possibly customized!) implementation.
#[derive(Clone)]
pub struct InstalledChaincode {
    /// The channel-agreed definition (policy, collections).
    pub definition: ChaincodeDefinition,
    /// The definition's policies, parsed once at install time; the commit
    /// path evaluates these instead of re-parsing expressions per
    /// transaction.
    pub compiled: CompiledPolicies,
    /// This peer's implementation. Fabric only requires equal *results*
    /// across endorsers, so organizations may extend or replace the logic —
    /// the customizable-chaincode feature malicious orgs abuse (§IV-A1).
    pub handle: ChaincodeHandle,
    /// Collections of this chaincode the peer's org is a member of.
    pub memberships: HashSet<CollectionName>,
}

impl std::fmt::Debug for InstalledChaincode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstalledChaincode")
            .field("definition", &self.definition.id)
            .field("memberships", &self.memberships)
            .finish()
    }
}

/// A peer node of one organization in one channel.
#[derive(Debug, Clone)]
pub struct Peer {
    pub(crate) gossip_id: PeerId,
    pub(crate) identity: Identity,
    pub(crate) keypair: Keypair,
    pub(crate) channel: ChannelId,
    pub(crate) world_state: WorldState,
    pub(crate) block_store: BlockStore,
    pub(crate) history: HistoryDb,
    pub(crate) chaincodes: HashMap<ChaincodeId, InstalledChaincode>,
    pub(crate) channel_policies: ChannelPolicies,
    pub(crate) defense: DefenseConfig,
    pub(crate) parallel_validation: bool,
    /// Interned state-based-endorsement policy expressions (the key-level
    /// validation parameters live in the world state as strings).
    pub(crate) sbe_policies: PolicyCache,
    /// Shared observability pipeline with pre-resolved metric handles;
    /// `None` (the default) keeps the hot paths instrumentation-free.
    pub(crate) telemetry: Option<crate::telemetry::PeerTelemetry>,
}

impl Peer {
    /// Creates a peer for `org` in `channel`.
    pub fn new(
        name: impl Into<String>,
        org: impl Into<OrgId>,
        channel: impl Into<ChannelId>,
        channel_policies: ChannelPolicies,
        keypair: Keypair,
        defense: DefenseConfig,
    ) -> Self {
        let name = name.into();
        let org = org.into();
        let identity = Identity::new(org, Role::Peer, keypair.public_key());
        Peer {
            gossip_id: PeerId::new(name),
            identity,
            keypair,
            channel: channel.into(),
            world_state: WorldState::new(),
            block_store: BlockStore::new(),
            history: HistoryDb::new(),
            chaincodes: HashMap::new(),
            channel_policies,
            defense,
            parallel_validation: false,
            sbe_policies: PolicyCache::new(),
            telemetry: None,
        }
    }

    /// Installs a chaincode: the shared definition plus this peer's own
    /// implementation (pass a malicious variant here to model colluding
    /// organizations).
    pub fn install_chaincode(&mut self, definition: ChaincodeDefinition, handle: ChaincodeHandle) {
        let compiled = definition.compile();
        let memberships: HashSet<CollectionName> = compiled
            .memberships_of(&self.identity.org)
            .into_iter()
            .collect();
        self.chaincodes.insert(
            definition.id.clone(),
            InstalledChaincode {
                definition,
                compiled,
                handle,
                memberships,
            },
        );
    }

    /// The peer's gossip identifier.
    pub fn gossip_id(&self) -> &PeerId {
        &self.gossip_id
    }

    /// The peer's signing identity.
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    /// The peer's organization.
    pub fn org(&self) -> &OrgId {
        &self.identity.org
    }

    /// The channel this peer serves.
    pub fn channel(&self) -> &ChannelId {
        &self.channel
    }

    /// The active defense configuration.
    pub fn defense(&self) -> DefenseConfig {
        self.defense
    }

    /// Replaces the defense configuration (used by experiments to compare
    /// original vs. modified framework on the same network).
    pub fn set_defense(&mut self, defense: DefenseConfig) {
        self.defense = defense;
    }

    /// Enables fan-out of the per-transaction stateless validation pass
    /// (signatures + endorsement-policy evaluation against the pre-block
    /// state) across threads during block validation. An optimization knob;
    /// results are identical to sequential validation.
    pub fn set_parallel_validation(&mut self, enabled: bool) {
        self.parallel_validation = enabled;
    }

    /// Whether the staged parallel validation pipeline is enabled.
    pub fn parallel_validation(&self) -> bool {
        self.parallel_validation
    }

    /// Attaches a shared telemetry pipeline. Endorsement and block
    /// validation then record spans, metrics, and [`fabric_telemetry::
    /// AuditEvent`]s into it; without one the hot paths stay
    /// instrumentation-free (a single branch per block).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(crate::telemetry::PeerTelemetry::new(telemetry));
    }

    /// The attached telemetry pipeline, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref().map(|t| &t.telemetry)
    }

    /// Read access to the world state.
    pub fn world_state(&self) -> &WorldState {
        &self.world_state
    }

    /// Read access to the local blockchain. Any peer can scan this —
    /// including PDC non-members, which is how leakage extraction works
    /// (§IV-B).
    pub fn block_store(&self) -> &BlockStore {
        &self.block_store
    }

    /// The channel-level per-org sub-policies (for implicitMeta
    /// evaluation and service discovery).
    pub fn channel_policies(&self) -> &ChannelPolicies {
        &self.channel_policies
    }

    /// The committed-write history index (`GetHistoryForKey` backing).
    pub fn history(&self) -> &HistoryDb {
        &self.history
    }

    /// The installed chaincode record, if present.
    pub fn chaincode(&self, id: &ChaincodeId) -> Option<&InstalledChaincode> {
        self.chaincodes.get(id)
    }

    /// Whether this peer's org is a member of `collection` in `chaincode`.
    pub fn is_collection_member(
        &self,
        chaincode: &ChaincodeId,
        collection: &CollectionName,
    ) -> bool {
        self.chaincodes
            .get(chaincode)
            .is_some_and(|cc| cc.memberships.contains(collection))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_chaincode::samples::AssetTransfer;
    use fabric_types::CollectionConfig;
    use std::sync::Arc;

    #[test]
    fn install_derives_memberships() {
        let orgs = vec![
            OrgId::new("Org1MSP"),
            OrgId::new("Org2MSP"),
            OrgId::new("Org3MSP"),
        ];
        let policies = ChannelPolicies::default_for(&orgs);
        let mut p1 = Peer::new(
            "peer0.org1",
            "Org1MSP",
            "ch1",
            policies.clone(),
            Keypair::generate_from_seed(31),
            DefenseConfig::original(),
        );
        let mut p3 = Peer::new(
            "peer0.org3",
            "Org3MSP",
            "ch1",
            policies,
            Keypair::generate_from_seed(33),
            DefenseConfig::original(),
        );
        let def = ChaincodeDefinition::new("cc")
            .with_collection(CollectionConfig::membership_of("PDC1", &orgs[..2]));
        p1.install_chaincode(def.clone(), Arc::new(AssetTransfer));
        p3.install_chaincode(def, Arc::new(AssetTransfer));
        let cc = ChaincodeId::new("cc");
        let pdc1 = CollectionName::new("PDC1");
        assert!(p1.is_collection_member(&cc, &pdc1));
        assert!(!p3.is_collection_member(&cc, &pdc1));
        assert!(!p1.is_collection_member(&ChaincodeId::new("nope"), &pdc1));
    }
}
