//! Channel-level policy configuration shared by all peers of a channel.

use fabric_policy::SignaturePolicy;
use fabric_types::OrgId;
use std::collections::BTreeMap;

/// The per-organization sub-policies an implicitMeta endorsement policy
/// (e.g. `MAJORITY Endorsement`) resolves against, from the channel
/// configuration (`configtx.yaml`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelPolicies {
    orgs: BTreeMap<OrgId, SignaturePolicy>,
}

impl ChannelPolicies {
    /// Builds the Fabric default: each org's `Endorsement` sub-policy is
    /// `OR('<org>.peer')` — any peer of the org can endorse for it.
    pub fn default_for(orgs: &[OrgId]) -> Self {
        let mut map = BTreeMap::new();
        for org in orgs {
            let expr = format!("OR('{}.peer')", org.as_str());
            map.insert(
                org.clone(),
                SignaturePolicy::parse(&expr).expect("generated policy parses"),
            );
        }
        ChannelPolicies { orgs: map }
    }

    /// Overrides one organization's sub-policy.
    pub fn set_org_policy(&mut self, org: OrgId, policy: SignaturePolicy) {
        self.orgs.insert(org, policy);
    }

    /// The per-org sub-policy map used by implicitMeta evaluation.
    pub fn org_policies(&self) -> &BTreeMap<OrgId, SignaturePolicy> {
        &self.orgs
    }

    /// The participating organizations.
    pub fn orgs(&self) -> impl Iterator<Item = &OrgId> {
        self.orgs.keys()
    }

    /// Number of participating organizations.
    pub fn len(&self) -> usize {
        self.orgs.len()
    }

    /// Whether no organizations are configured.
    pub fn is_empty(&self) -> bool {
        self.orgs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::Keypair;
    use fabric_types::{Identity, Role};

    #[test]
    fn default_sub_policy_accepts_any_org_peer() {
        let orgs = vec![OrgId::new("Org1MSP"), OrgId::new("Org2MSP")];
        let policies = ChannelPolicies::default_for(&orgs);
        assert_eq!(policies.len(), 2);
        let p1 = Identity::new(
            "Org1MSP",
            Role::Peer,
            Keypair::generate_from_seed(1).public_key(),
        );
        assert!(policies.org_policies()[&orgs[0]].satisfied_by(std::slice::from_ref(&p1)));
        assert!(!policies.org_policies()[&orgs[1]].satisfied_by(&[p1]));
    }
}
