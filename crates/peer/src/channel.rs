//! Channel-level policy configuration shared by all peers of a channel,
//! and the per-channel commit lanes of the sharded commit scheduler.

use crate::commit::{BlockCommitOutcome, CommitError};
use crate::node::Peer;
use fabric_policy::SignaturePolicy;
use fabric_types::{Block, OrgId, PvtDataPackage, TxId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The per-organization sub-policies an implicitMeta endorsement policy
/// (e.g. `MAJORITY Endorsement`) resolves against, from the channel
/// configuration (`configtx.yaml`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelPolicies {
    orgs: BTreeMap<OrgId, SignaturePolicy>,
}

impl ChannelPolicies {
    /// Builds the Fabric default: each org's `Endorsement` sub-policy is
    /// `OR('<org>.peer')` — any peer of the org can endorse for it.
    pub fn default_for(orgs: &[OrgId]) -> Self {
        let mut map = BTreeMap::new();
        for org in orgs {
            let expr = format!("OR('{}.peer')", org.as_str());
            map.insert(
                org.clone(),
                SignaturePolicy::parse(&expr).expect("generated policy parses"),
            );
        }
        ChannelPolicies { orgs: map }
    }

    /// Overrides one organization's sub-policy.
    pub fn set_org_policy(&mut self, org: OrgId, policy: SignaturePolicy) {
        self.orgs.insert(org, policy);
    }

    /// The per-org sub-policy map used by implicitMeta evaluation.
    pub fn org_policies(&self) -> &BTreeMap<OrgId, SignaturePolicy> {
        &self.orgs
    }

    /// The participating organizations.
    pub fn orgs(&self) -> impl Iterator<Item = &OrgId> {
        self.orgs.keys()
    }

    /// Number of participating organizations.
    pub fn len(&self) -> usize {
        self.orgs.len()
    }

    /// Whether no organizations are configured.
    pub fn is_empty(&self) -> bool {
        self.orgs.is_empty()
    }
}

/// One channel's share of a sharded commit: the committing peer, its
/// ordered block stream, and the private-data provider backing it.
///
/// Channels are independent by construction — separate ledgers, separate
/// chains, no shared mutable state — which is what makes committing them
/// on separate cores sound. Each lane runs its stream through
/// [`Peer::process_blocks_overlapped`], so within a lane the cross-block
/// overlap applies too.
/// Boxed private-data provider carried by a [`CommitLane`].
type LaneProvider<'a> = Box<dyn FnMut(&TxId) -> Option<Arc<PvtDataPackage>> + Send + 'a>;

pub struct CommitLane<'a> {
    peer: &'a mut Peer,
    blocks: Vec<Block>,
    provider: LaneProvider<'a>,
}

impl<'a> CommitLane<'a> {
    /// A lane committing `blocks` (consecutive, in order) on `peer`,
    /// pulling plaintext private data from `provider`.
    pub fn new(
        peer: &'a mut Peer,
        blocks: Vec<Block>,
        provider: impl FnMut(&TxId) -> Option<Arc<PvtDataPackage>> + Send + 'a,
    ) -> Self {
        CommitLane {
            peer,
            blocks,
            provider: Box::new(provider),
        }
    }

    /// Commits this lane's stream; same contract as
    /// [`Peer::process_blocks_overlapped`].
    fn run(mut self) -> Result<Vec<BlockCommitOutcome>, CommitError> {
        self.peer
            .process_blocks_overlapped(self.blocks, &mut *self.provider)
    }
}

impl std::fmt::Debug for CommitLane<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitLane")
            .field("peer", self.peer.gossip_id())
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

/// Shards a multi-channel commit across per-channel lanes, one scoped
/// thread per lane when the host has the cores for it. Lanes never share
/// ledger state, so per-lane results are bit-identical to committing the
/// lanes one after another.
///
/// # Examples
///
/// ```
/// use fabric_peer::{ChannelPolicies, CommitLane, Peer, ShardedScheduler};
/// use fabric_crypto::Keypair;
/// use fabric_types::{Block, DefenseConfig, OrgId};
///
/// let orgs = vec![OrgId::new("Org1MSP")];
/// let make_peer = |name: &str, ch: &str, seed| {
///     Peer::new(
///         name,
///         "Org1MSP",
///         ch,
///         ChannelPolicies::default_for(&orgs),
///         Keypair::generate_from_seed(seed),
///         DefenseConfig::original(),
///     )
/// };
/// let mut a = make_peer("peer0.org1", "ch-a", 1);
/// let mut b = make_peer("peer1.org1", "ch-b", 2);
/// let block_for = |p: &Peer| vec![Block::new(0, p.block_store().tip_hash(), vec![])];
/// let (blocks_a, blocks_b) = (block_for(&a), block_for(&b));
/// let lanes = vec![
///     CommitLane::new(&mut a, blocks_a, |_| None),
///     CommitLane::new(&mut b, blocks_b, |_| None),
/// ];
/// let results = ShardedScheduler::new(lanes).commit();
/// assert!(results.iter().all(|r| r.is_ok()));
/// assert_eq!(a.block_store().height(), 1);
/// assert_eq!(b.block_store().height(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedScheduler<'a> {
    lanes: Vec<CommitLane<'a>>,
}

impl<'a> ShardedScheduler<'a> {
    /// A scheduler over the given lanes.
    pub fn new(lanes: Vec<CommitLane<'a>>) -> Self {
        ShardedScheduler { lanes }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the scheduler has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Commits every lane, in parallel when more than one hardware thread
    /// is available, and returns per-lane results in lane order.
    pub fn commit(self) -> Vec<Result<Vec<BlockCommitOutcome>, CommitError>> {
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        if self.lanes.len() < 2 || cores < 2 {
            return self.lanes.into_iter().map(CommitLane::run).collect();
        }
        let mut results: Vec<Option<Result<Vec<BlockCommitOutcome>, CommitError>>> =
            (0..self.lanes.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (lane, slot) in self.lanes.into_iter().zip(results.iter_mut()) {
                scope.spawn(move || *slot = Some(lane.run()));
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every lane thread ran to completion"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::Keypair;
    use fabric_types::{DefenseConfig, Identity, Role};

    #[test]
    fn default_sub_policy_accepts_any_org_peer() {
        let orgs = vec![OrgId::new("Org1MSP"), OrgId::new("Org2MSP")];
        let policies = ChannelPolicies::default_for(&orgs);
        assert_eq!(policies.len(), 2);
        let p1 = Identity::new(
            "Org1MSP",
            Role::Peer,
            Keypair::generate_from_seed(1).public_key(),
        );
        assert!(policies.org_policies()[&orgs[0]].satisfied_by(std::slice::from_ref(&p1)));
        assert!(!policies.org_policies()[&orgs[1]].satisfied_by(&[p1]));
    }

    fn lane_peer(name: &str, channel: &str, seed: u64) -> Peer {
        let orgs = vec![OrgId::new("Org1MSP")];
        Peer::new(
            name,
            "Org1MSP",
            channel,
            ChannelPolicies::default_for(&orgs),
            Keypair::generate_from_seed(seed),
            DefenseConfig::original(),
        )
    }

    fn empty_stream(peer: &Peer, blocks: usize) -> Vec<Block> {
        let mut prev = peer.block_store().tip_hash();
        let mut out = Vec::with_capacity(blocks);
        for n in 0..blocks {
            let b = Block::new(peer.block_store().height() + n as u64, prev, vec![]);
            prev = b.hash();
            out.push(b);
        }
        out
    }

    #[test]
    fn sharded_lanes_commit_independently() {
        let mut a = lane_peer("peer0.org1", "ch-a", 11);
        let mut b = lane_peer("peer1.org1", "ch-b", 12);
        let (sa, sb) = (empty_stream(&a, 3), empty_stream(&b, 2));
        let lanes = vec![
            CommitLane::new(&mut a, sa, |_| None),
            CommitLane::new(&mut b, sb, |_| None),
        ];
        let sched = ShardedScheduler::new(lanes);
        assert_eq!(sched.len(), 2);
        let results = sched.commit();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].as_ref().unwrap().len(), 3);
        assert_eq!(results[1].as_ref().unwrap().len(), 2);
        assert_eq!(a.block_store().height(), 3);
        assert_eq!(b.block_store().height(), 2);
    }

    #[test]
    fn failing_lane_reports_error_without_poisoning_others() {
        let mut a = lane_peer("peer0.org1", "ch-a", 13);
        let mut b = lane_peer("peer1.org1", "ch-b", 14);
        let sa = empty_stream(&a, 2);
        // A stream that does not chain onto lane b's (empty) ledger.
        let bogus = vec![Block::new(7, fabric_crypto::sha256(b"bogus"), vec![])];
        let lanes = vec![
            CommitLane::new(&mut a, sa, |_| None),
            CommitLane::new(&mut b, bogus, |_| None),
        ];
        let results = ShardedScheduler::new(lanes).commit();
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert_eq!(a.block_store().height(), 2);
        assert_eq!(b.block_store().height(), 0);
    }
}
