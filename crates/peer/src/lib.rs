//! Peer node logic: endorsement (execution phase) and validation/commit
//! (validation phase), including the paper's proposed defenses.
//!
//! A peer (paper §II-A1):
//!
//! * hosts the ledger (world state + block store) for its channel;
//! * **endorses** transaction proposals by simulating chaincode against its
//!   world-state snapshot and signing the proposal response
//!   ([`Peer::endorse`]);
//! * **validates and commits** ordered blocks through the proof-of-policy
//!   checks — endorsement policy and MVCC version conflict —
//!   ([`Peer::process_block`]).
//!
//! The validation pipeline reproduces the misuse the paper identifies:
//! with [`DefenseConfig::original`](fabric_types::DefenseConfig::original),
//! PDC read-only transactions are validated against the *chaincode-level*
//! policy (Use Case 2) and endorsements from PDC non-members are accepted
//! (Use Case 1). Enabling the defenses changes exactly the code paths the
//! paper's modified Fabric changes.

mod channel;
mod commit;
mod endorse;
mod node;
mod sched;
mod telemetry;

pub use channel::{ChannelPolicies, CommitLane, ShardedScheduler};
pub use commit::{BlockCommitOutcome, CommitError, PvtDataProvider};
pub use endorse::EndorseError;
pub use node::{InstalledChaincode, Peer};
