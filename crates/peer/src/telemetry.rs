//! The peer's telemetry attachment: metric handles resolved once.

use fabric_telemetry::{Counter, Gauge, Histogram, Telemetry, DURATION_SECONDS_BUCKETS};
use std::ops::Deref;
use std::sync::Arc;

/// A shared [`Telemetry`] pipeline plus the peer's hot-path metric
/// handles, resolved once when the pipeline is attached. The commit and
/// endorse paths then pay lock-free atomic updates per block instead of
/// name/label registry lookups.
///
/// All handles live behind one `Arc`, so the per-block clone the commit
/// path makes (to keep telemetry alive across mutable borrows of the
/// peer) is a single reference-count bump, not one per handle.
///
/// Derefs to [`PeerHandles`] (and through it to [`Telemetry`]) for
/// spans, audit events, and the metric handles.
#[derive(Debug, Clone)]
pub(crate) struct PeerTelemetry {
    inner: Arc<PeerHandles>,
}

/// The resolved handle set behind [`PeerTelemetry`]'s `Arc`.
#[derive(Debug)]
pub(crate) struct PeerHandles {
    pub telemetry: Telemetry,
    /// `fabric_commit_stage_seconds{stage="stateless"}`.
    pub stage_stateless: Histogram,
    /// `fabric_commit_stage_seconds{stage="stateful"}`.
    pub stage_stateful: Histogram,
    pub blocks_committed: Counter,
    pub txs_processed: Counter,
    pub missing_private: Counter,
    pub block_height: Gauge,
    /// `fabric_validation_results_total{code="VALID"}` — the common case;
    /// other codes resolve through the registry when they occur.
    pub valid_txs: Counter,
    pub endorse_ok: Counter,
    pub endorse_err: Counter,
    pub endorse_seconds: Histogram,
}

impl PeerTelemetry {
    pub fn new(telemetry: Telemetry) -> Self {
        let m = telemetry.metrics();
        let stage = |s: &str| {
            m.histogram(
                "fabric_commit_stage_seconds",
                "Validation pipeline stage latency per block",
                &[("stage", s)],
                DURATION_SECONDS_BUCKETS,
            )
        };
        let endorse = |r: &str| {
            m.counter(
                "fabric_endorsements_total",
                "Endorsement requests by outcome",
                &[("result", r)],
            )
        };
        PeerTelemetry {
            inner: Arc::new(PeerHandles {
                stage_stateless: stage("stateless"),
                stage_stateful: stage("stateful"),
                blocks_committed: m.counter(
                    "fabric_blocks_committed_total",
                    "Blocks appended to the local chain",
                    &[],
                ),
                txs_processed: m.counter(
                    "fabric_txs_processed_total",
                    "Transactions carried by committed blocks",
                    &[],
                ),
                missing_private: m.counter(
                    "fabric_missing_private_data_total",
                    "Valid PDC transactions committed with hashes only",
                    &[],
                ),
                block_height: m.gauge(
                    "fabric_committed_block_height",
                    "Local chain height after the last commit",
                    &[],
                ),
                valid_txs: m.counter(
                    "fabric_validation_results_total",
                    "Transaction validation codes across committed blocks",
                    &[("code", "VALID")],
                ),
                endorse_ok: endorse("ok"),
                endorse_err: endorse("err"),
                endorse_seconds: m.histogram(
                    "fabric_endorse_seconds",
                    "Proposal simulation and endorsement latency",
                    &[],
                    DURATION_SECONDS_BUCKETS,
                ),
                telemetry,
            }),
        }
    }
}

impl Deref for PeerTelemetry {
    type Target = PeerHandles;

    fn deref(&self) -> &PeerHandles {
        &self.inner
    }
}

impl Deref for PeerHandles {
    type Target = Telemetry;

    fn deref(&self) -> &Telemetry {
        &self.telemetry
    }
}
