//! The validation phase: proof-of-policy checks, MVCC, and commit.

use crate::node::Peer;
use fabric_ledger::BlockStoreError;
use fabric_policy::{Policy, SignaturePolicy};
use fabric_types::{
    Block, ChaincodeEvent, Identity, PvtDataPackage, Transaction, TxId, TxValidationCode, Version,
};
use std::collections::HashSet;
use std::fmt;

/// Supplies plaintext private data for a transaction being committed
/// (backed by the gossip transient store plus anti-entropy pull).
pub type PvtDataProvider<'a> = dyn FnMut(&TxId) -> Option<PvtDataPackage> + 'a;

/// Errors that abort block processing entirely (individual transaction
/// failures are recorded as validation codes instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// The block does not extend this peer's chain.
    BlockStore(BlockStoreError),
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::BlockStore(e) => write!(f, "block rejected: {e}"),
        }
    }
}

impl std::error::Error for CommitError {}

impl From<BlockStoreError> for CommitError {
    fn from(e: BlockStoreError) -> Self {
        CommitError::BlockStore(e)
    }
}

/// The result of validating and committing one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCommitOutcome {
    /// Per-transaction validation codes, in block order.
    pub validation_codes: Vec<TxValidationCode>,
    /// Valid PDC transactions for which this (member) peer could not obtain
    /// matching plaintext private data; only hashes were committed and the
    /// transaction awaits reconciliation.
    pub missing_private_data: Vec<TxId>,
    /// Chaincode events of the VALID transactions, in block order
    /// (invalid transactions' events are never delivered, as in Fabric).
    pub events: Vec<(TxId, ChaincodeEvent)>,
}

impl Peer {
    /// Validates every transaction in `block` through the proof-of-policy
    /// checks (endorsement policy + MVCC version conflict, §II-B3), commits
    /// the effects of valid ones, and appends the block with its validity
    /// vector to the local chain.
    ///
    /// `pvt_provider` supplies plaintext private rwsets (transient store /
    /// gossip pull) for collections this peer is a member of.
    ///
    /// # Errors
    ///
    /// [`CommitError::BlockStore`] when the block does not chain onto the
    /// local ledger (nothing is committed in that case).
    pub fn process_block(
        &mut self,
        block: Block,
        pvt_provider: &mut PvtDataProvider<'_>,
    ) -> Result<BlockCommitOutcome, CommitError> {
        // Verify chain linkage *before* mutating any state.
        let expected_number = self.block_store.height();
        if block.header.number != expected_number
            || block.header.previous_hash != self.block_store.tip_hash()
            || !block.data_hash_is_consistent()
        {
            // Delegate to the block store for a precise error.
            let err = self
                .block_store
                .clone()
                .append(block)
                .expect_err("pre-checked inconsistency");
            return Err(err.into());
        }

        let block_num = block.header.number;
        let mut codes = Vec::with_capacity(block.transactions.len());
        let mut missing = Vec::new();
        let mut events = Vec::new();
        let mut seen_in_block: HashSet<TxId> = HashSet::new();

        // Signature verification is stateless per transaction, so it can
        // fan out across threads (Fabric's validator does the same); the
        // policy and MVCC checks stay sequential because key-level
        // endorsement parameters and versions change as the block commits.
        let sig_codes = self.check_signatures_batch(&block.transactions);

        for (i, tx) in block.transactions.iter().enumerate() {
            let code = if seen_in_block.contains(&tx.tx_id) {
                TxValidationCode::DuplicateTxId
            } else if let Some(sig_failure) = sig_codes[i] {
                sig_failure
            } else {
                self.validate_transaction_prechecked(tx)
            };
            seen_in_block.insert(tx.tx_id.clone());
            if code.is_valid() {
                let version = Version::new(block_num, i as u64);
                if !self.apply_transaction(tx, version, pvt_provider) {
                    missing.push(tx.tx_id.clone());
                }
                if let Some(event) = &tx.payload.event {
                    events.push((tx.tx_id.clone(), event.clone()));
                }
            }
            codes.push(code);
        }

        let mut block = block;
        block.metadata.validation_codes = codes.clone();
        self.block_store.append(block)?;
        self.purge_expired(block_num);

        Ok(BlockCommitOutcome {
            validation_codes: codes,
            missing_private_data: missing,
            events,
        })
    }

    /// The stateless signature checks of one transaction; `None` = passed.
    fn signature_check(tx: &Transaction) -> Option<TxValidationCode> {
        if !tx.verify_client_signature() {
            return Some(TxValidationCode::InvalidClientSignature);
        }
        if tx.endorsements.is_empty() || !tx.verify_endorsement_signatures() {
            return Some(TxValidationCode::InvalidEndorserSignature);
        }
        None
    }

    /// Runs [`Peer::signature_check`] over a block's transactions, fanned
    /// out across scoped threads when parallel validation is enabled and
    /// the block is large enough to amortize the spawns.
    fn check_signatures_batch(
        &self,
        transactions: &[Transaction],
    ) -> Vec<Option<TxValidationCode>> {
        const MIN_PARALLEL: usize = 4;
        if !self.parallel_validation || transactions.len() < MIN_PARALLEL {
            return transactions.iter().map(Self::signature_check).collect();
        }
        let workers = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(4)
            .min(transactions.len());
        let chunk_size = transactions.len().div_ceil(workers);
        let mut results = vec![None; transactions.len()];
        std::thread::scope(|scope| {
            let chunks = transactions.chunks(chunk_size);
            let result_chunks = results.chunks_mut(chunk_size);
            for (txs, out) in chunks.zip(result_chunks) {
                scope.spawn(move || {
                    for (tx, slot) in txs.iter().zip(out.iter_mut()) {
                        *slot = Self::signature_check(tx);
                    }
                });
            }
        });
        results
    }

    /// Validates a single transaction against the current state: signature
    /// checks, endorsement policy (proof-of-policy check 1), and MVCC
    /// version conflicts (check 2). Does not mutate state.
    pub fn validate_transaction(&self, tx: &Transaction) -> TxValidationCode {
        if let Some(code) = Self::signature_check(tx) {
            return code;
        }
        self.validate_transaction_prechecked(tx)
    }

    /// [`Peer::validate_transaction`] with the signature checks already
    /// performed (e.g. by the parallel batch pass).
    fn validate_transaction_prechecked(&self, tx: &Transaction) -> TxValidationCode {
        if tx.channel != self.channel {
            return TxValidationCode::BadPayload;
        }
        if self.block_store.contains_tx(&tx.tx_id) {
            return TxValidationCode::DuplicateTxId;
        }

        let endorsers: Vec<Identity> = tx.endorsements.iter().map(|e| e.endorser.clone()).collect();

        for ns in &tx.payload.results.ns_rwsets {
            let Some(installed) = self.chaincodes.get(&ns.namespace) else {
                return TxValidationCode::BadPayload;
            };
            let def = &installed.definition;

            // --- Proof-of-policy check 1: endorsement policy ---
            // Key-level (state-based) endorsement first: a public write to
            // a key with a committed validation parameter is governed by
            // that key's policy (Fabric's validator_keylevel.go — the code
            // the paper cites for Use Case 2). Changing a key's parameter
            // itself requires satisfying the existing parameter.
            let mut non_sbe_public_writes = false;
            for w in &ns.public.writes {
                match self
                    .world_state
                    .get_validation_parameter(&ns.namespace, &w.key)
                {
                    Some(expr) => {
                        let Ok(key_policy) = SignaturePolicy::parse(expr) else {
                            return TxValidationCode::BadPayload;
                        };
                        if !key_policy.satisfied_by(&endorsers) {
                            return TxValidationCode::EndorsementPolicyFailure;
                        }
                    }
                    None => non_sbe_public_writes = true,
                }
            }
            for m in &ns.metadata_writes {
                match self
                    .world_state
                    .get_validation_parameter(&ns.namespace, &m.key)
                {
                    Some(expr) => {
                        let Ok(key_policy) = SignaturePolicy::parse(expr) else {
                            return TxValidationCode::BadPayload;
                        };
                        if !key_policy.satisfied_by(&endorsers) {
                            return TxValidationCode::EndorsementPolicyFailure;
                        }
                    }
                    None => non_sbe_public_writes = true,
                }
            }

            // The chaincode-level policy applies to everything not fully
            // covered by key-level parameters: reads (always — Use Case 2),
            // non-SBE public writes, collection rwsets, and empty results.
            // Note it does NOT distinguish member from non-member
            // endorsements (Use Case 1).
            let needs_chaincode_policy = !ns.public.reads.is_empty()
                || non_sbe_public_writes
                || !ns.collections.is_empty()
                || (ns.public.writes.is_empty() && ns.metadata_writes.is_empty());
            if needs_chaincode_policy {
                let Ok(cc_policy) = Policy::parse(&def.endorsement_policy) else {
                    return TxValidationCode::BadPayload;
                };
                if !cc_policy.evaluate(self.channel_policies.org_policies(), &endorsers) {
                    return TxValidationCode::EndorsementPolicyFailure;
                }
            }

            for col in &ns.collections {
                let Some(cfg) = def.collection(&col.collection) else {
                    return TxValidationCode::BadPayload;
                };
                let has_writes = !col.writes.is_empty();
                let has_reads = !col.reads.is_empty();
                // Original Fabric: the collection-level policy (when
                // defined) governs transactions that *write* the
                // collection; read-only transactions are always validated
                // with the chaincode-level policy (Use Case 2, per the
                // key-level validator in the Fabric source).
                // New Feature 1 extends the collection-level policy to
                // read-only transactions (§IV-C1).
                let apply_collection_policy = cfg.endorsement_policy.is_some()
                    && (has_writes || (self.defense.collection_policy_for_reads && has_reads));
                if apply_collection_policy {
                    let expr = cfg
                        .endorsement_policy
                        .as_deref()
                        .expect("checked is_some above");
                    let Ok(col_policy) = SignaturePolicy::parse(expr) else {
                        return TxValidationCode::BadPayload;
                    };
                    if !col_policy.satisfied_by(&endorsers) {
                        return TxValidationCode::EndorsementPolicyFailure;
                    }
                }
                // Supplemental defense: reject endorsements by peers whose
                // org is not a member of the touched collection.
                if self.defense.filter_non_member_endorsers {
                    let all_members = endorsers
                        .iter()
                        .all(|e| def.org_is_member(&e.org, &col.collection));
                    if !all_members {
                        return TxValidationCode::NonMemberEndorsement;
                    }
                }
            }

            // --- Proof-of-policy check 2: MVCC version conflicts ---
            // Note: only versions are compared; chaincode is never
            // re-executed, so fabricated values with correct versions pass
            // (§IV-A1).
            if self
                .world_state
                .check_mvcc_public(&ns.namespace, &ns.public.reads)
                .is_err()
            {
                return TxValidationCode::MvccReadConflict;
            }
            for col in &ns.collections {
                if self
                    .world_state
                    .check_mvcc_hashed(&ns.namespace, &col.collection, &col.reads)
                    .is_err()
                {
                    return TxValidationCode::MvccReadConflict;
                }
            }
        }
        TxValidationCode::Valid
    }

    /// Applies a valid transaction's writes at `version`. Returns `false`
    /// when this peer is a member of a written collection but could not
    /// obtain matching plaintext (hashes were committed regardless).
    fn apply_transaction(
        &mut self,
        tx: &Transaction,
        version: Version,
        pvt_provider: &mut PvtDataProvider<'_>,
    ) -> bool {
        let mut plaintext_complete = true;
        let mut package: Option<Option<PvtDataPackage>> = None;

        // Collect namespaces first to end the immutable borrow of
        // `self.chaincodes` before mutating the world state.
        let ns_rwsets = tx.payload.results.ns_rwsets.clone();
        for ns in &ns_rwsets {
            self.world_state
                .apply_public_writes(&ns.namespace, &ns.public, version);
            self.world_state
                .apply_metadata_writes(&ns.namespace, &ns.metadata_writes);
            for w in &ns.public.writes {
                self.history.record(
                    &ns.namespace,
                    &w.key,
                    &tx.tx_id,
                    version,
                    w.value.clone(),
                    w.is_delete,
                );
            }
            for col in &ns.collections {
                if col.writes.is_empty() {
                    continue;
                }
                let is_member = self.is_collection_member(&ns.namespace, &col.collection);
                let mut applied_plaintext = false;
                if is_member {
                    let pkg = package
                        .get_or_insert_with(|| pvt_provider(&tx.tx_id))
                        .clone();
                    if let Some(pkg) = pkg {
                        // Verify plaintext against committed hashes before
                        // updating the ledger (Fig. 2, step 18).
                        let matching = pkg
                            .namespaces
                            .iter()
                            .zip(&pkg.collections)
                            .find(|(n, c)| **n == ns.namespace && c.collection == col.collection)
                            .map(|(_, c)| c);
                        if let Some(pvt) = matching {
                            if pvt.to_hashed() == *col {
                                self.world_state
                                    .apply_private_writes(&ns.namespace, pvt, version);
                                applied_plaintext = true;
                            }
                        }
                    }
                }
                if !applied_plaintext {
                    self.world_state.apply_hashed_writes(
                        &ns.namespace,
                        &col.collection,
                        &col.writes,
                        version,
                    );
                    if is_member {
                        plaintext_complete = false;
                    }
                }
            }
        }
        plaintext_complete
    }

    fn purge_expired(&mut self, current_block: u64) {
        let collections: Vec<(fabric_types::CollectionName, u64)> = self
            .chaincodes
            .values()
            .flat_map(|cc| cc.definition.collections.iter())
            .filter(|c| c.block_to_live > 0)
            .map(|c| (c.name.clone(), c.block_to_live))
            .collect();
        for (name, btl) in collections {
            self.world_state
                .purge_expired_private(&name, btl, current_block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelPolicies;
    use fabric_chaincode::samples::GuardedPdc;
    use fabric_chaincode::ChaincodeDefinition;
    use fabric_crypto::Keypair;
    use fabric_types::{
        CollectionConfig, CollectionName, DefenseConfig, Endorsement, OrgId, Proposal, Role,
    };
    use std::collections::BTreeMap;
    use std::sync::Arc;

    const COL: &str = "PDC1";

    fn orgs() -> Vec<OrgId> {
        (1..=3).map(|i| OrgId::new(format!("Org{i}MSP"))).collect()
    }

    fn make_peer(name: &str, org: &str, seed: u64) -> Peer {
        let mut p = Peer::new(
            name,
            org,
            "ch1",
            ChannelPolicies::default_for(&orgs()),
            Keypair::generate_from_seed(seed),
            DefenseConfig::original(),
        );
        let def = ChaincodeDefinition::new("guarded")
            .with_collection(CollectionConfig::membership_of(COL, &orgs()[..2]));
        p.install_chaincode(def, Arc::new(GuardedPdc::unconstrained(COL)));
        p
    }

    /// Builds a valid write transaction endorsed by the given peers.
    fn write_tx(
        endorsing_peers: &[&Peer],
        value: i64,
        nonce: u64,
    ) -> (Transaction, PvtDataPackage) {
        let client_kp = Keypair::generate_from_seed(1000 + nonce);
        let creator = Identity::new("Org1MSP", Role::Client, client_kp.public_key());
        let proposal = Proposal::new(
            "ch1",
            "guarded",
            "write",
            vec![b"k1".to_vec(), value.to_string().into_bytes()],
            BTreeMap::new(),
            creator.clone(),
            nonce,
        );
        let mut responses = Vec::new();
        let mut pvt = None;
        for p in endorsing_peers {
            let (resp, pkg) = p.endorse(&proposal).expect("endorse");
            if pvt.is_none() {
                pvt = pkg;
            }
            responses.push(resp);
        }
        let payload = responses[0].payload.clone();
        let commitment = responses[0].commitment;
        let endorsements: Vec<Endorsement> = responses.into_iter().map(|r| r.endorsement).collect();
        let client_signature = client_kp.sign(&Transaction::client_signed_bytes(
            &proposal.tx_id,
            &payload,
            &endorsements,
        ));
        (
            Transaction {
                tx_id: proposal.tx_id.clone(),
                channel: proposal.channel.clone(),
                chaincode: proposal.chaincode.clone(),
                creator,
                payload,
                commitment,
                endorsements,
                client_signature,
            },
            pvt.expect("write produces private data"),
        )
    }

    fn block_of(peer: &Peer, txs: Vec<Transaction>) -> Block {
        Block::new(peer.block_store.height(), peer.block_store.tip_hash(), txs)
    }

    #[test]
    fn valid_write_commits_plaintext_at_members_hashes_at_non_members() {
        let mut p1 = make_peer("peer0.org1", "Org1MSP", 51);
        let mut p2 = make_peer("peer0.org2", "Org2MSP", 52);
        let mut p3 = make_peer("peer0.org3", "Org3MSP", 53);
        let (tx, pkg) = write_tx(&[&p1, &p2], 7, 1);
        let block = block_of(&p1, vec![tx.clone()]);

        let mut with_pkg = |_: &TxId| Some(pkg.clone());
        let outcome = p1.process_block(block.clone(), &mut with_pkg).unwrap();
        assert_eq!(outcome.validation_codes, vec![TxValidationCode::Valid]);
        p2.process_block(block.clone(), &mut with_pkg).unwrap();
        let mut no_pkg = |_: &TxId| None;
        p3.process_block(block, &mut no_pkg).unwrap();

        let ns = fabric_types::ChaincodeId::new("guarded");
        let col = CollectionName::new(COL);
        // Members hold plaintext.
        assert_eq!(
            p1.world_state().get_private(&ns, &col, "k1").unwrap().value,
            b"7"
        );
        assert_eq!(
            p2.world_state().get_private(&ns, &col, "k1").unwrap().value,
            b"7"
        );
        // Non-member holds only hashes, same version.
        assert!(p3.world_state().get_private(&ns, &col, "k1").is_none());
        assert_eq!(
            p3.world_state().get_private_hash(&ns, &col, "k1"),
            p1.world_state().get_private_hash(&ns, &col, "k1")
        );
    }

    #[test]
    fn member_missing_plaintext_commits_hashes_and_reports() {
        let p1 = make_peer("peer0.org1", "Org1MSP", 54);
        let mut p2 = make_peer("peer0.org2", "Org2MSP", 55);
        let (tx, _) = write_tx(&[&p1, &p2.clone()], 9, 2);
        let block = block_of(&p2, vec![tx.clone()]);
        let mut no_pkg = |_: &TxId| None;
        let outcome = p2.process_block(block, &mut no_pkg).unwrap();
        assert_eq!(outcome.validation_codes, vec![TxValidationCode::Valid]);
        assert_eq!(outcome.missing_private_data, vec![tx.tx_id.clone()]);
        let ns = fabric_types::ChaincodeId::new("guarded");
        let col = CollectionName::new(COL);
        assert!(p2.world_state().get_private(&ns, &col, "k1").is_none());
        assert!(p2.world_state().get_private_hash(&ns, &col, "k1").is_some());
    }

    #[test]
    fn insufficient_endorsements_fail_policy() {
        // MAJORITY of 3 orgs needs 2; one endorsement fails.
        let mut p1 = make_peer("peer0.org1", "Org1MSP", 56);
        let (tx, pkg) = write_tx(&[&p1.clone()], 7, 3);
        let block = block_of(&p1, vec![tx]);
        let mut with_pkg = |_: &TxId| Some(pkg.clone());
        let outcome = p1.process_block(block, &mut with_pkg).unwrap();
        assert_eq!(
            outcome.validation_codes,
            vec![TxValidationCode::EndorsementPolicyFailure]
        );
    }

    #[test]
    fn tampered_payload_fails_endorser_signatures() {
        let mut p1 = make_peer("peer0.org1", "Org1MSP", 57);
        let p2 = make_peer("peer0.org2", "Org2MSP", 58);
        let (mut tx, pkg) = write_tx(&[&p1.clone(), &p2], 7, 4);
        tx.payload.response.payload = b"forged".to_vec();
        // Re-sign as client so the failure isolates to endorsements.
        let client_kp = Keypair::generate_from_seed(1004);
        tx.client_signature = client_kp.sign(&Transaction::client_signed_bytes(
            &tx.tx_id,
            &tx.payload,
            &tx.endorsements,
        ));
        tx.creator = Identity::new("Org1MSP", Role::Client, client_kp.public_key());
        let block = block_of(&p1, vec![tx]);
        let mut with_pkg = |_: &TxId| Some(pkg.clone());
        let outcome = p1.process_block(block, &mut with_pkg).unwrap();
        assert_eq!(
            outcome.validation_codes,
            vec![TxValidationCode::InvalidEndorserSignature]
        );
    }

    #[test]
    fn duplicate_txid_rejected_within_and_across_blocks() {
        let mut p1 = make_peer("peer0.org1", "Org1MSP", 59);
        let p2 = make_peer("peer0.org2", "Org2MSP", 60);
        let (tx, pkg) = write_tx(&[&p1.clone(), &p2], 7, 5);
        let block = block_of(&p1, vec![tx.clone(), tx.clone()]);
        let mut with_pkg = |_: &TxId| Some(pkg.clone());
        let outcome = p1.process_block(block, &mut with_pkg).unwrap();
        assert_eq!(
            outcome.validation_codes,
            vec![TxValidationCode::Valid, TxValidationCode::DuplicateTxId]
        );
        // Same tx in a later block is also rejected.
        let block2 = block_of(&p1, vec![tx]);
        let outcome2 = p1.process_block(block2, &mut with_pkg).unwrap();
        assert_eq!(
            outcome2.validation_codes,
            vec![TxValidationCode::DuplicateTxId]
        );
    }

    #[test]
    fn non_chaining_block_rejected_without_commit() {
        let mut p1 = make_peer("peer0.org1", "Org1MSP", 61);
        let p2 = make_peer("peer0.org2", "Org2MSP", 62);
        let (tx, pkg) = write_tx(&[&p1.clone(), &p2], 7, 6);
        let bad = Block::new(5, fabric_crypto::sha256(b"bogus"), vec![tx]);
        let mut with_pkg = |_: &TxId| Some(pkg.clone());
        assert!(p1.process_block(bad, &mut with_pkg).is_err());
        assert_eq!(p1.block_store().height(), 0);
        assert_eq!(p1.world_state().hashed_len(), 0);
    }

    #[test]
    fn mvcc_conflict_between_blocks() {
        let mut p1 = make_peer("peer0.org1", "Org1MSP", 63);
        let mut p2 = make_peer("peer0.org2", "Org2MSP", 64);
        // Commit k1 = 5 first.
        let (tx1, pkg1) = write_tx(&[&p1, &p2], 5, 7);
        let block1 = block_of(&p1, vec![tx1]);
        let mut with_pkg1 = |_: &TxId| Some(pkg1.clone());
        p1.process_block(block1.clone(), &mut with_pkg1).unwrap();
        p2.process_block(block1, &mut with_pkg1).unwrap();

        // An "add" endorsed now reads version (0,0)... build it before the
        // next write commits, then commit a conflicting write first.
        let client_kp = Keypair::generate_from_seed(2000);
        let creator = Identity::new("Org1MSP", Role::Client, client_kp.public_key());
        let add_proposal = Proposal::new(
            "ch1",
            "guarded",
            "add",
            vec![b"k1".to_vec(), b"1".to_vec()],
            BTreeMap::new(),
            creator.clone(),
            50,
        );
        let (r1, add_pkg) = p1.endorse(&add_proposal).unwrap();
        let (r2, _) = p2.endorse(&add_proposal).unwrap();
        let endorsements = vec![r1.endorsement.clone(), r2.endorsement];
        let client_signature = client_kp.sign(&Transaction::client_signed_bytes(
            &add_proposal.tx_id,
            &r1.payload,
            &endorsements,
        ));
        let add_tx = Transaction {
            tx_id: add_proposal.tx_id.clone(),
            channel: add_proposal.channel.clone(),
            chaincode: add_proposal.chaincode.clone(),
            creator,
            payload: r1.payload,
            commitment: r1.commitment,
            endorsements,
            client_signature,
        };

        // A conflicting write commits in between.
        let (tx2, pkg2) = write_tx(&[&p1, &p2], 6, 8);
        let block2 = block_of(&p1, vec![tx2]);
        let mut with_pkg2 = |_: &TxId| Some(pkg2.clone());
        p1.process_block(block2, &mut with_pkg2).unwrap();

        // Now the add's read version is stale.
        let block3 = block_of(&p1, vec![add_tx]);
        let mut with_add = |_: &TxId| add_pkg.clone();
        let outcome = p1.process_block(block3, &mut with_add).unwrap();
        assert_eq!(
            outcome.validation_codes,
            vec![TxValidationCode::MvccReadConflict]
        );
    }
}
