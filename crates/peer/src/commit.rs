//! The validation phase: proof-of-policy checks, MVCC, and commit.
//!
//! The commit path is a staged pipeline, mirroring how Fabric's validator
//! splits work:
//!
//! 1. **Stateless stage** — per-transaction checks whose outcome cannot
//!    depend on earlier transactions in the same block: signatures, channel
//!    membership, committed-duplicate lookup, and every endorsement-policy
//!    evaluation (chaincode-level, collection-level, key-level/SBE, and the
//!    defense filters) against the *pre-block* state. This stage fans out
//!    across scoped threads when parallel validation is enabled, and
//!    evaluates policies from the compiled caches (`InstalledChaincode::
//!    compiled` plus the peer's interned SBE expression cache) instead of
//!    re-parsing expressions per transaction.
//! 2. **Sequential stage** — the order-dependent merge: in-block duplicate
//!    tx-ids, re-evaluation of policy checks for transactions that touch an
//!    SBE validation parameter written earlier in the block (dirty-key
//!    detection), MVCC version conflicts, and the state mutations of valid
//!    transactions.

use crate::channel::ChannelPolicies;
use crate::node::{InstalledChaincode, Peer};
use crate::telemetry::PeerTelemetry;
use fabric_crypto::sha256;
use fabric_ledger::{BlockStoreError, HistoryDb, WorldState};
use fabric_policy::{Policy, PolicyCache, SignaturePolicy};
use fabric_telemetry::{AuditEvent, TraceContext};
use fabric_types::{
    Block, ChaincodeEvent, ChaincodeId, CollectionName, DefenseConfig, Identity, OrgId,
    PayloadCommitment, PvtDataPackage, SignatureFailure, Transaction, TxId, TxValidationCode,
    Version,
};
use fabric_wire::Encode;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Supplies plaintext private data for a transaction being committed
/// (backed by the gossip transient store plus anti-entropy pull). The
/// package comes back `Arc`-shared: providers forward the gossip/archive
/// handle instead of deep-copying the rwsets per requesting peer.
pub type PvtDataProvider<'a> = dyn FnMut(&TxId) -> Option<Arc<PvtDataPackage>> + 'a;

/// Errors that abort block processing entirely (individual transaction
/// failures are recorded as validation codes instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// The block does not extend this peer's chain.
    BlockStore(BlockStoreError),
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::BlockStore(e) => write!(f, "block rejected: {e}"),
        }
    }
}

impl std::error::Error for CommitError {}

impl From<BlockStoreError> for CommitError {
    fn from(e: BlockStoreError) -> Self {
        CommitError::BlockStore(e)
    }
}

/// The result of validating and committing one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCommitOutcome {
    /// Per-transaction validation codes, in block order.
    pub validation_codes: Vec<TxValidationCode>,
    /// Valid PDC transactions for which this (member) peer could not obtain
    /// matching plaintext private data; only hashes were committed and the
    /// transaction awaits reconciliation.
    pub missing_private_data: Vec<TxId>,
    /// Chaincode events of the VALID transactions, in block order
    /// (invalid transactions' events are never delivered, as in Fabric).
    pub events: Vec<(TxId, ChaincodeEvent)>,
}

/// Per-transaction result of the stateless stage.
#[derive(Debug, Clone, Default)]
struct StatelessVerdict {
    /// Failure from checks that cannot be affected by in-block state:
    /// signatures, channel membership, committed-duplicate lookup.
    structural: Option<TxValidationCode>,
    /// Endorsement-policy outcome against the pre-block state; `None` =
    /// passed. Only meaningful when `structural` is `None`, and superseded
    /// by a sequential re-check when the transaction touches an SBE
    /// parameter written earlier in the block.
    policy: Option<TxValidationCode>,
    /// Audit events derived from the transaction and pre-block state
    /// alone (non-member endorsements, collection-policy fallbacks,
    /// plaintext payloads). Computed here so the parallel fan-out absorbs
    /// the cost; *emitted* only by the sequential stage, in block order,
    /// so the event sequence is independent of stage-1 parallelism.
    audit: Vec<AuditEvent>,
}

/// Per-(namespace, collection) facts the audit pass needs, resolved from
/// the pre-block state.
#[derive(Clone, Copy)]
struct CollectionAuditFacts<'a> {
    /// The collection is defined but compiles no endorsement policy of
    /// its own, so validation falls back to the chaincode-level policy.
    policy_fallback: bool,
    /// The collection's member organizations, when its membership policy
    /// names any.
    members: Option<&'a BTreeSet<OrgId>>,
}

/// One memoized [`CollectionAuditFacts`] resolution.
type AuditFactsEntry<'a> = (
    &'a ChaincodeId,
    &'a CollectionName,
    Option<CollectionAuditFacts<'a>>,
);

/// Memo of [`CollectionAuditFacts`] for one block (or one parallel
/// worker's chunk of it). Blocks touch few distinct (namespace,
/// collection) pairs, so a linear scan with two string compares beats
/// re-hashing into the chaincode and policy maps for every transaction.
/// The first few entries live inline: a block touching up to
/// [`AUDIT_CACHE_INLINE`] pairs — the overwhelmingly common case — never
/// heap-allocates, which matters for the no-op-telemetry overhead of
/// single-transaction blocks.
#[derive(Default)]
pub(crate) struct AuditFactsCache<'a> {
    inline: [Option<AuditFactsEntry<'a>>; AUDIT_CACHE_INLINE],
    spill: Vec<AuditFactsEntry<'a>>,
}

/// Inline capacity of [`AuditFactsCache`].
const AUDIT_CACHE_INLINE: usize = 4;

impl<'a> AuditFactsCache<'a> {
    /// The facts for `(namespace, collection)`; `None` when the peer has
    /// no such chaincode installed.
    fn lookup(
        &mut self,
        chaincodes: &'a HashMap<ChaincodeId, InstalledChaincode>,
        namespace: &'a ChaincodeId,
        collection: &'a CollectionName,
    ) -> Option<CollectionAuditFacts<'a>> {
        let hit = |entry: &AuditFactsEntry<'a>| entry.0 == namespace && entry.1 == collection;
        if let Some((_, _, facts)) = self
            .inline
            .iter()
            .flatten()
            .chain(self.spill.iter())
            .find(|e| hit(e))
        {
            return *facts;
        }
        let facts = chaincodes
            .get(namespace)
            .map(|installed| CollectionAuditFacts {
                policy_fallback: installed.definition.collection(collection).is_some()
                    && installed
                        .compiled
                        .collection_endorsement(collection)
                        .is_none(),
                members: installed.compiled.members(collection),
            });
        let entry = (namespace, collection, facts);
        match self.inline.iter_mut().find(|slot| slot.is_none()) {
            Some(slot) => *slot = Some(entry),
            None => self.spill.push(entry),
        }
        facts
    }
}

impl Peer {
    /// Validates every transaction in `block` through the proof-of-policy
    /// checks (endorsement policy + MVCC version conflict, §II-B3), commits
    /// the effects of valid ones, and appends the block with its validity
    /// vector to the local chain. See the module docs for the two pipeline
    /// stages.
    ///
    /// `pvt_provider` supplies plaintext private rwsets (transient store /
    /// gossip pull) for collections this peer is a member of.
    ///
    /// # Errors
    ///
    /// [`CommitError::BlockStore`] when the block does not chain onto the
    /// local ledger (nothing is committed in that case).
    pub fn process_block(
        &mut self,
        block: Block,
        pvt_provider: &mut PvtDataProvider<'_>,
    ) -> Result<BlockCommitOutcome, CommitError> {
        // Verify chain linkage *before* mutating any state; afterwards the
        // final append cannot fail.
        self.block_store.check_extends(&block)?;

        let block_num = block.header.number;
        let mut missing = Vec::new();
        let mut events = Vec::new();

        // One handle clone (a single `Arc` bump) up front: telemetry must
        // stay alive across the mutable borrows of `self` below. Without
        // telemetry attached this is the only cost the commit path pays.
        let telemetry = self.telemetry.clone();
        // Timing instrumentation — spans (block-level and per-transaction)
        // and the stage-latency histograms — is extra work on the hot
        // path, so all of it is gated off when spans go nowhere (no-op
        // collector). Counters, gauges, and the audit log stay on either
        // way: a disabled pipeline keeps counting, it just stops timing.
        let tracing = telemetry.as_ref().is_some_and(|t| t.tracing_enabled());
        let block_span = if tracing {
            telemetry.as_ref().map(|t| {
                let mut s = t.span("peer.process_block");
                s.node(self.gossip_id.as_str());
                s.field("block", block_num);
                s.field("txs", block.transactions.len());
                s
            })
        } else {
            None
        };
        // Stage boundaries come from three raw `Instant` reads rather
        // than span guards, so the histograms measure the pipeline, not
        // the span bookkeeping around it.
        let mut stage_mark = tracing.then(Instant::now);

        // Stage 1 — stateless: signatures and policy evaluation against
        // the pre-block state, fanned out across threads when enabled.
        let stateless_span = block_span.as_ref().map(|s| s.child("commit.stateless"));
        let mut verdicts = self.stateless_validate(&block.transactions);
        drop(stateless_span);
        if let (Some(t), Some(mark)) = (&telemetry, stage_mark) {
            let now = Instant::now();
            t.stage_stateless.observe_duration(now - mark);
            stage_mark = Some(now);
        }

        // Stage 2 — sequential merge: in-block duplicates, SBE dirty-key
        // re-checks, MVCC, and state mutation, in block order. The validity
        // vector is written straight into the block's metadata. Audit
        // events are emitted from this stage only, so their sequence is
        // identical whether stage 1 ran sequentially or fanned out.
        if let Some(t) = &telemetry {
            // New block entering the merge: re-arm per-block collector
            // state (the flight recorder's trigger dedup).
            t.block_boundary();
        }
        let stateful_span = block_span.as_ref().map(|s| s.child("commit.stateful"));
        let mut block = block;
        let Block {
            transactions,
            metadata,
            ..
        } = &mut block;
        {
            let mut seen_in_block: HashSet<&TxId> = HashSet::with_capacity(transactions.len());
            // `(namespace, key)` pairs whose SBE validation parameter was
            // rewritten by an earlier valid transaction of this block. A
            // later transaction touching one of them must not reuse its
            // pre-block policy verdict.
            let mut dirty_params: HashSet<(&ChaincodeId, &str)> = HashSet::new();
            for (i, tx) in transactions.iter().enumerate() {
                let commit_span = if tracing {
                    telemetry.as_ref().map(|t| {
                        let mut s = t.span("peer.commit");
                        s.trace(TraceContext::for_tx(tx.tx_id.as_str()));
                        s.node(self.gossip_id.as_str());
                        s
                    })
                } else {
                    None
                };
                let mut sbe_rechecked = false;
                let code = if !seen_in_block.insert(&tx.tx_id) {
                    TxValidationCode::DuplicateTxId
                } else if let Some(failure) = verdicts[i].structural {
                    failure
                } else {
                    let policy = if touches_dirty_params(tx, &dirty_params) {
                        sbe_rechecked = true;
                        self.policy_checks(tx)
                    } else {
                        verdicts[i].policy
                    };
                    match policy {
                        Some(failure) => failure,
                        None => self.mvcc_checks(tx).unwrap_or(TxValidationCode::Valid),
                    }
                };
                if code.is_valid() {
                    let version = Version::new(block_num, i as u64);
                    if !self.apply_transaction(tx, version, pvt_provider) {
                        missing.push(tx.tx_id.clone());
                    }
                    if let Some(event) = &tx.payload.event {
                        events.push((tx.tx_id.clone(), event.clone()));
                    }
                    for ns in &tx.payload.results.ns_rwsets {
                        for m in &ns.metadata_writes {
                            dirty_params.insert((&ns.namespace, m.key.as_str()));
                        }
                    }
                }
                if let Some(t) = &telemetry {
                    let stateless = std::mem::take(&mut verdicts[i].audit);
                    audit_transaction(t, tx, code, sbe_rechecked, stateless);
                }
                if let Some(mut s) = commit_span {
                    s.field("code", code);
                    s.finish();
                }
                metadata.validation_codes.push(code);
            }
        }
        drop(stateful_span);
        if let (Some(t), Some(mark)) = (&telemetry, stage_mark) {
            t.stage_stateful.observe_duration(mark.elapsed());
        }

        // `check_extends` already ran before any mutation, so the append
        // cannot fail and the transaction list needs no second hashing.
        self.block_store.append_unchecked(block);
        self.purge_expired(block_num);

        let validation_codes = self
            .block_store
            .block(block_num)
            .expect("block was just appended")
            .metadata
            .validation_codes
            .clone();
        if let Some(t) = &telemetry {
            record_block_metrics(t, block_num, &validation_codes, missing.len());
        }
        Ok(BlockCommitOutcome {
            validation_codes,
            missing_private_data: missing,
            events,
        })
    }

    /// Runs [`Peer::stateless_checks`] over a block's transactions, fanned
    /// out across scoped threads when parallel validation is enabled and
    /// the block is large enough to amortize the spawns.
    fn stateless_validate(&self, transactions: &[Transaction]) -> Vec<StatelessVerdict> {
        const MIN_PARALLEL: usize = 4;
        // Fan out only when it can actually help: parallel validation
        // enabled, enough transactions to amortize the spawns, and more
        // than one hardware thread to run them on. The cheap flag checks
        // come first — `available_parallelism` is a syscall, so it must
        // not tax small blocks or sequential configurations.
        if !self.parallel_validation || transactions.len() < MIN_PARALLEL {
            let mut audit_cache = AuditFactsCache::default();
            return transactions
                .iter()
                .map(|tx| self.stateless_checks(tx, &mut audit_cache))
                .collect();
        }
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        if cores < 2 {
            let mut audit_cache = AuditFactsCache::default();
            return transactions
                .iter()
                .map(|tx| self.stateless_checks(tx, &mut audit_cache))
                .collect();
        }
        let workers = cores.min(transactions.len());
        let chunk_size = transactions.len().div_ceil(workers);
        let mut results = vec![StatelessVerdict::default(); transactions.len()];
        std::thread::scope(|scope| {
            let chunks = transactions.chunks(chunk_size);
            let result_chunks = results.chunks_mut(chunk_size);
            for (txs, out) in chunks.zip(result_chunks) {
                scope.spawn(move || {
                    let mut audit_cache = AuditFactsCache::default();
                    for (tx, slot) in txs.iter().zip(out.iter_mut()) {
                        *slot = self.stateless_checks(tx, &mut audit_cache);
                    }
                });
            }
        });
        results
    }

    /// Every check of one transaction that is independent of the other
    /// transactions in the block: signatures, channel, committed-duplicate
    /// lookup, and policy evaluation against the pre-block state.
    fn stateless_checks<'a>(
        &'a self,
        tx: &'a Transaction,
        audit_cache: &mut AuditFactsCache<'a>,
    ) -> StatelessVerdict {
        // Traced per-tx validation span (skipped entirely for no-op
        // collectors — `tracing_enabled` gates the allocation).
        let _validate_span = self
            .telemetry
            .as_ref()
            .filter(|t| t.tracing_enabled())
            .map(|t| {
                let mut s = t.span("peer.validate");
                s.trace(TraceContext::for_tx(tx.tx_id.as_str()));
                s.node(self.gossip_id.as_str());
                s
            });
        let audit = if self.telemetry.is_some() {
            stateless_audit(&self.chaincodes, tx, audit_cache)
        } else {
            Vec::new()
        };
        let structural = if let Some(code) = signature_check(tx) {
            Some(code)
        } else if tx.channel != self.channel {
            Some(TxValidationCode::BadPayload)
        } else if self.block_store.contains_tx(&tx.tx_id) {
            Some(TxValidationCode::DuplicateTxId)
        } else {
            None
        };
        if structural.is_some() {
            return StatelessVerdict {
                structural,
                policy: None,
                audit,
            };
        }
        StatelessVerdict {
            structural: None,
            policy: self.policy_checks(tx),
            audit,
        }
    }

    /// Validates a single transaction against the current state: signature
    /// checks, endorsement policy (proof-of-policy check 1), and MVCC
    /// version conflicts (check 2). Does not mutate state.
    pub fn validate_transaction(&self, tx: &Transaction) -> TxValidationCode {
        if let Some(code) = signature_check(tx) {
            return code;
        }
        if tx.channel != self.channel {
            return TxValidationCode::BadPayload;
        }
        if self.block_store.contains_tx(&tx.tx_id) {
            return TxValidationCode::DuplicateTxId;
        }
        if let Some(code) = self.policy_checks(tx) {
            return code;
        }
        self.mvcc_checks(tx).unwrap_or(TxValidationCode::Valid)
    }

    /// Proof-of-policy check 1 — endorsement policies, evaluated from the
    /// compiled caches; `None` = satisfied.
    ///
    /// Key-level (state-based) endorsement first: a public write to a key
    /// with a committed validation parameter is governed by that key's
    /// policy (Fabric's `validator_keylevel.go` — the code the paper cites
    /// for Use Case 2), and changing a key's parameter itself requires
    /// satisfying the existing parameter. The chaincode-level policy then
    /// applies to everything not fully covered by key-level parameters:
    /// reads (always — Use Case 2), non-SBE public writes, collection
    /// rwsets, and empty results. Note it does NOT distinguish member from
    /// non-member endorsements (Use Case 1).
    fn policy_checks(&self, tx: &Transaction) -> Option<TxValidationCode> {
        policy_checks_parts(
            &self.chaincodes,
            &self.channel_policies,
            self.defense,
            &self.sbe_policies,
            &self.world_state,
            tx,
        )
    }

    /// Proof-of-policy check 2 — MVCC version conflicts against the
    /// current state; `None` = no conflict.
    fn mvcc_checks(&self, tx: &Transaction) -> Option<TxValidationCode> {
        mvcc_checks_parts(&self.world_state, tx)
    }

    /// The pre-pipeline validator, kept as a cost-faithful snapshot of the
    /// sequential commit path this PR replaced: strictly sequential, every
    /// policy expression parsed at the point of use (no compiled caches),
    /// two-pass signature verification, whole-list data hashing on both the
    /// pre-check and the append, and the original clone-heavy apply path.
    /// It serves as the semantic oracle for the pipeline-equivalence
    /// proptest and as the baseline the `commit_throughput` bench compares
    /// the staged pipeline against.
    ///
    /// # Errors
    ///
    /// Same contract as [`Peer::process_block`].
    pub fn process_block_reference(
        &mut self,
        block: Block,
        pvt_provider: &mut PvtDataProvider<'_>,
    ) -> Result<BlockCommitOutcome, CommitError> {
        Self::reference_check_extends(&self.block_store, &block)?;

        let block_num = block.header.number;
        let mut codes = Vec::with_capacity(block.transactions.len());
        let mut missing = Vec::new();
        let mut events = Vec::new();
        let mut seen_in_block: HashSet<TxId> = HashSet::new();

        for (i, tx) in block.transactions.iter().enumerate() {
            let code = if seen_in_block.contains(&tx.tx_id) {
                TxValidationCode::DuplicateTxId
            } else {
                self.reference_validate(tx)
            };
            seen_in_block.insert(tx.tx_id.clone());
            if code.is_valid() {
                let version = Version::new(block_num, i as u64);
                if !self.reference_apply_transaction(tx, version, pvt_provider) {
                    missing.push(tx.tx_id.clone());
                }
                if let Some(event) = &tx.payload.event {
                    events.push((tx.tx_id.clone(), event.clone()));
                }
            }
            codes.push(code);
        }

        let mut block = block;
        block.metadata.validation_codes = codes.clone();
        // The original `append` re-ran every structural check, re-hashing
        // the whole transaction list a second time.
        Self::reference_check_extends(&self.block_store, &block)?;
        self.block_store.append_unchecked(block);
        self.purge_expired(block_num);

        Ok(BlockCommitOutcome {
            validation_codes: codes,
            missing_private_data: missing,
            events,
        })
    }

    /// The structural block checks as the pre-pipeline path performed
    /// them, including the original data-hash computation that serialized
    /// a deep copy of the whole transaction list.
    fn reference_check_extends(
        store: &fabric_ledger::BlockStore,
        block: &Block,
    ) -> Result<(), CommitError> {
        let expected_number = store.height();
        if block.header.number != expected_number {
            return Err(BlockStoreError::NonSequentialNumber {
                expected: expected_number,
                found: block.header.number,
            }
            .into());
        }
        let expected_prev = store.tip_hash();
        if block.header.previous_hash != expected_prev {
            return Err(BlockStoreError::BrokenChain {
                expected: expected_prev,
                found: block.header.previous_hash,
            }
            .into());
        }
        if block.header.data_hash != sha256(&block.transactions.to_vec().to_wire()) {
            return Err(BlockStoreError::DataHashMismatch.into());
        }
        Ok(())
    }

    /// The pre-pipeline signature checks: client and endorsement passes
    /// serialize the signed payload independently.
    fn reference_signature_check(tx: &Transaction) -> Option<TxValidationCode> {
        if !tx.verify_client_signature() {
            return Some(TxValidationCode::InvalidClientSignature);
        }
        if tx.endorsements.is_empty() || !tx.verify_endorsement_signatures() {
            return Some(TxValidationCode::InvalidEndorserSignature);
        }
        None
    }

    /// One transaction through the reference validator: identical check
    /// order to [`Peer::validate_transaction`], but every policy expression
    /// is parsed afresh.
    fn reference_validate(&self, tx: &Transaction) -> TxValidationCode {
        if let Some(code) = Self::reference_signature_check(tx) {
            return code;
        }
        if tx.channel != self.channel {
            return TxValidationCode::BadPayload;
        }
        if self.block_store.contains_tx(&tx.tx_id) {
            return TxValidationCode::DuplicateTxId;
        }

        let endorsers: Vec<Identity> = tx.endorsements.iter().map(|e| e.endorser.clone()).collect();

        for ns in &tx.payload.results.ns_rwsets {
            let Some(installed) = self.chaincodes.get(&ns.namespace) else {
                return TxValidationCode::BadPayload;
            };
            let def = &installed.definition;

            let mut non_sbe_public_writes = false;
            let touched_keys = ns
                .public
                .writes
                .iter()
                .map(|w| w.key.as_str())
                .chain(ns.metadata_writes.iter().map(|m| m.key.as_str()));
            for key in touched_keys {
                match self
                    .world_state
                    .get_validation_parameter(&ns.namespace, key)
                {
                    Some(expr) => {
                        let Ok(key_policy) = SignaturePolicy::parse(expr) else {
                            return TxValidationCode::BadPayload;
                        };
                        if !key_policy.satisfied_by(&endorsers) {
                            return TxValidationCode::EndorsementPolicyFailure;
                        }
                    }
                    None => non_sbe_public_writes = true,
                }
            }

            let needs_chaincode_policy = !ns.public.reads.is_empty()
                || non_sbe_public_writes
                || !ns.collections.is_empty()
                || (ns.public.writes.is_empty() && ns.metadata_writes.is_empty());
            if needs_chaincode_policy {
                let Ok(cc_policy) = Policy::parse(&def.endorsement_policy) else {
                    return TxValidationCode::BadPayload;
                };
                if !cc_policy.evaluate(self.channel_policies.org_policies(), &endorsers) {
                    return TxValidationCode::EndorsementPolicyFailure;
                }
            }

            for col in &ns.collections {
                let Some(cfg) = def.collection(&col.collection) else {
                    return TxValidationCode::BadPayload;
                };
                let has_writes = !col.writes.is_empty();
                let has_reads = !col.reads.is_empty();
                let apply_collection_policy = cfg.endorsement_policy.is_some()
                    && (has_writes || (self.defense.collection_policy_for_reads && has_reads));
                if apply_collection_policy {
                    let expr = cfg
                        .endorsement_policy
                        .as_deref()
                        .expect("checked is_some above");
                    let Ok(col_policy) = SignaturePolicy::parse(expr) else {
                        return TxValidationCode::BadPayload;
                    };
                    if !col_policy.satisfied_by(&endorsers) {
                        return TxValidationCode::EndorsementPolicyFailure;
                    }
                }
                if self.defense.filter_non_member_endorsers {
                    let all_members = endorsers
                        .iter()
                        .all(|e| def.org_is_member(&e.org, &col.collection));
                    if !all_members {
                        return TxValidationCode::NonMemberEndorsement;
                    }
                }
            }
        }
        self.mvcc_checks(tx).unwrap_or(TxValidationCode::Valid)
    }

    /// The pre-pipeline apply path, kept verbatim: clones the namespace
    /// rwsets and the private-data package, and verifies plaintext by
    /// materializing a fully hashed copy (`to_hashed`) before applying.
    fn reference_apply_transaction(
        &mut self,
        tx: &Transaction,
        version: Version,
        pvt_provider: &mut PvtDataProvider<'_>,
    ) -> bool {
        let mut plaintext_complete = true;
        let mut package: Option<Option<Arc<PvtDataPackage>>> = None;

        // Collect namespaces first to end the immutable borrow of
        // `self.chaincodes` before mutating the world state.
        let ns_rwsets = tx.payload.results.ns_rwsets.clone();
        for ns in &ns_rwsets {
            self.world_state
                .apply_public_writes(&ns.namespace, &ns.public, version);
            self.world_state
                .apply_metadata_writes(&ns.namespace, &ns.metadata_writes);
            for w in &ns.public.writes {
                self.history.record(
                    &ns.namespace,
                    &w.key,
                    &tx.tx_id,
                    version,
                    w.value.clone(),
                    w.is_delete,
                );
            }
            for col in &ns.collections {
                if col.writes.is_empty() {
                    continue;
                }
                let is_member = self.is_collection_member(&ns.namespace, &col.collection);
                let mut applied_plaintext = false;
                if is_member {
                    // Cost-faithful to the pre-pipeline path: the package
                    // is deep-cloned per collection, as the original
                    // owned-provider code did.
                    let pkg = package
                        .get_or_insert_with(|| pvt_provider(&tx.tx_id))
                        .as_ref()
                        .map(|p| (**p).clone());
                    if let Some(pkg) = pkg {
                        // Verify plaintext against committed hashes before
                        // updating the ledger (Fig. 2, step 18).
                        let matching = pkg
                            .namespaces
                            .iter()
                            .zip(&pkg.collections)
                            .find(|(n, c)| **n == ns.namespace && c.collection == col.collection)
                            .map(|(_, c)| c);
                        if let Some(pvt) = matching {
                            if pvt.to_hashed() == *col {
                                self.world_state
                                    .apply_private_writes(&ns.namespace, pvt, version);
                                applied_plaintext = true;
                            }
                        }
                    }
                }
                if !applied_plaintext {
                    self.world_state.apply_hashed_writes(
                        &ns.namespace,
                        &col.collection,
                        &col.writes,
                        version,
                    );
                    if is_member {
                        plaintext_complete = false;
                    }
                }
            }
        }
        plaintext_complete
    }

    /// Applies a valid transaction's writes at `version`. Returns `false`
    /// when this peer is a member of a written collection but could not
    /// obtain matching plaintext (hashes were committed regardless).
    fn apply_transaction(
        &mut self,
        tx: &Transaction,
        version: Version,
        pvt_provider: &mut PvtDataProvider<'_>,
    ) -> bool {
        apply_transaction_parts(
            &self.chaincodes,
            &mut self.world_state,
            &mut self.history,
            tx,
            version,
            pvt_provider,
        )
    }

    fn purge_expired(&mut self, current_block: u64) {
        purge_expired_parts(&self.chaincodes, &mut self.world_state, current_block);
    }
}

/// Whether `tx` touches (writes or re-parameterizes) a key whose SBE
/// validation parameter changed earlier in the current block.
pub(crate) fn touches_dirty_params(
    tx: &Transaction,
    dirty: &HashSet<(&ChaincodeId, &str)>,
) -> bool {
    if dirty.is_empty() {
        return false;
    }
    tx.payload.results.ns_rwsets.iter().any(|ns| {
        ns.public
            .writes
            .iter()
            .map(|w| w.key.as_str())
            .chain(ns.metadata_writes.iter().map(|m| m.key.as_str()))
            .any(|key| dirty.contains(&(&ns.namespace, key)))
    })
}

/// Collects the security-audit signals observable on `tx` against the
/// pre-block state: non-member endorsements and chaincode-policy
/// fallbacks on touched collections (Use Cases 1–2) and plaintext
/// payloads riding PDC transactions (Use Case 3). Runs in the
/// stateless stage (chaincode definitions cannot change inside a
/// block); the common no-signal case allocates nothing.
pub(crate) fn stateless_audit<'a>(
    chaincodes: &'a HashMap<ChaincodeId, InstalledChaincode>,
    tx: &'a Transaction,
    cache: &mut AuditFactsCache<'a>,
) -> Vec<AuditEvent> {
    let mut events = Vec::new();
    let mut touches_collection = false;
    for ns in &tx.payload.results.ns_rwsets {
        for col in &ns.collections {
            let Some(facts) = cache.lookup(chaincodes, &ns.namespace, &col.collection) else {
                continue; // Unknown namespace: BadPayload, nothing to attribute.
            };
            touches_collection = true;
            if facts.policy_fallback {
                events.push(AuditEvent::PolicyFallbackToChaincodeLevel {
                    tx_id: tx.tx_id.clone(),
                    chaincode: ns.namespace.clone(),
                    collection: col.collection.clone(),
                });
            }
            let mut flagged: Vec<&OrgId> = Vec::new();
            for e in &tx.endorsements {
                let org = &e.endorser.org;
                let member = facts.members.is_some_and(|m| m.contains(org));
                if !member && !flagged.contains(&org) {
                    flagged.push(org);
                    events.push(AuditEvent::EndorsementByNonMember {
                        tx_id: tx.tx_id.clone(),
                        collection: col.collection.clone(),
                        endorser_org: org.clone(),
                    });
                }
            }
        }
    }
    if touches_collection
        && tx.commitment == PayloadCommitment::Plain
        && !tx.payload.response.payload.is_empty()
    {
        events.push(AuditEvent::PlaintextPayloadInTx {
            tx_id: tx.tx_id.clone(),
            chaincode: tx.chaincode.clone(),
            payload_bytes: tx.payload.response.payload.len(),
        });
    }
    events
}

/// Emits `tx`'s audit events: the pre-computed stateless signals
/// first, then the outcome-dependent ones (SBE re-checks, MVCC
/// conflicts, defense rejections). Called from the sequential merge
/// stage only, in block order, so the emitted sequence is independent
/// of stage-1 parallelism.
pub(crate) fn audit_transaction(
    t: &PeerTelemetry,
    tx: &Transaction,
    code: TxValidationCode,
    sbe_rechecked: bool,
    stateless: Vec<AuditEvent>,
) {
    for event in stateless {
        t.emit(event);
    }
    if sbe_rechecked {
        t.emit(AuditEvent::SbeReCheck {
            tx_id: tx.tx_id.clone(),
            chaincode: tx.chaincode.clone(),
            outcome: code,
        });
    }
    match code {
        TxValidationCode::MvccReadConflict => t.emit(AuditEvent::MvccConflict {
            tx_id: tx.tx_id.clone(),
            chaincode: tx.chaincode.clone(),
        }),
        TxValidationCode::NonMemberEndorsement => t.emit(AuditEvent::DefenseRejected {
            tx_id: tx.tx_id.clone(),
            code,
        }),
        _ => {}
    }
}

/// Flushes per-block counters and gauges after a successful commit.
/// Validation codes are tallied locally first so each series costs one
/// registry lookup per block, not one per transaction.
pub(crate) fn record_block_metrics(
    t: &PeerTelemetry,
    block_num: u64,
    codes: &[TxValidationCode],
    missing: usize,
) {
    // All-valid blocks (the throughput workload) take the allocation-
    // free path: one cached-handle increment.
    let mut valid = 0u64;
    let mut others: Vec<(TxValidationCode, u64)> = Vec::new();
    for code in codes {
        if code.is_valid() {
            valid += 1;
            continue;
        }
        match others.iter_mut().find(|(c, _)| c == code) {
            Some((_, n)) => *n += 1,
            None => others.push((*code, 1)),
        }
    }
    if valid > 0 {
        t.valid_txs.inc_by(valid);
    }
    for (code, n) in others {
        t.metrics()
            .counter(
                "fabric_validation_results_total",
                "Transaction validation codes across committed blocks",
                &[("code", &code.to_string())],
            )
            .inc_by(n);
    }
    t.blocks_committed.inc();
    t.txs_processed.inc_by(codes.len() as u64);
    if missing > 0 {
        t.missing_private.inc_by(missing as u64);
    }
    t.block_height.set((block_num + 1) as f64);
}

/// The stateless signature checks of one transaction; `None` = passed.
///
/// Uses the combined [`Transaction::verify_signatures`] pass, which
/// serializes the shared payload bytes once for all signatures.
pub(crate) fn signature_check(tx: &Transaction) -> Option<TxValidationCode> {
    match tx.verify_signatures() {
        None => None,
        Some(SignatureFailure::Client) => Some(TxValidationCode::InvalidClientSignature),
        Some(SignatureFailure::Endorsement) => Some(TxValidationCode::InvalidEndorserSignature),
    }
}

/// [`signature_check`] through a [`BatchVerifier`], amortizing endorser-
/// identity resolution across every transaction verified with the same
/// batch. Identical outcomes to the per-call path.
pub(crate) fn signature_check_batched(
    tx: &Transaction,
    batch: &mut fabric_crypto::BatchVerifier,
) -> Option<TxValidationCode> {
    match tx.verify_signatures_batched(batch) {
        None => None,
        Some(SignatureFailure::Client) => Some(TxValidationCode::InvalidClientSignature),
        Some(SignatureFailure::Endorsement) => Some(TxValidationCode::InvalidEndorserSignature),
    }
}

/// Proof-of-policy check 1 — endorsement policies, evaluated from the
/// compiled caches against the supplied world state; `None` = satisfied.
///
/// Split out of [`Peer::policy_checks`] so the overlap scheduler's merge
/// stage can re-evaluate policies against the live state while the
/// producer thread holds other parts of the peer. Semantics are
/// identical to the per-block pipeline: key-level (state-based)
/// endorsement first, then the chaincode-level policy for everything not
/// fully covered by key-level parameters, then collection-level policies
/// and the non-member-endorser defense filter.
pub(crate) fn policy_checks_parts(
    chaincodes: &HashMap<ChaincodeId, InstalledChaincode>,
    channel_policies: &ChannelPolicies,
    defense: DefenseConfig,
    sbe_policies: &PolicyCache,
    world_state: &WorldState,
    tx: &Transaction,
) -> Option<TxValidationCode> {
    let endorsers: Vec<&Identity> = tx.endorsements.iter().map(|e| &e.endorser).collect();

    for ns in &tx.payload.results.ns_rwsets {
        let Some(installed) = chaincodes.get(&ns.namespace) else {
            return Some(TxValidationCode::BadPayload);
        };
        let compiled = &installed.compiled;

        let mut non_sbe_public_writes = false;
        let touched_keys = ns
            .public
            .writes
            .iter()
            .map(|w| w.key.as_str())
            .chain(ns.metadata_writes.iter().map(|m| m.key.as_str()));
        for key in touched_keys {
            match world_state.get_validation_parameter(&ns.namespace, key) {
                Some(expr) => {
                    let Some(key_policy) = sbe_policies.get_or_parse(expr) else {
                        return Some(TxValidationCode::BadPayload);
                    };
                    if !key_policy.satisfied_by_refs(&endorsers) {
                        return Some(TxValidationCode::EndorsementPolicyFailure);
                    }
                }
                None => non_sbe_public_writes = true,
            }
        }

        let needs_chaincode_policy = !ns.public.reads.is_empty()
            || non_sbe_public_writes
            || !ns.collections.is_empty()
            || (ns.public.writes.is_empty() && ns.metadata_writes.is_empty());
        if needs_chaincode_policy {
            let Some(cc_policy) = compiled.endorsement() else {
                return Some(TxValidationCode::BadPayload);
            };
            if !cc_policy.evaluate_refs(channel_policies.org_policies(), &endorsers) {
                return Some(TxValidationCode::EndorsementPolicyFailure);
            }
        }

        for col in &ns.collections {
            if installed.definition.collection(&col.collection).is_none() {
                return Some(TxValidationCode::BadPayload);
            }
            let has_writes = !col.writes.is_empty();
            let has_reads = !col.reads.is_empty();
            // Original Fabric: the collection-level policy (when
            // defined) governs transactions that *write* the
            // collection; read-only transactions are always validated
            // with the chaincode-level policy (Use Case 2, per the
            // key-level validator in the Fabric source).
            // New Feature 1 extends the collection-level policy to
            // read-only transactions (§IV-C1).
            if has_writes || (defense.collection_policy_for_reads && has_reads) {
                if let Some(col_policy) = compiled.collection_endorsement(&col.collection) {
                    let Some(col_policy) = col_policy else {
                        return Some(TxValidationCode::BadPayload);
                    };
                    if !col_policy.satisfied_by_refs(&endorsers) {
                        return Some(TxValidationCode::EndorsementPolicyFailure);
                    }
                }
            }
            // Supplemental defense: reject endorsements by peers whose
            // org is not a member of the touched collection.
            if defense.filter_non_member_endorsers {
                let all_members = endorsers
                    .iter()
                    .all(|e| compiled.org_is_member(&e.org, &col.collection));
                if !all_members {
                    return Some(TxValidationCode::NonMemberEndorsement);
                }
            }
        }
    }
    None
}

/// Proof-of-policy check 2 — MVCC version conflicts against the
/// supplied state; `None` = no conflict. Only versions are compared;
/// chaincode is never re-executed, so fabricated values with correct
/// versions pass (§IV-A1).
pub(crate) fn mvcc_checks_parts(
    world_state: &WorldState,
    tx: &Transaction,
) -> Option<TxValidationCode> {
    for ns in &tx.payload.results.ns_rwsets {
        if world_state
            .check_mvcc_public(&ns.namespace, &ns.public.reads)
            .is_err()
        {
            return Some(TxValidationCode::MvccReadConflict);
        }
        for col in &ns.collections {
            if world_state
                .check_mvcc_hashed(&ns.namespace, &col.collection, &col.reads)
                .is_err()
            {
                return Some(TxValidationCode::MvccReadConflict);
            }
        }
    }
    None
}

/// Applies a valid transaction's writes at `version` to the supplied
/// ledger parts. Returns `false` when this peer is a member of a written
/// collection but could not obtain matching plaintext (hashes were
/// committed regardless).
pub(crate) fn apply_transaction_parts(
    chaincodes: &HashMap<ChaincodeId, InstalledChaincode>,
    world_state: &mut WorldState,
    history: &mut HistoryDb,
    tx: &Transaction,
    version: Version,
    pvt_provider: &mut PvtDataProvider<'_>,
) -> bool {
    let mut plaintext_complete = true;
    let mut package: Option<Option<Arc<PvtDataPackage>>> = None;

    for ns in &tx.payload.results.ns_rwsets {
        world_state.apply_public_writes(&ns.namespace, &ns.public, version);
        world_state.apply_metadata_writes(&ns.namespace, &ns.metadata_writes);
        for w in &ns.public.writes {
            history.record(
                &ns.namespace,
                &w.key,
                &tx.tx_id,
                version,
                w.value.clone(),
                w.is_delete,
            );
        }
        for col in &ns.collections {
            if col.writes.is_empty() {
                continue;
            }
            let is_member = chaincodes
                .get(&ns.namespace)
                .is_some_and(|cc| cc.memberships.contains(&col.collection));
            let mut applied_plaintext = false;
            if is_member {
                let pkg = package
                    .get_or_insert_with(|| pvt_provider(&tx.tx_id))
                    .as_ref();
                if let Some(pkg) = pkg {
                    // Verify plaintext against committed hashes before
                    // updating the ledger (Fig. 2, step 18). The
                    // verify-and-apply entry point hashes each key and
                    // value exactly once instead of materializing a
                    // full hashed copy of the plaintext rwset.
                    let matching = pkg
                        .namespaces
                        .iter()
                        .zip(&pkg.collections)
                        .find(|(n, c)| **n == ns.namespace && c.collection == col.collection)
                        .map(|(_, c)| c);
                    if let Some(pvt) = matching {
                        applied_plaintext = world_state.apply_private_writes_verified(
                            &ns.namespace,
                            pvt,
                            col,
                            version,
                        );
                    }
                }
            }
            if !applied_plaintext {
                world_state.apply_hashed_writes(
                    &ns.namespace,
                    &col.collection,
                    &col.writes,
                    version,
                );
                if is_member {
                    plaintext_complete = false;
                }
            }
        }
    }
    plaintext_complete
}

/// Purges expired private data for every collection with a block-to-live
/// bound, against the supplied ledger parts.
pub(crate) fn purge_expired_parts(
    chaincodes: &HashMap<ChaincodeId, InstalledChaincode>,
    world_state: &mut WorldState,
    current_block: u64,
) {
    let collections: Vec<(fabric_types::CollectionName, u64)> = chaincodes
        .values()
        .flat_map(|cc| cc.definition.collections.iter())
        .filter(|c| c.block_to_live > 0)
        .map(|c| (c.name.clone(), c.block_to_live))
        .collect();
    for (name, btl) in collections {
        world_state.purge_expired_private(&name, btl, current_block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelPolicies;
    use fabric_chaincode::samples::GuardedPdc;
    use fabric_chaincode::ChaincodeDefinition;
    use fabric_crypto::Keypair;
    use fabric_types::{
        CollectionConfig, CollectionName, DefenseConfig, Endorsement, OrgId, Proposal, Role,
    };
    use std::collections::BTreeMap;
    use std::sync::Arc;

    const COL: &str = "PDC1";

    fn orgs() -> Vec<OrgId> {
        (1..=3).map(|i| OrgId::new(format!("Org{i}MSP"))).collect()
    }

    fn make_peer(name: &str, org: &str, seed: u64) -> Peer {
        let mut p = Peer::new(
            name,
            org,
            "ch1",
            ChannelPolicies::default_for(&orgs()),
            Keypair::generate_from_seed(seed),
            DefenseConfig::original(),
        );
        let def = ChaincodeDefinition::new("guarded")
            .with_collection(CollectionConfig::membership_of(COL, &orgs()[..2]));
        p.install_chaincode(def, Arc::new(GuardedPdc::unconstrained(COL)));
        p
    }

    /// Builds a valid write transaction endorsed by the given peers.
    fn write_tx(
        endorsing_peers: &[&Peer],
        value: i64,
        nonce: u64,
    ) -> (Transaction, Arc<PvtDataPackage>) {
        let client_kp = Keypair::generate_from_seed(1000 + nonce);
        let creator = Identity::new("Org1MSP", Role::Client, client_kp.public_key());
        let proposal = Proposal::new(
            "ch1",
            "guarded",
            "write",
            vec![b"k1".to_vec(), value.to_string().into_bytes()],
            BTreeMap::new(),
            creator.clone(),
            nonce,
        );
        let mut responses = Vec::new();
        let mut pvt = None;
        for p in endorsing_peers {
            let (resp, pkg) = p.endorse(&proposal).expect("endorse");
            if pvt.is_none() {
                pvt = pkg;
            }
            responses.push(resp);
        }
        let payload = responses[0].payload.clone();
        let commitment = responses[0].commitment;
        let endorsements: Vec<Endorsement> = responses.into_iter().map(|r| r.endorsement).collect();
        let client_signature = client_kp.sign(&Transaction::client_signed_bytes(
            &proposal.tx_id,
            &payload,
            &endorsements,
        ));
        (
            Transaction {
                tx_id: proposal.tx_id.clone(),
                channel: proposal.channel.clone(),
                chaincode: proposal.chaincode.clone(),
                creator,
                payload,
                commitment,
                endorsements,
                client_signature,
                memo: Default::default(),
            },
            Arc::new(pvt.expect("write produces private data")),
        )
    }

    fn block_of(peer: &Peer, txs: Vec<Transaction>) -> Block {
        Block::new(peer.block_store.height(), peer.block_store.tip_hash(), txs)
    }

    #[test]
    fn valid_write_commits_plaintext_at_members_hashes_at_non_members() {
        let mut p1 = make_peer("peer0.org1", "Org1MSP", 51);
        let mut p2 = make_peer("peer0.org2", "Org2MSP", 52);
        let mut p3 = make_peer("peer0.org3", "Org3MSP", 53);
        let (tx, pkg) = write_tx(&[&p1, &p2], 7, 1);
        let block = block_of(&p1, vec![tx.clone()]);

        let mut with_pkg = |_: &TxId| Some(pkg.clone());
        let outcome = p1.process_block(block.clone(), &mut with_pkg).unwrap();
        assert_eq!(outcome.validation_codes, vec![TxValidationCode::Valid]);
        p2.process_block(block.clone(), &mut with_pkg).unwrap();
        let mut no_pkg = |_: &TxId| None;
        p3.process_block(block, &mut no_pkg).unwrap();

        let ns = fabric_types::ChaincodeId::new("guarded");
        let col = CollectionName::new(COL);
        // Members hold plaintext.
        assert_eq!(
            p1.world_state().get_private(&ns, &col, "k1").unwrap().value,
            b"7"
        );
        assert_eq!(
            p2.world_state().get_private(&ns, &col, "k1").unwrap().value,
            b"7"
        );
        // Non-member holds only hashes, same version.
        assert!(p3.world_state().get_private(&ns, &col, "k1").is_none());
        assert_eq!(
            p3.world_state().get_private_hash(&ns, &col, "k1"),
            p1.world_state().get_private_hash(&ns, &col, "k1")
        );
    }

    #[test]
    fn member_missing_plaintext_commits_hashes_and_reports() {
        let p1 = make_peer("peer0.org1", "Org1MSP", 54);
        let mut p2 = make_peer("peer0.org2", "Org2MSP", 55);
        let (tx, _) = write_tx(&[&p1, &p2.clone()], 9, 2);
        let block = block_of(&p2, vec![tx.clone()]);
        let mut no_pkg = |_: &TxId| None;
        let outcome = p2.process_block(block, &mut no_pkg).unwrap();
        assert_eq!(outcome.validation_codes, vec![TxValidationCode::Valid]);
        assert_eq!(outcome.missing_private_data, vec![tx.tx_id.clone()]);
        let ns = fabric_types::ChaincodeId::new("guarded");
        let col = CollectionName::new(COL);
        assert!(p2.world_state().get_private(&ns, &col, "k1").is_none());
        assert!(p2.world_state().get_private_hash(&ns, &col, "k1").is_some());
    }

    #[test]
    fn insufficient_endorsements_fail_policy() {
        // MAJORITY of 3 orgs needs 2; one endorsement fails.
        let mut p1 = make_peer("peer0.org1", "Org1MSP", 56);
        let (tx, pkg) = write_tx(&[&p1.clone()], 7, 3);
        let block = block_of(&p1, vec![tx]);
        let mut with_pkg = |_: &TxId| Some(pkg.clone());
        let outcome = p1.process_block(block, &mut with_pkg).unwrap();
        assert_eq!(
            outcome.validation_codes,
            vec![TxValidationCode::EndorsementPolicyFailure]
        );
    }

    #[test]
    fn tampered_payload_fails_endorser_signatures() {
        let mut p1 = make_peer("peer0.org1", "Org1MSP", 57);
        let p2 = make_peer("peer0.org2", "Org2MSP", 58);
        let (mut tx, pkg) = write_tx(&[&p1.clone(), &p2], 7, 4);
        tx.payload.response.payload = b"forged".to_vec();
        // Re-sign as client so the failure isolates to endorsements.
        let client_kp = Keypair::generate_from_seed(1004);
        tx.client_signature = client_kp.sign(&Transaction::client_signed_bytes(
            &tx.tx_id,
            &tx.payload,
            &tx.endorsements,
        ));
        tx.creator = Identity::new("Org1MSP", Role::Client, client_kp.public_key());
        let block = block_of(&p1, vec![tx]);
        let mut with_pkg = |_: &TxId| Some(pkg.clone());
        let outcome = p1.process_block(block, &mut with_pkg).unwrap();
        assert_eq!(
            outcome.validation_codes,
            vec![TxValidationCode::InvalidEndorserSignature]
        );
    }

    #[test]
    fn duplicate_txid_rejected_within_and_across_blocks() {
        let mut p1 = make_peer("peer0.org1", "Org1MSP", 59);
        let p2 = make_peer("peer0.org2", "Org2MSP", 60);
        let (tx, pkg) = write_tx(&[&p1.clone(), &p2], 7, 5);
        let block = block_of(&p1, vec![tx.clone(), tx.clone()]);
        let mut with_pkg = |_: &TxId| Some(pkg.clone());
        let outcome = p1.process_block(block, &mut with_pkg).unwrap();
        assert_eq!(
            outcome.validation_codes,
            vec![TxValidationCode::Valid, TxValidationCode::DuplicateTxId]
        );
        // Same tx in a later block is also rejected.
        let block2 = block_of(&p1, vec![tx]);
        let outcome2 = p1.process_block(block2, &mut with_pkg).unwrap();
        assert_eq!(
            outcome2.validation_codes,
            vec![TxValidationCode::DuplicateTxId]
        );
    }

    #[test]
    fn three_copies_of_one_txid_yield_two_duplicates() {
        let mut p1 = make_peer("peer0.org1", "Org1MSP", 65);
        let p2 = make_peer("peer0.org2", "Org2MSP", 66);
        let (tx, pkg) = write_tx(&[&p1.clone(), &p2], 7, 9);
        let block = block_of(&p1, vec![tx.clone(), tx.clone(), tx.clone()]);
        let mut with_pkg = |_: &TxId| Some(pkg.clone());
        let outcome = p1.process_block(block, &mut with_pkg).unwrap();
        assert_eq!(
            outcome.validation_codes,
            vec![
                TxValidationCode::Valid,
                TxValidationCode::DuplicateTxId,
                TxValidationCode::DuplicateTxId,
            ]
        );

        // Later copies are duplicates even when the first copy is invalid
        // (Fabric marks by tx-id occurrence, not by validity).
        let mut p3 = make_peer("peer0.org1", "Org1MSP", 67);
        let p4 = make_peer("peer0.org2", "Org2MSP", 68);
        let (mut bad, pkg2) = write_tx(&[&p3.clone(), &p4], 7, 10);
        bad.payload.response.payload = b"forged".to_vec();
        let block = block_of(&p3, vec![bad.clone(), bad.clone(), bad]);
        let mut with_pkg2 = |_: &TxId| Some(pkg2.clone());
        let outcome = p3.process_block(block, &mut with_pkg2).unwrap();
        assert_eq!(
            outcome.validation_codes,
            vec![
                TxValidationCode::InvalidClientSignature,
                TxValidationCode::DuplicateTxId,
                TxValidationCode::DuplicateTxId,
            ]
        );
    }

    #[test]
    fn reference_and_pipeline_agree_on_a_mixed_block() {
        let p1 = make_peer("peer0.org1", "Org1MSP", 69);
        let p2 = make_peer("peer0.org2", "Org2MSP", 70);
        let (good, pkg) = write_tx(&[&p1, &p2], 7, 11);
        let (underendorsed, _) = write_tx(&[&p1], 8, 12);
        let (mut forged, _) = write_tx(&[&p1, &p2], 9, 13);
        forged.payload.response.payload = b"forged".to_vec();
        let txs = vec![good.clone(), underendorsed, forged, good];

        let mut provider = |_: &TxId| Some(pkg.clone());
        let mut reference = p1.clone();
        let ref_outcome = reference
            .process_block_reference(block_of(&reference, txs.clone()), &mut provider)
            .unwrap();
        for parallel in [false, true] {
            let mut pipelined = p1.clone();
            pipelined.set_parallel_validation(parallel);
            let outcome = pipelined
                .process_block(block_of(&pipelined, txs.clone()), &mut provider)
                .unwrap();
            assert_eq!(outcome, ref_outcome, "parallel={parallel}");
            assert_eq!(pipelined.world_state(), reference.world_state());
            assert_eq!(
                pipelined.block_store().tip_hash(),
                reference.block_store().tip_hash()
            );
        }
    }

    #[test]
    fn non_chaining_block_rejected_without_commit() {
        let mut p1 = make_peer("peer0.org1", "Org1MSP", 61);
        let p2 = make_peer("peer0.org2", "Org2MSP", 62);
        let (tx, pkg) = write_tx(&[&p1.clone(), &p2], 7, 6);
        let bad = Block::new(5, fabric_crypto::sha256(b"bogus"), vec![tx]);
        let mut with_pkg = |_: &TxId| Some(pkg.clone());
        assert!(p1.process_block(bad, &mut with_pkg).is_err());
        assert_eq!(p1.block_store().height(), 0);
        assert_eq!(p1.world_state().hashed_len(), 0);
    }

    #[test]
    fn mvcc_conflict_between_blocks() {
        let mut p1 = make_peer("peer0.org1", "Org1MSP", 63);
        let mut p2 = make_peer("peer0.org2", "Org2MSP", 64);
        // Commit k1 = 5 first.
        let (tx1, pkg1) = write_tx(&[&p1, &p2], 5, 7);
        let block1 = block_of(&p1, vec![tx1]);
        let mut with_pkg1 = |_: &TxId| Some(pkg1.clone());
        p1.process_block(block1.clone(), &mut with_pkg1).unwrap();
        p2.process_block(block1, &mut with_pkg1).unwrap();

        // An "add" endorsed now reads version (0,0)... build it before the
        // next write commits, then commit a conflicting write first.
        let client_kp = Keypair::generate_from_seed(2000);
        let creator = Identity::new("Org1MSP", Role::Client, client_kp.public_key());
        let add_proposal = Proposal::new(
            "ch1",
            "guarded",
            "add",
            vec![b"k1".to_vec(), b"1".to_vec()],
            BTreeMap::new(),
            creator.clone(),
            50,
        );
        let (r1, add_pkg) = p1.endorse(&add_proposal).unwrap();
        let (r2, _) = p2.endorse(&add_proposal).unwrap();
        let endorsements = vec![r1.endorsement.clone(), r2.endorsement];
        let client_signature = client_kp.sign(&Transaction::client_signed_bytes(
            &add_proposal.tx_id,
            &r1.payload,
            &endorsements,
        ));
        let add_tx = Transaction {
            tx_id: add_proposal.tx_id.clone(),
            channel: add_proposal.channel.clone(),
            chaincode: add_proposal.chaincode.clone(),
            creator,
            payload: r1.payload,
            commitment: r1.commitment,
            endorsements,
            client_signature,
            memo: Default::default(),
        };

        // A conflicting write commits in between.
        let (tx2, pkg2) = write_tx(&[&p1, &p2], 6, 8);
        let block2 = block_of(&p1, vec![tx2]);
        let mut with_pkg2 = |_: &TxId| Some(pkg2.clone());
        p1.process_block(block2, &mut with_pkg2).unwrap();

        // Now the add's read version is stale.
        let block3 = block_of(&p1, vec![add_tx]);
        let add_pkg = add_pkg.map(Arc::new);
        let mut with_add = |_: &TxId| add_pkg.clone();
        let outcome = p1.process_block(block3, &mut with_add).unwrap();
        assert_eq!(
            outcome.validation_codes,
            vec![TxValidationCode::MvccReadConflict]
        );
    }
}
