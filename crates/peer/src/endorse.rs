//! The execution phase: proposal simulation and endorsement.

use crate::node::Peer;
use fabric_chaincode::{ChaincodeError, ChaincodeStub};
use fabric_telemetry::TraceContext;
use fabric_types::{
    CollectionHashedRwSet, DefenseConfig, Endorsement, NsRwSet, PayloadCommitment, Proposal,
    ProposalResponse, ProposalResponsePayload, PvtDataPackage, Response, TxRwSet,
};
use std::fmt;

/// Errors returned instead of an endorsement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndorseError {
    /// The proposal targets a channel this peer is not part of.
    WrongChannel {
        /// The peer's channel.
        expected: String,
        /// The proposal's channel.
        found: String,
    },
    /// The chaincode is not installed on this peer.
    UnknownChaincode(String),
    /// Chaincode execution failed; Fabric returns a 500 proposal response,
    /// which the client treats as a failed endorsement.
    Chaincode(ChaincodeError),
}

impl fmt::Display for EndorseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndorseError::WrongChannel { expected, found } => {
                write!(
                    f,
                    "proposal for channel {found:?}, peer serves {expected:?}"
                )
            }
            EndorseError::UnknownChaincode(cc) => write!(f, "chaincode {cc:?} not installed"),
            EndorseError::Chaincode(e) => write!(f, "chaincode error: {e}"),
        }
    }
}

impl std::error::Error for EndorseError {}

impl From<ChaincodeError> for EndorseError {
    fn from(e: ChaincodeError) -> Self {
        EndorseError::Chaincode(e)
    }
}

impl Peer {
    /// Simulates a proposal and produces a signed proposal response
    /// (Fig. 2, steps 2–5 / 7–10).
    ///
    /// Returns the response plus, for PDC transactions, the plaintext
    /// private rwsets that must be disseminated to collection members over
    /// gossip (the transaction itself only carries their hashes).
    ///
    /// Under New Feature 2 ([`DefenseConfig::hashed_payload_commitment`])
    /// the endorsement signature covers the payload with the chaincode
    /// response hashed, per §IV-C2 — the plaintext is still returned to the
    /// client.
    ///
    /// # Errors
    ///
    /// See [`EndorseError`]. In particular, a PDC non-member peer fails
    /// with a chaincode error on *read* proposals (it has no plaintext) but
    /// succeeds on *write-only* proposals — Use Case 1.
    pub fn endorse(
        &self,
        proposal: &Proposal,
    ) -> Result<(ProposalResponse, Option<PvtDataPackage>), EndorseError> {
        let Some(telemetry) = self.telemetry.as_ref() else {
            return self.endorse_inner(proposal);
        };
        if !telemetry.tracing_enabled() {
            // No-op collector: skip the span and the latency histogram,
            // keep the outcome counters.
            let result = self.endorse_inner(proposal);
            match &result {
                Ok(_) => telemetry.endorse_ok.inc(),
                Err(_) => telemetry.endorse_err.inc(),
            }
            return result;
        }
        let mut span = telemetry.span("peer.endorse");
        span.trace(TraceContext::for_tx(proposal.tx_id.as_str()));
        span.node(self.gossip_id.as_str());
        span.field("chaincode", &proposal.chaincode);
        span.field("function", &proposal.function);
        let result = self.endorse_inner(proposal);
        if result.is_ok() {
            span.field("result", "ok");
            telemetry.endorse_ok.inc();
        } else {
            span.field("result", "err");
            telemetry.endorse_err.inc();
        }
        telemetry.endorse_seconds.observe_duration(span.elapsed());
        result
    }

    fn endorse_inner(
        &self,
        proposal: &Proposal,
    ) -> Result<(ProposalResponse, Option<PvtDataPackage>), EndorseError> {
        if proposal.channel != self.channel {
            return Err(EndorseError::WrongChannel {
                expected: self.channel.to_string(),
                found: proposal.channel.to_string(),
            });
        }
        let installed = self
            .chaincodes
            .get(&proposal.chaincode)
            .ok_or_else(|| EndorseError::UnknownChaincode(proposal.chaincode.to_string()))?;

        let mut stub = ChaincodeStub::with_history(
            &self.world_state,
            &self.history,
            &installed.definition,
            &installed.memberships,
            proposal,
        );
        let payload_bytes = installed.handle.invoke(&mut stub)?;
        let results = stub.into_results();

        // Assemble the tx rwset: public part plaintext, PDC parts hashed.
        let hashed_collections: Vec<CollectionHashedRwSet> =
            results.collections.iter().map(|c| c.to_hashed()).collect();
        let tx_rwset = TxRwSet {
            ns_rwsets: vec![NsRwSet {
                namespace: proposal.chaincode.clone(),
                public: results.public,
                metadata_writes: results.metadata_writes,
                collections: hashed_collections,
            }],
        };

        let payload = ProposalResponsePayload {
            proposal_hash: proposal.hash(),
            response: Response::ok(payload_bytes),
            results: tx_rwset,
            event: results.event,
        };
        let commitment = commitment_for(self.defense);
        let signature = self.keypair.sign(&payload.signed_bytes(commitment));
        let response = ProposalResponse {
            payload,
            commitment,
            endorsement: Endorsement {
                endorser: self.identity.clone(),
                signature,
            },
        };

        let pvt = if results.collections.is_empty() {
            None
        } else {
            Some(PvtDataPackage {
                tx_id: proposal.tx_id.clone(),
                namespaces: results
                    .collections
                    .iter()
                    .map(|_| proposal.chaincode.clone())
                    .collect(),
                collections: results.collections,
            })
        };
        Ok((response, pvt))
    }
}

fn commitment_for(defense: DefenseConfig) -> PayloadCommitment {
    if defense.hashed_payload_commitment {
        PayloadCommitment::HashedPayload
    } else {
        PayloadCommitment::Plain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelPolicies;
    use fabric_chaincode::samples::{Guard, GuardedPdc};
    use fabric_chaincode::ChaincodeDefinition;
    use fabric_crypto::Keypair;
    use fabric_types::{CollectionConfig, CollectionName, Identity, OrgId, Role, TxKind, Version};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    const COL: &str = "PDC1";

    fn peer(name: &str, org: &str, seed: u64, defense: DefenseConfig) -> Peer {
        let orgs: Vec<OrgId> = (1..=3).map(|i| OrgId::new(format!("Org{i}MSP"))).collect();
        let mut p = Peer::new(
            name,
            org,
            "ch1",
            ChannelPolicies::default_for(&orgs),
            Keypair::generate_from_seed(seed),
            defense,
        );
        let def = ChaincodeDefinition::new("guarded")
            .with_collection(CollectionConfig::membership_of(COL, &orgs[..2]));
        p.install_chaincode(
            def,
            Arc::new(GuardedPdc::new(
                COL,
                Guard::LessThan(15),
                Guard::LessThan(15),
            )),
        );
        p
    }

    fn proposal(function: &str, args: &[&str], seed: u64) -> Proposal {
        let kp = Keypair::generate_from_seed(seed);
        Proposal::new(
            "ch1",
            "guarded",
            function,
            args.iter().map(|a| a.as_bytes().to_vec()).collect(),
            BTreeMap::new(),
            Identity::new("Org1MSP", Role::Client, kp.public_key()),
            99,
        )
    }

    fn seed_private(p: &mut Peer, value: i64) {
        p.world_state.put_private(
            &"guarded".into(),
            &CollectionName::new(COL),
            "k1",
            value.to_string().into_bytes(),
            Version::new(1, 0),
        );
    }

    #[test]
    fn member_endorses_read_with_plaintext_payload() {
        let mut p = peer("peer0.org1", "Org1MSP", 41, DefenseConfig::original());
        seed_private(&mut p, 12);
        let (resp, pvt) = p.endorse(&proposal("read", &["k1"], 1)).unwrap();
        assert!(resp.verify());
        assert_eq!(resp.payload.response.payload, b"12");
        assert_eq!(resp.commitment, PayloadCommitment::Plain);
        assert_eq!(resp.payload.results.kind(), TxKind::ReadOnly);
        // Reads produce a pvt package too (read set must reach members).
        assert!(pvt.is_some());
    }

    #[test]
    fn non_member_fails_read_but_endorses_write() {
        // Use Case 1 end-to-end at the endorsement API.
        let p3 = peer("peer0.org3", "Org3MSP", 43, DefenseConfig::original());
        let err = p3.endorse(&proposal("read", &["k1"], 1)).unwrap_err();
        assert!(matches!(
            err,
            EndorseError::Chaincode(ChaincodeError::PrivateDataUnavailable { .. })
        ));

        let (resp, pvt) = p3.endorse(&proposal("write", &["k1", "5"], 1)).unwrap();
        assert!(resp.verify());
        assert_eq!(resp.payload.results.kind(), TxKind::WriteOnly);
        assert!(pvt.is_some());
    }

    #[test]
    fn feature2_signs_hashed_payload_form() {
        let mut p = peer("peer0.org1", "Org1MSP", 44, DefenseConfig::feature2());
        seed_private(&mut p, 12);
        let (resp, _) = p.endorse(&proposal("read", &["k1"], 1)).unwrap();
        assert_eq!(resp.commitment, PayloadCommitment::HashedPayload);
        // The client still receives plaintext...
        assert_eq!(resp.payload.response.payload, b"12");
        // ...but the signature only verifies over the hashed form.
        assert!(resp.verify());
        let plain_bytes = resp.payload.signed_bytes(PayloadCommitment::Plain);
        assert!(!resp
            .endorsement
            .signature
            .verify(&resp.endorsement.endorser.public_key, &plain_bytes));
    }

    #[test]
    fn wrong_channel_and_unknown_chaincode() {
        let p = peer("peer0.org1", "Org1MSP", 45, DefenseConfig::original());
        let kp = Keypair::generate_from_seed(5);
        let creator = Identity::new("Org1MSP", Role::Client, kp.public_key());
        let wrong_channel = Proposal::new(
            "other",
            "guarded",
            "read",
            vec![],
            BTreeMap::new(),
            creator.clone(),
            1,
        );
        assert!(matches!(
            p.endorse(&wrong_channel),
            Err(EndorseError::WrongChannel { .. })
        ));
        let unknown = Proposal::new("ch1", "ghost", "read", vec![], BTreeMap::new(), creator, 1);
        assert!(matches!(
            p.endorse(&unknown),
            Err(EndorseError::UnknownChaincode(_))
        ));
    }

    #[test]
    fn business_rule_rejection_surfaces_as_chaincode_error() {
        let p = peer("peer0.org1", "Org1MSP", 46, DefenseConfig::original());
        let err = p.endorse(&proposal("write", &["k1", "20"], 1)).unwrap_err();
        assert!(matches!(
            err,
            EndorseError::Chaincode(ChaincodeError::BusinessRule(_))
        ));
    }
}
