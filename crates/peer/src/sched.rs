//! Cross-block pipelined commit scheduling.
//!
//! [`Peer::process_block`] barrier-synchronizes its two stages per block:
//! the stateless pass over block N must finish before N's stateful merge
//! starts, and N's merge must finish before N+1's stateless pass starts.
//! The scheduler in this module removes the second barrier: a *producer*
//! thread runs the stateless stage of block N+1 while the committer thread
//! merges block N, so the two stages of consecutive blocks overlap.
//!
//! ```text
//!                 time ─────────────────────────────────────▶
//! per-block:   [stateless N][merge N][stateless N+1][merge N+1]
//!
//! overlapped:  [stateless N][stateless N+1][stateless N+2]   producer
//!                           [merge N]      [merge N+1]  …    committer
//! ```
//!
//! The split of work between the stages differs from the per-block
//! pipeline in one deliberate way: the producer performs **only**
//! state-independent checks — batched signature verification, channel
//! membership, the data-hash integrity of the block, and the stateless
//! audit signals — because the ledger state it would need for anything
//! else is concurrently advancing under the merge of the previous block.
//! Everything state-dependent (committed-duplicate lookup, every
//! endorsement-policy evaluation, MVCC, and the writes) runs in the
//! sequential merge against the live state. Policy evaluation against the
//! live mid-block state is equivalent to the per-block pipeline's
//! pre-block-verdict-plus-dirty-recheck scheme: policies read the world
//! state only through key-level validation parameters, so a transaction
//! whose touched parameters were *not* rewritten earlier in the block
//! sees exactly the pre-block values, and one whose parameters *were*
//! rewritten is exactly the case the pipeline re-checks live.
//!
//! Signature verification is the producer's dominant cost, and it is where
//! the batching win lands: one [`BatchVerifier`] persists across the whole
//! stream, so each endorser identity's HMAC pad midstates are fetched from
//! the CA registry once per stream instead of once per signature.
//!
//! Equivalence with [`Peer::process_block`] and the frozen reference path
//! — identical validation codes, state digests, audit-event order, and
//! chain tips — is proven by `tests/pipeline_equivalence.rs`.

use crate::channel::ChannelPolicies;
use crate::commit::{
    apply_transaction_parts, audit_transaction, mvcc_checks_parts, policy_checks_parts,
    purge_expired_parts, record_block_metrics, signature_check_batched, stateless_audit,
    touches_dirty_params, AuditFactsCache, BlockCommitOutcome, CommitError, PvtDataProvider,
};
use crate::node::{InstalledChaincode, Peer};
use crate::telemetry::PeerTelemetry;
use fabric_crypto::BatchVerifier;
use fabric_gossip::PeerId;
use fabric_ledger::{BlockStore, BlockStoreError, HistoryDb, WorldState};
use fabric_policy::PolicyCache;
use fabric_telemetry::{AuditEvent, TraceContext};
use fabric_types::{Block, ChaincodeId, ChannelId, DefenseConfig, TxId, TxValidationCode, Version};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc;
use std::time::Instant;

/// Blocks the producer may run ahead of the merge. Small on purpose: the
/// stages are roughly balanced, so a deep queue only grows memory without
/// adding overlap.
const PIPELINE_DEPTH: usize = 2;

/// Minimum transactions per block before the producer fans its stateless
/// pass out across threads (mirrors the per-block pipeline's threshold).
const MIN_PARALLEL: usize = 4;

/// Per-transaction result of the producer's stateless pass. Narrower than
/// the per-block pipeline's verdict: committed-duplicate lookup and policy
/// evaluation are state-dependent and belong to the merge.
#[derive(Debug, Clone, Default)]
struct OverlapVerdict {
    /// Failure from signature or channel checks; `None` = passed.
    structural: Option<TxValidationCode>,
    /// Audit events derived from the transaction and the (immutable)
    /// chaincode definitions; emitted by the merge, in block order.
    audit: Vec<AuditEvent>,
}

/// A block that has been through the producer stage and is queued for the
/// sequential merge.
struct StagedBlock {
    block: Block,
    verdicts: Vec<OverlapVerdict>,
    /// Outcome of the (stateless, hashing-heavy) data-hash integrity
    /// check, carried to the merge which owns the chain-linkage decision.
    data_hash_ok: bool,
}

/// The shared, read-only parts of a peer the producer stage needs.
struct StatelessCtx<'a> {
    chaincodes: &'a HashMap<ChaincodeId, InstalledChaincode>,
    channel: &'a ChannelId,
    telemetry: Option<PeerTelemetry>,
    /// Fan the per-transaction pass out across scoped threads (the peer's
    /// `parallel_validation` knob).
    parallel: bool,
    /// Worker budget for the fan-out; the committer thread is excluded so
    /// the merge keeps a core while the producer runs.
    workers: usize,
}

/// The mutable ledger parts plus read-only context the merge stage needs.
/// Split borrows of one [`Peer`]: the producer holds the chaincode map and
/// channel id while the merge holds the state, chain, and history.
struct MergeParts<'a> {
    world_state: &'a mut WorldState,
    block_store: &'a mut BlockStore,
    history: &'a mut HistoryDb,
    chaincodes: &'a HashMap<ChaincodeId, InstalledChaincode>,
    channel_policies: &'a ChannelPolicies,
    defense: DefenseConfig,
    sbe_policies: &'a PolicyCache,
    telemetry: Option<PeerTelemetry>,
    gossip_id: &'a PeerId,
}

impl StatelessCtx<'_> {
    /// The producer stage for one block: data-hash integrity, batched
    /// signatures, channel membership, and the stateless audit signals.
    /// `batch` persists across the stream's sequential path so each
    /// endorser identity resolves against the CA registry once.
    fn stage_block(&self, block: Block, batch: &mut BatchVerifier) -> StagedBlock {
        let tracing = self.telemetry.as_ref().is_some_and(|t| t.tracing_enabled());
        let mark = tracing.then(Instant::now);
        let data_hash_ok = block.data_hash_is_consistent();
        let verdicts =
            if self.parallel && block.transactions.len() >= MIN_PARALLEL && self.workers >= 2 {
                self.stage_parallel(&block.transactions)
            } else {
                let mut audit_cache = AuditFactsCache::default();
                block
                    .transactions
                    .iter()
                    .map(|tx| self.stage_tx(tx, batch, &mut audit_cache))
                    .collect()
            };
        if let (Some(t), Some(mark)) = (&self.telemetry, mark) {
            // Per-block attribution: the stateless histogram observes this
            // block's own pass, wherever it ran, so the distribution is
            // identical to the per-block pipeline's.
            t.stage_stateless.observe_duration(mark.elapsed());
        }
        StagedBlock {
            block,
            verdicts,
            data_hash_ok,
        }
    }

    /// The per-transaction stateless checks of one block, fanned out
    /// across scoped threads. Each worker keeps its own [`BatchVerifier`],
    /// amortizing identity resolution within its chunk.
    fn stage_parallel(&self, transactions: &[fabric_types::Transaction]) -> Vec<OverlapVerdict> {
        let workers = self.workers.min(transactions.len());
        let chunk_size = transactions.len().div_ceil(workers);
        let mut results = vec![OverlapVerdict::default(); transactions.len()];
        std::thread::scope(|scope| {
            let chunks = transactions.chunks(chunk_size);
            let result_chunks = results.chunks_mut(chunk_size);
            for (txs, out) in chunks.zip(result_chunks) {
                scope.spawn(move || {
                    let mut batch = BatchVerifier::new();
                    let mut audit_cache = AuditFactsCache::default();
                    for (tx, slot) in txs.iter().zip(out.iter_mut()) {
                        *slot = self.stage_tx(tx, &mut batch, &mut audit_cache);
                    }
                });
            }
        });
        results
    }

    fn stage_tx<'a>(
        &'a self,
        tx: &'a fabric_types::Transaction,
        batch: &mut BatchVerifier,
        audit_cache: &mut AuditFactsCache<'a>,
    ) -> OverlapVerdict {
        let audit = if self.telemetry.is_some() {
            stateless_audit(self.chaincodes, tx, audit_cache)
        } else {
            Vec::new()
        };
        let structural = if let Some(code) = signature_check_batched(tx, batch) {
            Some(code)
        } else if tx.channel != *self.channel {
            Some(TxValidationCode::BadPayload)
        } else {
            None
        };
        OverlapVerdict { structural, audit }
    }
}

impl MergeParts<'_> {
    /// The sequential merge of one staged block: chain linkage, the
    /// state-dependent per-transaction checks, the writes, and the append.
    /// Identical effect order to [`Peer::process_block`]'s stage 2, so the
    /// audit-event sequence and state digests match exactly.
    fn merge_block(
        &mut self,
        staged: StagedBlock,
        pvt_provider: &mut PvtDataProvider<'_>,
    ) -> Result<BlockCommitOutcome, CommitError> {
        let StagedBlock {
            block,
            mut verdicts,
            data_hash_ok,
        } = staged;

        // Chain linkage against the *live* tip (the producer cannot know
        // it); the data-hash leg was pre-computed statelessly. Checked
        // before any mutation, so a failing block commits nothing.
        let expected_number = self.block_store.height();
        if block.header.number != expected_number {
            return Err(BlockStoreError::NonSequentialNumber {
                expected: expected_number,
                found: block.header.number,
            }
            .into());
        }
        let expected_prev = self.block_store.tip_hash();
        if block.header.previous_hash != expected_prev {
            return Err(BlockStoreError::BrokenChain {
                expected: expected_prev,
                found: block.header.previous_hash,
            }
            .into());
        }
        if !data_hash_ok {
            return Err(BlockStoreError::DataHashMismatch.into());
        }

        let block_num = block.header.number;
        let mut missing = Vec::new();
        let mut events = Vec::new();
        let telemetry = self.telemetry.clone();
        let tracing = telemetry.as_ref().is_some_and(|t| t.tracing_enabled());
        let block_span = if tracing {
            telemetry.as_ref().map(|t| {
                let mut s = t.span("peer.process_block");
                s.node(self.gossip_id.as_str());
                s.field("block", block_num);
                s.field("txs", block.transactions.len());
                s
            })
        } else {
            None
        };
        let mark = tracing.then(Instant::now);
        if let Some(t) = &telemetry {
            // New block entering the merge: re-arm per-block collector
            // state (the flight recorder's trigger dedup).
            t.block_boundary();
        }

        let mut block = block;
        let Block {
            transactions,
            metadata,
            ..
        } = &mut block;
        {
            let mut seen_in_block: HashSet<&TxId> = HashSet::with_capacity(transactions.len());
            let mut dirty_params: HashSet<(&ChaincodeId, &str)> = HashSet::new();
            for (i, tx) in transactions.iter().enumerate() {
                let commit_span = if tracing {
                    telemetry.as_ref().map(|t| {
                        let mut s = t.span("peer.commit");
                        s.trace(TraceContext::for_tx(tx.tx_id.as_str()));
                        s.node(self.gossip_id.as_str());
                        s
                    })
                } else {
                    None
                };
                let mut sbe_rechecked = false;
                let code = if !seen_in_block.insert(&tx.tx_id) {
                    TxValidationCode::DuplicateTxId
                } else if let Some(failure) = verdicts[i].structural {
                    failure
                } else if self.block_store.contains_tx(&tx.tx_id) {
                    // Committed-duplicate lookup is state-dependent under
                    // overlap (the chain advances while the producer
                    // runs), so it lives here rather than in stage 1.
                    TxValidationCode::DuplicateTxId
                } else {
                    // All policy evaluation runs against the live state;
                    // the dirty-params set is kept solely so the audit
                    // stream carries the same SBE re-check events as the
                    // per-block pipeline.
                    sbe_rechecked = touches_dirty_params(tx, &dirty_params);
                    let policy = policy_checks_parts(
                        self.chaincodes,
                        self.channel_policies,
                        self.defense,
                        self.sbe_policies,
                        self.world_state,
                        tx,
                    );
                    match policy {
                        Some(failure) => failure,
                        None => mvcc_checks_parts(self.world_state, tx)
                            .unwrap_or(TxValidationCode::Valid),
                    }
                };
                if code.is_valid() {
                    let version = Version::new(block_num, i as u64);
                    if !apply_transaction_parts(
                        self.chaincodes,
                        self.world_state,
                        self.history,
                        tx,
                        version,
                        pvt_provider,
                    ) {
                        missing.push(tx.tx_id.clone());
                    }
                    if let Some(event) = &tx.payload.event {
                        events.push((tx.tx_id.clone(), event.clone()));
                    }
                    for ns in &tx.payload.results.ns_rwsets {
                        for m in &ns.metadata_writes {
                            dirty_params.insert((&ns.namespace, m.key.as_str()));
                        }
                    }
                }
                if let Some(t) = &telemetry {
                    let stateless = std::mem::take(&mut verdicts[i].audit);
                    audit_transaction(t, tx, code, sbe_rechecked, stateless);
                }
                if let Some(mut s) = commit_span {
                    s.field("code", code);
                    s.finish();
                }
                metadata.validation_codes.push(code);
            }
        }
        drop(block_span);
        if let (Some(t), Some(mark)) = (&telemetry, mark) {
            // Per-block attribution: only this block's own merge time, so
            // the stateful histogram is invariant under overlap.
            t.stage_stateful.observe_duration(mark.elapsed());
        }

        // Linkage and data hash were checked above; the append cannot fail.
        self.block_store.append_unchecked(block);
        purge_expired_parts(self.chaincodes, self.world_state, block_num);

        let validation_codes = self
            .block_store
            .block(block_num)
            .expect("block was just appended")
            .metadata
            .validation_codes
            .clone();
        if let Some(t) = &telemetry {
            record_block_metrics(t, block_num, &validation_codes, missing.len());
        }
        Ok(BlockCommitOutcome {
            validation_codes,
            missing_private_data: missing,
            events,
        })
    }
}

impl Peer {
    /// Commits a stream of consecutive blocks through the overlapped
    /// pipeline: block N+1's stateless pass runs on a producer thread
    /// while block N's stateful merge runs on the calling thread, and one
    /// [`BatchVerifier`] amortizes endorser-identity resolution across
    /// the whole stream. Results — validation codes, state, audit-event
    /// order, chain tip — are identical to committing each block through
    /// [`Peer::process_block`].
    ///
    /// Falls back to an inline (single-threaded, still batch-verified)
    /// loop when the stream is shorter than two blocks or the host has a
    /// single hardware thread, where overlap cannot help.
    ///
    /// # Errors
    ///
    /// [`CommitError::BlockStore`] for the first block that does not
    /// chain onto the local ledger (or fails its data-hash check).
    /// Earlier blocks of the stream remain committed; the failing block
    /// and everything after it commit nothing.
    ///
    /// # Examples
    ///
    /// ```
    /// use fabric_peer::{ChannelPolicies, Peer};
    /// use fabric_crypto::Keypair;
    /// use fabric_types::{Block, DefenseConfig, OrgId};
    ///
    /// let orgs = vec![OrgId::new("Org1MSP")];
    /// let mut peer = Peer::new(
    ///     "peer0.org1",
    ///     "Org1MSP",
    ///     "ch1",
    ///     ChannelPolicies::default_for(&orgs),
    ///     Keypair::generate_from_seed(1),
    ///     DefenseConfig::original(),
    /// );
    /// // Two empty blocks, pre-chained: header hashes do not cover
    /// // metadata, so a stream can be built ahead of the commit.
    /// let b0 = Block::new(0, peer.block_store().tip_hash(), vec![]);
    /// let b1 = Block::new(1, b0.hash(), vec![]);
    /// let outcomes = peer
    ///     .process_blocks_overlapped(vec![b0, b1], &mut |_| None)
    ///     .unwrap();
    /// assert_eq!(outcomes.len(), 2);
    /// assert_eq!(peer.block_store().height(), 2);
    /// ```
    pub fn process_blocks_overlapped(
        &mut self,
        blocks: Vec<Block>,
        pvt_provider: &mut PvtDataProvider<'_>,
    ) -> Result<Vec<BlockCommitOutcome>, CommitError> {
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        let Peer {
            gossip_id,
            channel,
            world_state,
            block_store,
            history,
            chaincodes,
            channel_policies,
            defense,
            parallel_validation,
            sbe_policies,
            telemetry,
            ..
        } = self;
        let ctx = StatelessCtx {
            chaincodes,
            channel,
            telemetry: telemetry.clone(),
            parallel: *parallel_validation,
            workers: cores.saturating_sub(1).max(1),
        };
        let mut parts = MergeParts {
            world_state,
            block_store,
            history,
            chaincodes,
            channel_policies,
            defense: *defense,
            sbe_policies,
            telemetry: telemetry.clone(),
            gossip_id,
        };

        if blocks.len() < 2 || cores < 2 {
            // Overlap cannot help; run the same two stages back to back on
            // this thread. The stream-wide batch verifier still applies.
            let mut batch = BatchVerifier::new();
            let mut outcomes = Vec::with_capacity(blocks.len());
            for block in blocks {
                let staged = ctx.stage_block(block, &mut batch);
                outcomes.push(parts.merge_block(staged, pvt_provider)?);
            }
            return Ok(outcomes);
        }

        let (staged_tx, staged_rx) = mpsc::sync_channel::<StagedBlock>(PIPELINE_DEPTH);
        std::thread::scope(|scope| {
            let producer_ctx = &ctx;
            let producer = scope.spawn(move || {
                let mut batch = BatchVerifier::new();
                for block in blocks {
                    let staged = producer_ctx.stage_block(block, &mut batch);
                    // The merge dropped its receiver after an error; stop
                    // staging, the remaining blocks will not commit.
                    if staged_tx.send(staged).is_err() {
                        break;
                    }
                }
            });
            let mut outcomes = Vec::new();
            let mut failure = None;
            for staged in staged_rx {
                match parts.merge_block(staged, pvt_provider) {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(e) => {
                        // Dropping the receiver (by leaving the loop)
                        // disconnects the producer.
                        failure = Some(e);
                        break;
                    }
                }
            }
            producer.join().expect("overlap producer thread panicked");
            match failure {
                Some(e) => Err(e),
                None => Ok(outcomes),
            }
        })
    }
}
