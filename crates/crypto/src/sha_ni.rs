//! Hardware SHA-256 compression via the x86 SHA extensions (SHA-NI).
//!
//! Production Fabric leans on exactly this: Go's `crypto/sha256` selects
//! the SHA-NI block function at runtime, and block validation is hash-bound
//! (every endorsement signature, block data hash, and hashed private write
//! runs through SHA-256). The simulator's scalar compression loop costs
//! ~350ns per 64-byte block; `sha256rnds2` brings that down by roughly an
//! order of magnitude, which is what makes the commit pipeline's remaining
//! costs (policy evaluation, state updates) visible at all.
//!
//! [`compress`] is a drop-in replacement for the scalar round loop: same
//! state-in/state-out contract, dispatched per-process after one cached
//! CPUID probe. Everything here is `unsafe` only in the
//! `#[target_feature]` sense — no pointers outlive the call and the
//! caller-visible API is safe.

#![cfg(target_arch = "x86_64")]

use crate::hash::K;
use core::arch::x86_64::*;
use std::sync::OnceLock;

/// Whether this CPU exposes the SHA extensions (plus the SSSE3/SSE4.1
/// shuffles the state massaging needs). Probed once, then cached.
pub fn available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        is_x86_feature_detected!("sha")
            && is_x86_feature_detected!("ssse3")
            && is_x86_feature_detected!("sse4.1")
    })
}

/// One SHA-256 compression round over `block`, updating `state` in place.
///
/// Must only be called when [`available`] returns `true`.
pub fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    debug_assert!(available());
    // SAFETY: the caller checked `available()`, so the sha/ssse3/sse4.1
    // target features are present on this CPU.
    unsafe { compress_ni(state, block) }
}

/// Computes `w[i..i+4] + s0 + w[i+9..] + s1` for the next message-schedule
/// group: `msg1` folds in the σ0 terms, the `alignr` supplies `w[i+9..]`,
/// and `msg2` folds in the σ1 terms (FIPS 180-4 §6.2.2 step 1).
#[inline(always)]
unsafe fn schedule(v0: __m128i, v1: __m128i, v2: __m128i, v3: __m128i) -> __m128i {
    let t = _mm_add_epi32(_mm_sha256msg1_epu32(v0, v1), _mm_alignr_epi8(v3, v2, 4));
    _mm_sha256msg2_epu32(t, v3)
}

#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn compress_ni(state: &mut [u32; 8], block: &[u8; 64]) {
    // Big-endian load mask: reverses the bytes of each 32-bit lane.
    let mask = _mm_set_epi64x(0x0c0d0e0f_08090a0bu64 as i64, 0x04050607_00010203u64 as i64);

    // `sha256rnds2` wants the working variables packed as ABEF / CDGH.
    let abcd = _mm_loadu_si128(state.as_ptr().cast());
    let efgh = _mm_loadu_si128(state.as_ptr().add(4).cast());
    let badc = _mm_shuffle_epi32(abcd, 0xB1);
    let hgfe = _mm_shuffle_epi32(efgh, 0x1B);
    let mut abef = _mm_alignr_epi8(badc, hgfe, 8);
    let mut cdgh = _mm_blend_epi16(hgfe, badc, 0xF0);
    let (abef_save, cdgh_save) = (abef, cdgh);

    // First 16 message words, byte-swapped to big-endian.
    let mut w = [
        _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), mask),
        _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), mask),
        _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), mask),
        _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), mask),
    ];

    for g in 0..16 {
        if g >= 4 {
            w[g % 4] = schedule(w[g % 4], w[(g + 1) % 4], w[(g + 2) % 4], w[(g + 3) % 4]);
        }
        let wk = _mm_add_epi32(w[g % 4], _mm_loadu_si128(K.as_ptr().add(4 * g).cast()));
        cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
        abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(wk, 0x0E));
    }

    let abef = _mm_add_epi32(abef, abef_save);
    let cdgh = _mm_add_epi32(cdgh, cdgh_save);

    // Unpack ABEF / CDGH back to the a..h word order.
    let feba = _mm_shuffle_epi32(abef, 0x1B);
    let dchg = _mm_shuffle_epi32(cdgh, 0xB1);
    let abcd = _mm_blend_epi16(feba, dchg, 0xF0);
    let efgh = _mm_alignr_epi8(dchg, feba, 8);
    _mm_storeu_si128(state.as_mut_ptr().cast(), abcd);
    _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), efgh);
}

#[cfg(test)]
mod tests {
    use crate::hash::Sha256;

    /// The RFC/NIST vectors in `hash.rs` already run through the dispatched
    /// path; this cross-checks hardware against the scalar rounds over many
    /// lengths so a lane-packing mistake cannot hide behind short inputs.
    #[test]
    fn hardware_matches_scalar_rounds() {
        if !super::available() {
            return;
        }
        // Deterministic pseudo-random payload (xorshift, no deps).
        let mut x = 0x9e3779b97f4a7c15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        for len in [0, 1, 55, 56, 63, 64, 65, 127, 128, 1000, 4096] {
            let mut hw = Sha256::new();
            hw.update(&data[..len]);
            let mut sw = Sha256::new_scalar_for_tests();
            sw.update(&data[..len]);
            assert_eq!(hw.finalize(), sw.finalize(), "length {len}");
        }
    }
}
