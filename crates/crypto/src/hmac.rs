//! HMAC-SHA256 per RFC 2104.

use crate::hash::{sha256, Hash256, Sha256};

const BLOCK_SIZE: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block size are pre-hashed, as the RFC
/// requires.
///
/// # Examples
///
/// ```
/// use fabric_crypto::hmac_sha256;
///
/// let mac = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     mac.to_hex(),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Hash256 {
    let (inner, outer) = hmac_midstates(key);
    hmac_from_midstates(inner, outer, message)
}

/// The SHA-256 midstates after absorbing the HMAC inner and outer key
/// pads. A fixed key's pads compress to the same midstates for every
/// message, so callers verifying many signatures by the same identity can
/// compute these once and replay them via [`hmac_from_midstates`].
pub(crate) fn hmac_midstates(key: &[u8]) -> ([u32; 8], [u32; 8]) {
    let mut key_block = [0u8; BLOCK_SIZE];
    if key.len() > BLOCK_SIZE {
        key_block[..32].copy_from_slice(sha256(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_SIZE];
    let mut opad = [0x5cu8; BLOCK_SIZE];
    for i in 0..BLOCK_SIZE {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    (
        Sha256::midstate_of_block(&ipad),
        Sha256::midstate_of_block(&opad),
    )
}

/// `HMAC-SHA256` resumed from precomputed pad midstates (see
/// [`hmac_midstates`]).
pub(crate) fn hmac_from_midstates(inner: [u32; 8], outer: [u32; 8], message: &[u8]) -> Hash256 {
    let mut h = Sha256::from_midstate(inner, BLOCK_SIZE as u64);
    h.update(message);
    let inner_digest = h.finalize();

    let mut h = Sha256::from_midstate(outer, BLOCK_SIZE as u64);
    h.update(inner_digest.as_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4231 test cases 1–4, 6 (5 uses truncation, which we don't expose).
    #[test]
    fn rfc4231_vectors() {
        let cases: &[(Vec<u8>, Vec<u8>, &str)] = &[
            (
                vec![0x0b; 20],
                b"Hi There".to_vec(),
                "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
            ),
            (
                b"Jefe".to_vec(),
                b"what do ya want for nothing?".to_vec(),
                "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
            ),
            (
                vec![0xaa; 20],
                vec![0xdd; 50],
                "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
            ),
            (
                (0x01..=0x19).collect(),
                vec![0xcd; 50],
                "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
            ),
            (
                vec![0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
                "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
            ),
        ];
        for (key, msg, expected) in cases {
            assert_eq!(hmac_sha256(key, msg).to_hex(), *expected);
        }
    }

    #[test]
    fn different_keys_give_different_macs() {
        let m = b"same message";
        assert_ne!(hmac_sha256(b"k1", m), hmac_sha256(b"k2", m));
    }
}
