//! Simulated digital signatures backed by a process-private CA registry.
//!
//! The reproduction does not need real ECDSA: the paper's attacks abuse
//! endorsement *policy*, never signature forgery. What the simulation must
//! guarantee is that code holding only public identities cannot fabricate a
//! signature for someone else. We get that by keeping each identity's secret
//! key inside [`Keypair`] (and a module-private registry used only by
//! verification), and defining `sig = HMAC-SHA256(sk, msg)`.

use crate::hash::{sha256, Hash256};
use crate::hmac::{hmac_from_midstates, hmac_midstates, hmac_sha256};
use fabric_wire::{Decode, Encode, Reader, WireError};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A registered identity's verification material: the HMAC pad midstates
/// precomputed from its secret key at registration, so each verification
/// skips the key-pad setup and its two compression rounds.
#[derive(Clone, Copy)]
struct SecretEntry {
    inner: [u32; 8],
    outer: [u32; 8],
}

/// Registry of `public key -> verification material`, playing the role of
/// the Fabric CA for signature verification inside the simulation.
/// Module-private: attack code cannot reach other identities' secrets
/// through the public API.
static CA_REGISTRY: RwLock<Option<HashMap<[u8; 32], SecretEntry>>> = RwLock::new(None);

/// Monotonic counter making `Keypair::generate` unique within a process.
static KEYGEN_COUNTER: AtomicU64 = AtomicU64::new(1);

/// A public identity key (the SHA-256 of the secret key).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PublicKey([u8; 32]);

impl PublicKey {
    /// Raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Short hex prefix for display.
    pub fn short_hex(&self) -> String {
        Hash256(self.0).to_hex()[..8].to_string()
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({}…)", self.short_hex())
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&Hash256(self.0).to_hex())
    }
}

impl Encode for PublicKey {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PublicKey(<[u8; 32]>::decode(r)?))
    }
}

/// A signature over a message by one identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature([u8; 32]);

impl Signature {
    /// Verifies that `self` is a valid signature by `pk` over `msg`.
    ///
    /// Returns `false` for unknown identities or mismatched messages;
    /// verification never panics.
    pub fn verify(&self, pk: &PublicKey, msg: &[u8]) -> bool {
        let entry = {
            let guard = CA_REGISTRY.read();
            let Some(map) = guard.as_ref() else {
                return false;
            };
            let Some(entry) = map.get(&pk.0) else {
                return false;
            };
            *entry
        };
        hmac_from_midstates(entry.inner, entry.outer, msg).0 == self.0
    }

    /// Raw signature bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Builds a signature from raw bytes (e.g. decoded from the wire). The
    /// result is only meaningful if it verifies.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Signature(bytes)
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({}…)", &Hash256(self.0).to_hex()[..8])
    }
}

impl Encode for Signature {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Signature(<[u8; 32]>::decode(r)?))
    }
}

/// Amortizes CA-registry lookups across many verifications.
///
/// [`Signature::verify`] takes the registry read-lock and hashes into the
/// identity map on every call. A block's signatures, however, come from a
/// handful of distinct identities (each endorsing peer signs every
/// transaction it endorses), so a committer verifying a whole block pays
/// those per-call costs hundreds of times for the same few identities. A
/// `BatchVerifier` resolves each identity's verification material — the
/// precomputed HMAC pad midstates — **once**, caches it locally, and replays
/// only the per-message compression rounds for subsequent signatures by the
/// same identity.
///
/// Unknown identities are cached too (as "unknown"), so repeated forged
/// signatures cost one registry probe total. The cache snapshots the
/// registry per identity: a keypair generated *after* an identity was first
/// resolved is not picked up, which never matters on the commit path
/// (transactions carry identities that existed at endorsement time).
///
/// # Examples
///
/// ```
/// use fabric_crypto::{BatchVerifier, Keypair};
///
/// let kp = Keypair::generate_from_seed(5);
/// let mut batch = BatchVerifier::new();
/// for i in 0..3u8 {
///     let msg = [i; 4];
///     let sig = kp.sign(&msg);
///     assert!(batch.verify(&kp.public_key(), &msg, &sig));
/// }
/// assert_eq!(batch.identities_resolved(), 1);
/// ```
#[derive(Default)]
pub struct BatchVerifier {
    cache: HashMap<[u8; 32], Option<SecretEntry>>,
}

impl fmt::Debug for BatchVerifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BatchVerifier({} identities)", self.cache.len())
    }
}

impl BatchVerifier {
    /// An empty verifier; identities are resolved on first use.
    pub fn new() -> Self {
        BatchVerifier::default()
    }

    /// Verifies `sig` over `msg` by `pk`, resolving `pk`'s verification
    /// material from the CA registry only on this verifier's first
    /// encounter with the identity. Same outcome as [`Signature::verify`].
    pub fn verify(&mut self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        let entry = self.cache.entry(pk.0).or_insert_with(|| {
            CA_REGISTRY
                .read()
                .as_ref()
                .and_then(|map| map.get(&pk.0))
                .copied()
        });
        match entry {
            Some(entry) => hmac_from_midstates(entry.inner, entry.outer, msg).0 == sig.0,
            None => false,
        }
    }

    /// Distinct identities resolved so far (known or unknown).
    pub fn identities_resolved(&self) -> usize {
        self.cache.len()
    }
}

/// A signing identity: secret key plus derived public key.
///
/// # Examples
///
/// ```
/// use fabric_crypto::Keypair;
///
/// let alice = Keypair::generate_from_seed(1);
/// let bob = Keypair::generate_from_seed(2);
/// let sig = alice.sign(b"endorse tx");
/// assert!(sig.verify(&alice.public_key(), b"endorse tx"));
/// // Bob's key does not verify Alice's signature.
/// assert!(!sig.verify(&bob.public_key(), b"endorse tx"));
/// ```
#[derive(Clone)]
pub struct Keypair {
    sk: [u8; 32],
    pk: PublicKey,
}

impl fmt::Debug for Keypair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never leak the secret key through Debug.
        write!(f, "Keypair(pk={}…)", self.pk.short_hex())
    }
}

impl Keypair {
    /// Generates a fresh keypair with process-unique entropy and registers
    /// its public key with the simulation CA.
    pub fn generate() -> Self {
        let n = KEYGEN_COUNTER.fetch_add(1, Ordering::Relaxed);
        // Mix a counter with OS-independent RNG seeding for uniqueness.
        let mut rng = StdRng::seed_from_u64(n ^ 0x9e37_79b9_7f4a_7c15);
        let mut sk = [0u8; 32];
        rng.fill_bytes(&mut sk);
        sk[..8].copy_from_slice(&n.to_be_bytes());
        Self::from_secret(sk)
    }

    /// Generates a deterministic keypair from a seed; used by tests and the
    /// deterministic network simulator.
    pub fn generate_from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sk = [0u8; 32];
        rng.fill_bytes(&mut sk);
        Self::from_secret(sk)
    }

    fn from_secret(sk: [u8; 32]) -> Self {
        let pk = PublicKey(sha256(&sk).0);
        let (inner, outer) = hmac_midstates(&sk);
        CA_REGISTRY
            .write()
            .get_or_insert_with(HashMap::new)
            .insert(pk.0, SecretEntry { inner, outer });
        Keypair { sk, pk }
    }

    /// The public identity of this keypair.
    pub fn public_key(&self) -> PublicKey {
        self.pk
    }

    /// Signs `msg` with this identity's secret key.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature(hmac_sha256(&self.sk, msg).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = Keypair::generate();
        let sig = kp.sign(b"msg");
        assert!(sig.verify(&kp.public_key(), b"msg"));
        assert!(!sig.verify(&kp.public_key(), b"other"));
    }

    #[test]
    fn forged_signature_fails() {
        let kp = Keypair::generate();
        let forged = Signature::from_bytes([0u8; 32]);
        assert!(!forged.verify(&kp.public_key(), b"msg"));
    }

    #[test]
    fn unknown_identity_fails() {
        let pk = PublicKey([7u8; 32]);
        let kp = Keypair::generate();
        let sig = kp.sign(b"msg");
        assert!(!sig.verify(&pk, b"msg"));
    }

    #[test]
    fn deterministic_seeds_are_stable() {
        let a = Keypair::generate_from_seed(42);
        let b = Keypair::generate_from_seed(42);
        assert_eq!(a.public_key(), b.public_key());
        assert_eq!(a.sign(b"x"), b.sign(b"x"));
    }

    #[test]
    fn distinct_generate_keys_are_distinct() {
        let a = Keypair::generate();
        let b = Keypair::generate();
        assert_ne!(a.public_key(), b.public_key());
    }

    #[test]
    fn batch_verifier_matches_per_call_verify() {
        let a = Keypair::generate_from_seed(81);
        let b = Keypair::generate_from_seed(82);
        let unknown = PublicKey([9u8; 32]);
        let mut batch = BatchVerifier::new();
        for (i, kp) in [&a, &b, &a, &a, &b].iter().enumerate() {
            let msg = format!("msg-{i}").into_bytes();
            let sig = kp.sign(&msg);
            assert!(batch.verify(&kp.public_key(), &msg, &sig));
            assert!(!batch.verify(&kp.public_key(), b"other", &sig));
            assert!(!batch.verify(&unknown, &msg, &sig));
            // Cross-identity confusion must fail exactly like `verify`.
            let other = if kp.public_key() == a.public_key() {
                &b
            } else {
                &a
            };
            assert_eq!(
                batch.verify(&other.public_key(), &msg, &sig),
                sig.verify(&other.public_key(), &msg)
            );
        }
        // Two real identities plus the unknown one: three resolutions.
        assert_eq!(batch.identities_resolved(), 3);
    }
}
