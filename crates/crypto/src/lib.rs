//! Cryptographic substrate for the Fabric PDC simulator.
//!
//! Hyperledger Fabric relies on SHA-256 for private-data hashing and on
//! X.509/ECDSA identities for endorsement signatures. This crate provides:
//!
//! * [`Sha256`] / [`sha256`] — a from-scratch FIPS 180-4 SHA-256
//!   implementation, tested against NIST vectors. Private-data hashing and
//!   the paper's "New Feature 2" payload hashing use this directly.
//! * [`hmac_sha256`] — RFC 2104 HMAC, tested against RFC 4231 vectors.
//! * [`Keypair`] / [`Signature`] — a *simulated* signature scheme: a keypair
//!   holds a secret 32-byte key, signatures are `HMAC-SHA256(sk, msg)`, and
//!   verification resolves the public key through a process-private CA
//!   registry populated at key generation. Within the simulation this gives
//!   the property that matters for the paper's attacks — code that does not
//!   hold an identity's secret cannot produce a signature that verifies for
//!   that identity — without pulling a full ECDSA implementation into the
//!   reproduction. The attacks in the paper never break cryptography; they
//!   abuse endorsement *policy*.
//!
//! # Examples
//!
//! ```
//! use fabric_crypto::{sha256, Keypair};
//!
//! let digest = sha256(b"private value");
//! assert_eq!(digest.to_hex().len(), 64);
//!
//! let kp = Keypair::generate_from_seed(7);
//! let sig = kp.sign(b"proposal response");
//! assert!(sig.verify(&kp.public_key(), b"proposal response"));
//! assert!(!sig.verify(&kp.public_key(), b"tampered"));
//! ```

mod hash;
mod hmac;
mod sha_ni;
mod sig;

pub use hash::{sha256, Hash256, Sha256};
pub use hmac::hmac_sha256;
pub use sig::{BatchVerifier, Keypair, PublicKey, Signature};
