//! Fig. 11 — impact of the defense measures on system performance.
//!
//! Measures, for read / write / delete PDC transactions:
//!
//! * **execution latency** — one endorsement (chaincode simulation +
//!   rwset assembly + signing), original vs. New Feature 2 (which adds one
//!   SHA-256 of the response payload before signing);
//! * **validation latency** — one block validated and committed, original
//!   vs. New Feature 1 + the non-member endorsement filter (which add one
//!   collection-policy evaluation and a membership check).
//!
//! Run: `cargo bench -p fabric-bench --bench fig11_latency`

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use fabric_bench::{fixture_network, make_proposal, prepared_block, process_prepared, TxOp};
use fabric_pdc::prelude::DefenseConfig;
use std::hint::black_box;

fn execution_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_execution_latency");
    let configs = [
        ("original", DefenseConfig::original()),
        ("feature2", DefenseConfig::feature2()),
    ];
    for (name, defense) in configs {
        let net = fixture_network(defense, 11);
        for op in TxOp::all() {
            let peer = net.peer("peer0.org1").clone();
            let mut nonce = 1_000u64;
            group.bench_function(BenchmarkId::new(op.label(), name), |b| {
                b.iter_batched(
                    || {
                        nonce += 1;
                        make_proposal(&net, op, nonce)
                    },
                    |proposal| black_box(peer.endorse(&proposal).expect("endorse")),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

fn validation_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_validation_latency");
    let configs = [
        ("original", DefenseConfig::original()),
        (
            "feature1+filter",
            DefenseConfig {
                collection_policy_for_reads: true,
                filter_non_member_endorsers: true,
                ..DefenseConfig::original()
            },
        ),
    ];
    for (name, defense) in configs {
        let mut net = fixture_network(defense, 12);
        for (i, op) in TxOp::all().into_iter().enumerate() {
            let (peer, block, pvt) = prepared_block(&mut net, op, defense, 2_000 + i as u64);
            group.bench_function(BenchmarkId::new(op.label(), name), |b| {
                b.iter(|| black_box(process_prepared(&peer, &block, &pvt)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, execution_latency, validation_latency);
criterion_main!(benches);
