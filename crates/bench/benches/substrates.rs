//! Ablation benches over the substrates DESIGN.md calls out: hashing,
//! canonical encoding, policy evaluation, world state, Raft ordering, and
//! the full end-to-end submission path.
//!
//! Run: `cargo bench -p fabric-bench --bench substrates`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fabric_bench::{fixture_network, NS};
use fabric_pdc::crypto::{hmac_sha256, sha256, Keypair};
use fabric_pdc::ledger::WorldState;
use fabric_pdc::policy::{ImplicitMetaPolicy, SignaturePolicy};
use fabric_pdc::prelude::*;
use fabric_pdc::raft::Cluster;
use fabric_pdc::types::Version;
use fabric_pdc::wire::{Decode, Encode};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;

fn crypto_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| black_box(sha256(d)))
        });
    }
    let key = [7u8; 32];
    let msg = vec![1u8; 256];
    group.bench_function("hmac_sha256_256B", |b| {
        b.iter(|| black_box(hmac_sha256(&key, &msg)))
    });
    let kp = Keypair::generate_from_seed(1);
    let sig = kp.sign(&msg);
    group.bench_function("sign_256B", |b| b.iter(|| black_box(kp.sign(&msg))));
    group.bench_function("verify_256B", |b| {
        b.iter(|| black_box(sig.verify(&kp.public_key(), &msg)))
    });
    group.finish();
}

fn wire_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let mut map = BTreeMap::new();
    for i in 0..64 {
        map.insert(format!("key-{i:03}"), vec![i as u8; 32]);
    }
    let encoded = map.to_wire();
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_map64", |b| b.iter(|| black_box(map.to_wire())));
    group.bench_function("decode_map64", |b| {
        b.iter(|| black_box(BTreeMap::<String, Vec<u8>>::from_wire(&encoded).unwrap()))
    });
    group.finish();
}

fn policy_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy");
    let expr =
        "OutOf(3,'Org1MSP.peer','Org2MSP.peer','Org3MSP.peer','Org4MSP.peer','Org5MSP.peer')";
    group.bench_function("parse_outof5", |b| {
        b.iter(|| black_box(SignaturePolicy::parse(expr).unwrap()))
    });

    let policy = SignaturePolicy::parse(expr).unwrap();
    let ids: Vec<Identity> = (1..=5)
        .map(|i| {
            Identity::new(
                format!("Org{i}MSP"),
                Role::Peer,
                Keypair::generate_from_seed(100 + i).public_key(),
            )
        })
        .collect();
    group.bench_function("evaluate_outof5", |b| {
        b.iter(|| black_box(policy.satisfied_by(&ids)))
    });

    let meta = ImplicitMetaPolicy::parse("MAJORITY Endorsement").unwrap();
    let mut org_policies = BTreeMap::new();
    for i in 1..=5 {
        let org = OrgId::new(format!("Org{i}MSP"));
        org_policies.insert(
            org.clone(),
            SignaturePolicy::parse(&format!("OR('Org{i}MSP.peer')")).unwrap(),
        );
    }
    group.bench_function("evaluate_majority5", |b| {
        b.iter(|| black_box(meta.evaluate(&org_policies, &ids)))
    });
    group.finish();
}

fn ledger_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ledger");
    group.bench_function("world_state_put_get_1k", |b| {
        b.iter(|| {
            let mut ws = WorldState::new();
            let ns = ChaincodeId::new(NS);
            for i in 0..1000u64 {
                ws.put_public(
                    &ns,
                    &format!("k{i}"),
                    i.to_be_bytes().to_vec(),
                    Version::new(1, i),
                );
            }
            for i in 0..1000u64 {
                black_box(ws.get_public(&ns, &format!("k{i}")));
            }
        })
    });
    group.bench_function("private_put_with_hashing_1k", |b| {
        b.iter(|| {
            let mut ws = WorldState::new();
            let ns = ChaincodeId::new(NS);
            let col = CollectionName::new("PDC1");
            for i in 0..1000u64 {
                ws.put_private(
                    &ns,
                    &col,
                    &format!("k{i}"),
                    vec![1u8; 64],
                    Version::new(1, i),
                );
            }
            black_box(ws.hashed_len())
        })
    });
    group.finish();
}

fn raft_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("raft");
    group.sample_size(20);
    group.bench_function("replicate_100_entries_5_nodes", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(5, 42);
            let leader = cluster.run_until_leader(1000).expect("leader");
            for i in 0..100u32 {
                cluster.propose(leader, i.to_be_bytes().to_vec()).unwrap();
            }
            cluster.run_ticks(60);
            assert_eq!(cluster.committed(leader).len(), 100);
        })
    });
    group.finish();
}

fn end_to_end_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    for (name, defense) in [
        ("original", DefenseConfig::original()),
        ("hardened", DefenseConfig::hardened()),
    ] {
        group.bench_function(BenchmarkId::new("pdc_write_commit", name), |b| {
            let mut net = fixture_network(defense, 13);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let outcome = net
                    .submit_transaction(
                        "client0.org1",
                        NS,
                        "write",
                        &["k1", "12"],
                        &[],
                        &["peer0.org1", "peer0.org2"],
                    )
                    .expect("commit");
                assert!(outcome.validation_code.is_valid());
            })
        });
    }
    group.finish();
}

fn sweep_benches(c: &mut Criterion) {
    // Ablation 1: MAJORITY evaluation cost vs. channel size — the unit of
    // work New Feature 1 adds per PDC read transaction.
    let mut group = c.benchmark_group("sweep_policy_orgs");
    for n in [2usize, 4, 6, 8, 10] {
        let mut org_policies = BTreeMap::new();
        let ids: Vec<Identity> = (1..=n)
            .map(|i| {
                let org = format!("Org{i}MSP");
                org_policies.insert(
                    OrgId::new(org.clone()),
                    SignaturePolicy::parse(&format!("OR('{org}.peer')")).unwrap(),
                );
                Identity::new(
                    org,
                    Role::Peer,
                    Keypair::generate_from_seed(60_000 + i as u64).public_key(),
                )
            })
            .collect();
        let meta = ImplicitMetaPolicy::parse("MAJORITY Endorsement").unwrap();
        group.bench_function(BenchmarkId::new("majority_eval", n), |b| {
            b.iter(|| black_box(meta.evaluate(&org_policies, &ids)))
        });
    }
    group.finish();

    // Ablation 2: validation latency vs. block size (how Fig. 11 numbers
    // scale when the orderer batches more transactions per block).
    use fabric_pdc::types::Block;
    let mut group = c.benchmark_group("sweep_block_size");
    group.sample_size(15);
    let mut net = fixture_network(DefenseConfig::original(), 16);
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
    let mut all_txs = Vec::new();
    for i in 0..64u64 {
        let mut client = Client::new(
            "Org1MSP",
            Keypair::generate_from_seed(43_000 + i),
            DefenseConfig::original(),
        );
        let proposal = client.create_proposal(
            net.channel().clone(),
            ChaincodeId::new("assets"),
            "CreateAsset",
            vec![
                format!("s{i}").into_bytes(),
                b"red".to_vec(),
                b"alice".to_vec(),
                b"1".to_vec(),
            ],
            Default::default(),
        );
        let r1 = net.peer("peer0.org1").endorse(&proposal).unwrap().0;
        let r2 = net.peer("peer0.org2").endorse(&proposal).unwrap().0;
        let (tx, _) = client.assemble_transaction(&proposal, &[r1, r2]).unwrap();
        all_txs.push(tx);
    }
    let template = net.peer("peer0.org3").clone();
    for size in [1usize, 4, 16, 64] {
        let block = Block::new(
            template.block_store().height(),
            template.block_store().tip_hash(),
            all_txs[..size].to_vec(),
        );
        group.throughput(Throughput::Elements(size as u64));
        group.bench_function(BenchmarkId::new("validate_commit", size), |b| {
            b.iter(|| {
                let mut peer = template.clone();
                let mut no_pvt = |_: &TxId| None;
                black_box(peer.process_block(block.clone(), &mut no_pvt).unwrap())
            })
        });
    }
    group.finish();
}

fn parallel_validation_benches(c: &mut Criterion) {
    use fabric_pdc::types::Block;
    let mut group = c.benchmark_group("parallel_validation");
    group.sample_size(20);
    // A 64-transaction block of independent public writes.
    let mut net = fixture_network(DefenseConfig::original(), 15);
    net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
    let mut txs = Vec::new();
    for i in 0..64u64 {
        let mut client = Client::new(
            "Org1MSP",
            Keypair::generate_from_seed(42_000 + i),
            DefenseConfig::original(),
        );
        let proposal = client.create_proposal(
            net.channel().clone(),
            ChaincodeId::new("assets"),
            "CreateAsset",
            vec![
                format!("a{i}").into_bytes(),
                b"red".to_vec(),
                b"alice".to_vec(),
                b"1".to_vec(),
            ],
            Default::default(),
        );
        let r1 = net.peer("peer0.org1").endorse(&proposal).unwrap().0;
        let r2 = net.peer("peer0.org2").endorse(&proposal).unwrap().0;
        let (tx, _) = client.assemble_transaction(&proposal, &[r1, r2]).unwrap();
        txs.push(tx);
    }
    let template = net.peer("peer0.org3").clone();
    let block = Block::new(
        template.block_store().height(),
        template.block_store().tip_hash(),
        txs,
    );
    for (name, parallel) in [("sequential", false), ("parallel", true)] {
        group.bench_function(BenchmarkId::new("validate_64tx_block", name), |b| {
            b.iter(|| {
                let mut peer = template.clone();
                peer.set_parallel_validation(parallel);
                let mut no_pvt = |_: &TxId| None;
                black_box(peer.process_block(block.clone(), &mut no_pvt).unwrap())
            })
        });
    }
    group.finish();
}

fn analyzer_benches(c: &mut Criterion) {
    use fabric_pdc::analyzer::{corpus, scan_corpus, CorpusSpec};
    let mut group = c.benchmark_group("analyzer");
    group.sample_size(10);
    let spec = CorpusSpec::small(77);
    let root = std::env::temp_dir().join("fabric-bench-corpus");
    let _ = std::fs::remove_dir_all(&root);
    corpus::materialize(&spec, &root).expect("materialize");
    group.bench_function("scan_320_projects", |b| {
        b.iter(|| black_box(scan_corpus(&root).unwrap().len()))
    });
    group.bench_function("generate_320_projects", |b| {
        b.iter(|| black_box(corpus::generate(&spec).len()))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

fn chaincode_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaincode");
    let net = fixture_network(DefenseConfig::original(), 14);
    let peer = net.peer("peer0.org1").clone();
    let mut nonce = 50_000u64;
    group.bench_function("simulate_guarded_read", |b| {
        b.iter(|| {
            nonce += 1;
            let p = fabric_bench::make_proposal(&net, fabric_bench::TxOp::Read, nonce);
            black_box(peer.endorse(&p).unwrap())
        })
    });
    let _ = Arc::new(AssetTransfer); // keep sample chaincodes exercised in docs
    group.finish();
}

criterion_group!(
    benches,
    crypto_benches,
    wire_benches,
    policy_benches,
    ledger_benches,
    raft_benches,
    end_to_end_benches,
    sweep_benches,
    parallel_validation_benches,
    analyzer_benches,
    chaincode_benches,
);
criterion_main!(benches);
