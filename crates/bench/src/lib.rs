//! Shared fixtures for the benchmark harness: prototype networks,
//! pre-endorsed transactions, and ready-to-validate blocks, so benches
//! measure exactly the execution-phase and validation-phase code paths
//! the paper's Fig. 11 measures.

use fabric_pdc::prelude::*;
use fabric_pdc::types::{Block, PvtDataPackage};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The chaincode namespace used by the fixtures.
pub const NS: &str = "guarded";
/// The private data collection used by the fixtures.
pub const COL: &str = "PDC1";

/// Builds the Fig. 11 measurement network: 3 orgs, PDC = {org1, org2},
/// unconstrained guarded chaincode, `k1 = 12` committed.
pub fn fixture_network(defense: DefenseConfig, seed: u64) -> FabricNetwork {
    fixture_network_with("mychannel", defense, seed, None)
}

/// [`fixture_network`] on a named channel, for multi-channel workloads
/// (each sharded commit lane gets its own channel and ledger).
pub fn channel_fixture_network(channel: &str, defense: DefenseConfig, seed: u64) -> FabricNetwork {
    fixture_network_with(channel, defense, seed, None)
}

/// [`fixture_network`] with a shared telemetry pipeline attached to every
/// node, for benchmarks that measure the traced transaction lifecycle.
pub fn traced_fixture_network(defense: DefenseConfig, seed: u64, t: Telemetry) -> FabricNetwork {
    fixture_network_with("mychannel", defense, seed, Some(t))
}

fn fixture_network_with(
    channel: &str,
    defense: DefenseConfig,
    seed: u64,
    t: Option<Telemetry>,
) -> FabricNetwork {
    let mut builder = NetworkBuilder::new(channel)
        .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
        .seed(seed)
        .defense(defense);
    if let Some(t) = t {
        builder = builder.with_telemetry(t);
    }
    let mut net = builder.build();
    let def = ChaincodeDefinition::new(NS)
        .with_endorsement_policy("MAJORITY Endorsement")
        .with_collection(
            CollectionConfig::membership_of(COL, &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
                .with_member_only_read(false)
                .with_endorsement_policy("AND('Org1MSP.peer','Org2MSP.peer')"),
        );
    net.deploy_chaincode(def, Arc::new(GuardedPdc::unconstrained(COL)));
    let outcome = net
        .submit_transaction(
            "client0.org1",
            NS,
            "write",
            &["k1", "12"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .expect("seed write");
    assert!(outcome.validation_code.is_valid());
    net
}

/// The three per-transaction operations Fig. 11 measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOp {
    /// PDC read (`read k1`).
    Read,
    /// PDC write (`write k1 12`).
    Write,
    /// PDC delete (`delete k1`).
    Delete,
}

impl TxOp {
    /// All measured operations.
    pub fn all() -> [TxOp; 3] {
        [TxOp::Read, TxOp::Write, TxOp::Delete]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            TxOp::Read => "read",
            TxOp::Write => "write",
            TxOp::Delete => "delete",
        }
    }

    /// The chaincode invocation for this operation.
    pub fn invocation(&self) -> (&'static str, Vec<Vec<u8>>) {
        match self {
            TxOp::Read => ("read", vec![b"k1".to_vec()]),
            TxOp::Write => ("write", vec![b"k1".to_vec(), b"12".to_vec()]),
            TxOp::Delete => ("delete", vec![b"k1".to_vec()]),
        }
    }
}

/// A prepared proposal for execution-latency measurement (the endorse call
/// is the measured region).
pub fn make_proposal(net: &FabricNetwork, op: TxOp, nonce: u64) -> Proposal {
    let (function, args) = op.invocation();
    let kp = Keypair::generate_from_seed(9_000_000 + nonce);
    let creator = Identity::new("Org1MSP", Role::Client, kp.public_key());
    Proposal::new(
        net.channel().clone(),
        ChaincodeId::new(NS),
        function,
        args,
        Default::default(),
        creator,
        nonce,
    )
}

/// A ready-to-validate block plus its private data, for validation-latency
/// measurement: clone the returned peer, then `process_block`.
pub fn prepared_block(
    net: &mut FabricNetwork,
    op: TxOp,
    defense: DefenseConfig,
    nonce: u64,
) -> (Peer, Block, Option<PvtDataPackage>) {
    let (function, args) = op.invocation();
    let mut client = Client::new(
        "Org1MSP",
        Keypair::generate_from_seed(9_100_000 + nonce),
        defense,
    );
    let proposal = client.create_proposal(
        net.channel().clone(),
        ChaincodeId::new(NS),
        function,
        args,
        Default::default(),
    );
    let (r1, pvt) = net
        .peer("peer0.org1")
        .endorse(&proposal)
        .expect("endorse org1");
    let (r2, _) = net
        .peer("peer0.org2")
        .endorse(&proposal)
        .expect("endorse org2");
    let (tx, _) = client
        .assemble_transaction(&proposal, &[r1, r2])
        .expect("assemble");
    let peer = net.peer("peer0.org2").clone();
    let block = Block::new(
        peer.block_store().height(),
        peer.block_store().tip_hash(),
        vec![tx],
    );
    (peer, block, pvt)
}

/// A ready-to-commit block of `n` distinct-key PDC writes, the member
/// peer that validates it, and the private-data packages keyed by tx-id
/// (the `pvt_provider` backing for `process_block`). This is the
/// commit-throughput workload: every transaction exercises the chaincode-
/// level policy, the collection-level endorsement policy, and the hashed +
/// plaintext write path.
pub fn prepared_commit_block(
    net: &mut FabricNetwork,
    n: usize,
    first_nonce: u64,
) -> (Peer, Block, HashMap<TxId, PvtDataPackage>) {
    let mut txs = Vec::with_capacity(n);
    let mut pkgs = HashMap::with_capacity(n);
    for i in 0..n {
        let nonce = first_nonce + i as u64;
        let mut client = Client::new(
            "Org1MSP",
            Keypair::generate_from_seed(9_200_000 + nonce),
            DefenseConfig::original(),
        );
        let proposal = client.create_proposal(
            net.channel().clone(),
            ChaincodeId::new(NS),
            "write",
            vec![format!("bk{i}").into_bytes(), b"12".to_vec()],
            Default::default(),
        );
        let (r1, pvt) = net
            .peer("peer0.org1")
            .endorse(&proposal)
            .expect("endorse org1");
        let (r2, _) = net
            .peer("peer0.org2")
            .endorse(&proposal)
            .expect("endorse org2");
        let (tx, _) = client
            .assemble_transaction(&proposal, &[r1, r2])
            .expect("assemble");
        if let Some(pkg) = pvt {
            pkgs.insert(tx.tx_id.clone(), pkg);
        }
        txs.push(tx);
    }
    let peer = net.peer("peer0.org2").clone();
    let block = Block::new(
        peer.block_store().height(),
        peer.block_store().tip_hash(),
        txs,
    );
    (peer, block, pkgs)
}

/// A ready-to-commit stream of `blocks` consecutive blocks of
/// `txs_per_block` distinct-key PDC writes each, pre-chained through
/// their header hashes (headers do not cover metadata, so the whole
/// stream can be built before the first commit). The workload for the
/// `pipeline-overlap` and `sharded-N` commit modes; per-block content
/// matches [`prepared_commit_block`].
pub fn prepared_commit_stream(
    net: &mut FabricNetwork,
    blocks: usize,
    txs_per_block: usize,
    first_nonce: u64,
) -> (Peer, Vec<Block>, HashMap<TxId, PvtDataPackage>) {
    let mut pkgs = HashMap::with_capacity(blocks * txs_per_block);
    let peer = net.peer("peer0.org2").clone();
    let mut prev = peer.block_store().tip_hash();
    let mut stream = Vec::with_capacity(blocks);
    for (b, number) in (0..blocks).zip(peer.block_store().height()..) {
        let mut txs = Vec::with_capacity(txs_per_block);
        for i in 0..txs_per_block {
            let g = (b * txs_per_block + i) as u64;
            let nonce = first_nonce + g;
            let mut client = Client::new(
                "Org1MSP",
                Keypair::generate_from_seed(9_300_000 + nonce),
                DefenseConfig::original(),
            );
            let proposal = client.create_proposal(
                net.channel().clone(),
                ChaincodeId::new(NS),
                "write",
                vec![format!("sk{g}").into_bytes(), b"12".to_vec()],
                Default::default(),
            );
            let (r1, pvt) = net
                .peer("peer0.org1")
                .endorse(&proposal)
                .expect("endorse org1");
            let (r2, _) = net
                .peer("peer0.org2")
                .endorse(&proposal)
                .expect("endorse org2");
            let (tx, _) = client
                .assemble_transaction(&proposal, &[r1, r2])
                .expect("assemble");
            if let Some(pkg) = pvt {
                pkgs.insert(tx.tx_id.clone(), pkg);
            }
            txs.push(tx);
        }
        let block = Block::new(number, prev, txs);
        prev = block.hash();
        stream.push(block);
    }
    (peer, stream, pkgs)
}

/// Validates + commits one prepared block on a clone of the peer; the
/// measured region of the validation-latency benchmark.
pub fn process_prepared(peer: &Peer, block: &Block, pvt: &Option<PvtDataPackage>) -> bool {
    let mut peer = peer.clone();
    let mut provider = |_: &TxId| pvt.clone().map(Arc::new);
    let outcome = peer
        .process_block(block.clone(), &mut provider)
        .expect("block chains");
    outcome.validation_codes[0].is_valid()
}

/// Simple statistics over repeated timings (used by the `fig11` binary;
/// the Criterion bench does its own statistics).
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: Duration,
    /// Minimum observed.
    pub min: Duration,
    /// Maximum observed.
    pub max: Duration,
}

/// Times `f` `runs` times (after `warmup` unmeasured runs).
pub fn measure(runs: usize, warmup: usize, mut f: impl FnMut()) -> Stats {
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    let total: Duration = samples.iter().sum();
    Stats {
        mean: total / runs as u32,
        min: *samples.iter().min().expect("runs > 0"),
        max: *samples.iter().max().expect("runs > 0"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_validate() {
        let mut net = fixture_network(DefenseConfig::original(), 1);
        for (i, op) in TxOp::all().into_iter().enumerate() {
            let proposal = make_proposal(&net, op, 50 + i as u64);
            let (resp, _) = net.peer("peer0.org1").endorse(&proposal).unwrap();
            assert!(resp.verify(), "{op:?}");
        }
        for (i, op) in TxOp::all().into_iter().enumerate() {
            let (peer, block, pvt) =
                prepared_block(&mut net, op, DefenseConfig::original(), 80 + i as u64);
            assert!(process_prepared(&peer, &block, &pvt), "{op:?}");
        }
    }

    #[test]
    fn fixtures_build_under_defenses() {
        let mut net = fixture_network(DefenseConfig::hardened(), 2);
        let (peer, block, pvt) =
            prepared_block(&mut net, TxOp::Write, DefenseConfig::hardened(), 99);
        assert!(process_prepared(&peer, &block, &pvt));
    }

    #[test]
    fn measure_reports_ordered_stats() {
        let stats = measure(10, 2, || {
            std::hint::black_box(fabric_pdc::crypto::sha256(b"x"));
        });
        assert!(stats.min <= stats.mean && stats.mean <= stats.max.max(stats.mean));
    }
}
