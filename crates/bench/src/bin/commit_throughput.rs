//! Commit-throughput baseline for the staged validation pipeline.
//!
//! Measures `Peer::process_block` throughput (txs/sec) over blocks of
//! 1/100/1000 PDC-write transactions in three modes:
//!
//! * `reference` — the pre-pipeline sequential validator
//!   (`process_block_reference`): every policy expression parsed at use.
//! * `pipeline-seq` — the staged pipeline with parallel validation off
//!   (compiled-policy caches, sequential stateless pass).
//! * `pipeline-par` — the staged pipeline with parallel validation on.
//!
//! Two stream sections then measure the scheduler work of this PR:
//!
//! * `pipeline-overlap` — `Peer::process_blocks_overlapped` over a
//!   pre-chained multi-block stream, overlapping block N+1's stateless
//!   pass with block N's stateful merge (plus batched per-identity HMAC
//!   verification), against the same stream committed one
//!   `process_block` at a time.
//! * `sharded-N` — one commit lane per channel through
//!   `ShardedScheduler`, against the same channels drained on a single
//!   lane. Channels share no ledger state, so the aggregate rate scales
//!   with cores; single-core hosts serialize the lanes.
//!
//! Two further instrumented passes re-time `pipeline-par`: one with a
//! no-op telemetry collector attached (interleaved with bare runs),
//! yielding the disabled-instrumentation overhead, and one with a live
//! collector, yielding the per-stage (stateless vs stateful) breakdown
//! from the `fabric_commit_stage_seconds` histograms.
//!
//! Writes `BENCH_commit.json` at the repository root so future changes
//! have a perf trajectory. Pass `--smoke` for a seconds-long CI run that
//! skips the file write.
//!
//! ```text
//! cargo run --release -p fabric-bench --bin commit_throughput
//! ```

use fabric_bench::{
    channel_fixture_network, fixture_network, prepared_commit_block, prepared_commit_stream,
    traced_fixture_network, NS,
};
use fabric_pdc::peer::{CommitLane, ShardedScheduler};
use fabric_pdc::prelude::*;
use fabric_pdc::telemetry::PHASES;
use fabric_pdc::types::{Block, PvtDataPackage};
use std::collections::HashMap;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Reference,
    PipelineSeq,
    PipelinePar,
}

impl Mode {
    fn all() -> [Mode; 3] {
        [Mode::Reference, Mode::PipelineSeq, Mode::PipelinePar]
    }

    fn label(&self) -> &'static str {
        match self {
            Mode::Reference => "reference",
            Mode::PipelineSeq => "pipeline-seq",
            Mode::PipelinePar => "pipeline-par",
        }
    }
}

struct Sample {
    block_txs: usize,
    mode: Mode,
    median: Duration,
    txs_per_sec: f64,
}

/// Per-stage timing of one instrumented `pipeline-par` configuration.
struct StageBreakdown {
    block_txs: usize,
    /// Mean per-block stateless-stage time under a live collector,
    /// milliseconds.
    stateless_ms: f64,
    /// Mean per-block stateful-stage time under a live collector,
    /// milliseconds.
    stateful_ms: f64,
    /// Minimum block time with the no-op collector attached.
    instrumented: Duration,
    /// Instrumented-vs-bare overhead (interleaved min-to-min), percent;
    /// noise can make this slightly negative.
    overhead_pct: f64,
    /// Monitored-vs-unmonitored overhead on a live collector (interleaved
    /// min-to-min), percent: the cost of draining the block's audit
    /// events, stepping every rate detector, and re-scoring node health
    /// once per block.
    monitor_overhead_pct: f64,
    /// Security-audit events one commit of this block emits — identical
    /// for sequential and parallel validation (asserted), since events
    /// are emitted only from the sequential merge stage.
    audit_events_per_block: usize,
}

/// Times `process_block` on fresh clones of `peer` (clones and block
/// copies are made outside the measured region).
fn time_mode(
    peer: &Peer,
    block: &Block,
    pkgs: &HashMap<TxId, PvtDataPackage>,
    mode: Mode,
    runs: usize,
    warmup: usize,
    telemetry: Option<&Telemetry>,
) -> Duration {
    let mut base = peer.clone();
    base.set_parallel_validation(mode == Mode::PipelinePar);
    if let Some(t) = telemetry {
        base.set_telemetry(t.clone());
    }
    let mut samples = Vec::with_capacity(runs);
    for i in 0..warmup + runs {
        let mut p = base.clone();
        let b = block.clone();
        // The provider clones each package out of the shared fixture map:
        // a small per-transaction cost paid identically by every mode,
        // without rebuilding (and cache-evicting) a fresh map per run.
        let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned().map(std::sync::Arc::new);
        let start = Instant::now();
        let outcome = match mode {
            Mode::Reference => p.process_block_reference(b, &mut provider),
            _ => p.process_block(b, &mut provider),
        }
        .expect("block chains");
        let elapsed = start.elapsed();
        assert!(
            outcome.validation_codes.iter().all(|c| c.is_valid()),
            "workload transactions must all validate"
        );
        if i >= warmup {
            samples.push(elapsed);
        }
    }
    // Median: robust against scheduler noise on shared hardware.
    samples.sort();
    samples[samples.len() / 2]
}

/// Times bare vs telemetry-instrumented `pipeline-par` with interleaved
/// runs (bare, instrumented, bare, ...), so slow drift — thermal, cache,
/// scheduler — biases both distributions equally. Returns each side's
/// *minimum*: instrumentation is deterministic extra work, so the
/// min-to-min delta isolates it from contention spikes that medians on a
/// shared box still absorb.
fn time_overhead_pair(
    peer: &Peer,
    block: &Block,
    pkgs: &HashMap<TxId, PvtDataPackage>,
    runs: usize,
    warmup: usize,
    noop: &Telemetry,
) -> (Duration, Duration) {
    let mut bare = peer.clone();
    bare.set_parallel_validation(true);
    let mut instrumented = bare.clone();
    instrumented.set_telemetry(noop.clone());
    let mut bare_samples = Vec::with_capacity(runs);
    let mut inst_samples = Vec::with_capacity(runs);
    for i in 0..warmup + runs {
        for (base, samples) in [
            (&bare, &mut bare_samples),
            (&instrumented, &mut inst_samples),
        ] {
            let mut p = base.clone();
            let b = block.clone();
            let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned().map(std::sync::Arc::new);
            let start = Instant::now();
            p.process_block(b, &mut provider).expect("block chains");
            let elapsed = start.elapsed();
            if i >= warmup {
                samples.push(elapsed);
            }
        }
    }
    (
        bare_samples.iter().copied().min().expect("runs > 0"),
        inst_samples.iter().copied().min().expect("runs > 0"),
    )
}

/// Times `pipeline-par` under a live collector with and without a
/// streaming monitor ticking once per block, interleaved min-to-min as
/// in [`time_overhead_pair`]. The monitored side runs the full online-
/// alerting path of `FabricNetwork::advance`: drain the block's audit
/// events, step every rate detector, re-score per-node health, and
/// advance the alert state machine. Both sides pay the same collector,
/// so the delta isolates the monitor.
fn time_monitor_pair(
    peer: &Peer,
    block: &Block,
    pkgs: &HashMap<TxId, PvtDataPackage>,
    runs: usize,
    warmup: usize,
) -> (Duration, Duration) {
    let mut base = peer.clone();
    base.set_parallel_validation(true);
    // A fixture-shaped node roster (three peers and an orderer), all
    // healthy: the steady-state health-scoring cost, with no alert churn.
    let samples: Vec<NodeSample> = (0..4)
        .map(|i| NodeSample {
            node: format!("node{i}"),
            committed_height: 5,
            ordered_height: 5,
            ..NodeSample::default()
        })
        .collect();
    let mut plain_samples = Vec::with_capacity(runs);
    let mut monitored_samples = Vec::with_capacity(runs);
    for i in 0..warmup + runs {
        for (monitored, out) in [(false, &mut plain_samples), (true, &mut monitored_samples)] {
            let telemetry = Telemetry::new();
            let mut p = base.clone();
            p.set_telemetry(telemetry.clone());
            let monitor = monitored.then(|| Monitor::new(&telemetry));
            let b = block.clone();
            let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned().map(std::sync::Arc::new);
            let start = Instant::now();
            p.process_block(b, &mut provider).expect("block chains");
            if let Some(m) = &monitor {
                m.observe_tick(&samples);
            }
            let elapsed = start.elapsed();
            if i >= warmup {
                out.push(elapsed);
            }
        }
    }
    (
        plain_samples.iter().copied().min().expect("runs > 0"),
        monitored_samples.iter().copied().min().expect("runs > 0"),
    )
}

/// Times a whole-stream commit on fresh clones of `peer`: either the
/// staged per-block pipeline in a loop (`overlap = false`) or the
/// pipelined scheduler overlapping block N+1's stateless pass with
/// block N's stateful merge (`overlap = true`).
fn time_stream(
    peer: &Peer,
    blocks: &[Block],
    pkgs: &HashMap<TxId, PvtDataPackage>,
    overlap: bool,
    runs: usize,
    warmup: usize,
) -> Duration {
    let mut base = peer.clone();
    base.set_parallel_validation(true);
    let mut samples = Vec::with_capacity(runs);
    for i in 0..warmup + runs {
        let mut p = base.clone();
        let bs = blocks.to_vec();
        let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned().map(std::sync::Arc::new);
        let start = Instant::now();
        if overlap {
            let outcomes = p
                .process_blocks_overlapped(bs, &mut provider)
                .expect("stream chains");
            assert!(
                outcomes
                    .iter()
                    .all(|o| o.validation_codes.iter().all(|c| c.is_valid())),
                "workload transactions must all validate"
            );
        } else {
            for b in bs {
                let outcome = p.process_block(b, &mut provider).expect("block chains");
                assert!(
                    outcome.validation_codes.iter().all(|c| c.is_valid()),
                    "workload transactions must all validate"
                );
            }
        }
        let elapsed = start.elapsed();
        if i >= warmup {
            samples.push(elapsed);
        }
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// One channel's commit workload: the validating peer, its pre-chained
/// block stream, and the backing private-data packages.
type ChannelWorkload = (Peer, Vec<Block>, HashMap<TxId, PvtDataPackage>);

/// Times committing every channel's stream on fresh peer clones.
/// `sharded = false` drains the channels one after another on the
/// calling thread (a single commit lane); `sharded = true` hands one
/// [`CommitLane`] per channel to the [`ShardedScheduler`], which runs
/// them on scoped threads when the host has the cores.
fn time_sharded(
    channels: &[ChannelWorkload],
    sharded: bool,
    runs: usize,
    warmup: usize,
) -> Duration {
    let mut samples = Vec::with_capacity(runs);
    for i in 0..warmup + runs {
        let mut peers: Vec<Peer> = channels
            .iter()
            .map(|(p, _, _)| {
                let mut p = p.clone();
                p.set_parallel_validation(true);
                p
            })
            .collect();
        let work: Vec<Vec<Block>> = channels.iter().map(|(_, b, _)| b.clone()).collect();
        let elapsed = if sharded {
            let mut lanes = Vec::with_capacity(channels.len());
            for ((p, blocks), (_, _, pkgs)) in peers.iter_mut().zip(work).zip(channels) {
                lanes.push(CommitLane::new(p, blocks, move |tx_id: &TxId| {
                    pkgs.get(tx_id).cloned().map(std::sync::Arc::new)
                }));
            }
            let scheduler = ShardedScheduler::new(lanes);
            let start = Instant::now();
            let results = scheduler.commit();
            let elapsed = start.elapsed();
            for lane in results {
                let outcomes = lane.expect("lane commits");
                assert!(
                    outcomes
                        .iter()
                        .all(|o| o.validation_codes.iter().all(|c| c.is_valid())),
                    "workload transactions must all validate"
                );
            }
            elapsed
        } else {
            let start = Instant::now();
            for ((p, blocks), (_, _, pkgs)) in peers.iter_mut().zip(work).zip(channels) {
                let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned().map(std::sync::Arc::new);
                let outcomes = p
                    .process_blocks_overlapped(blocks, &mut provider)
                    .expect("lane commits");
                assert!(
                    outcomes
                        .iter()
                        .all(|o| o.validation_codes.iter().all(|c| c.is_valid())),
                    "workload transactions must all validate"
                );
            }
            start.elapsed()
        };
        if i >= warmup {
            samples.push(elapsed);
        }
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// Results of the stream and sharded sections, carried into the JSON
/// report.
struct StreamSharded {
    stream_blocks: usize,
    stream_block_txs: usize,
    par_tps: f64,
    overlap_tps: f64,
    shard_channels: usize,
    shard_blocks: usize,
    shard_block_txs: usize,
    lanes1_tps: f64,
    lanesn_tps: f64,
    cores: usize,
}

/// Measures the `pipeline-overlap` stream mode and the `sharded-N`
/// multi-channel mode, printing one row per configuration.
fn run_stream_and_sharded(smoke: bool) -> StreamSharded {
    // Stream: a pre-chained multi-block single-channel stream (block
    // headers do not cover metadata, so the whole stream exists up
    // front), committed per-block vs through the overlap scheduler.
    let (stream_blocks, stream_block_txs) = if smoke { (2, 8) } else { (6, 1000) };
    let (runs, warmup) = if smoke { (3, 1) } else { (8, 2) };
    let mut net = fixture_network(DefenseConfig::original(), 7);
    let (peer, stream, pkgs) = prepared_commit_stream(&mut net, stream_blocks, stream_block_txs, 1);
    let stream_txs = (stream_blocks * stream_block_txs) as f64;
    let par = time_stream(&peer, &stream, &pkgs, false, runs, warmup);
    let overlap = time_stream(&peer, &stream, &pkgs, true, runs, warmup);
    let par_tps = stream_txs / par.as_secs_f64();
    let overlap_tps = stream_txs / overlap.as_secs_f64();
    for (mode, median, tps) in [
        ("pipeline-par", par, par_tps),
        ("pipeline-overlap", overlap, overlap_tps),
    ] {
        println!(
            "stream blocks={stream_blocks} block_txs={stream_block_txs:>5}  mode={mode:<17} \
             median={median:>10.3?}  txs/sec={tps:>10.0}"
        );
    }
    println!(
        "overlap speedup vs per-block pipeline-par: {:.2}x",
        overlap_tps / par_tps
    );

    // Sharded: one independent ledger per channel; lanes=1 drains them
    // sequentially, lanes=N commits them on per-channel lanes.
    let (shard_channels, shard_blocks, shard_block_txs) =
        if smoke { (2, 2, 8) } else { (4, 2, 500) };
    let (runs, warmup) = if smoke { (3, 1) } else { (6, 1) };
    let channels: Vec<ChannelWorkload> = (0..shard_channels)
        .map(|c| {
            let mut net = channel_fixture_network(
                &format!("lane{c}"),
                DefenseConfig::original(),
                20 + c as u64,
            );
            prepared_commit_stream(
                &mut net,
                shard_blocks,
                shard_block_txs,
                (c * shard_blocks * shard_block_txs) as u64,
            )
        })
        .collect();
    let agg_txs = (shard_channels * shard_blocks * shard_block_txs) as f64;
    let lanes1 = time_sharded(&channels, false, runs, warmup);
    let lanesn = time_sharded(&channels, true, runs, warmup);
    let lanes1_tps = agg_txs / lanes1.as_secs_f64();
    let lanesn_tps = agg_txs / lanesn.as_secs_f64();
    let cores = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    for (lanes, median, tps) in [
        (1, lanes1, lanes1_tps),
        (shard_channels, lanesn, lanesn_tps),
    ] {
        println!(
            "sharded channels={shard_channels} lanes={lanes}  median={median:>10.3?}  \
             aggregate_txs/sec={tps:>10.0}  (cores={cores})"
        );
    }

    StreamSharded {
        stream_blocks,
        stream_block_txs,
        par_tps,
        overlap_tps,
        shard_channels,
        shard_blocks,
        shard_block_txs,
        lanes1_tps,
        lanesn_tps,
        cores,
    }
}

/// Runs `txs` traced transactions through a fresh fixture network and
/// returns the median latency (milliseconds) of each lifecycle phase,
/// in [`PHASES`] order, from the `fabric_tx_phase_seconds` histograms.
fn measure_phase_latencies(txs: usize) -> Vec<(&'static str, f64)> {
    let traced = Telemetry::new();
    let mut net = traced_fixture_network(DefenseConfig::original(), 11, traced.clone());
    let mut tx_ids = Vec::with_capacity(txs);
    for i in 0..txs {
        let key = format!("pk{i}");
        let outcome = net
            .submit_transaction(
                "client0.org1",
                NS,
                "write",
                &[&key, "12"],
                &[],
                &["peer0.org1", "peer0.org2"],
            )
            .expect("traced write");
        assert!(outcome.validation_code.is_valid());
        tx_ids.push(outcome.tx_id);
    }
    let records = traced.trace().expect("in-memory sink").records();
    for tx_id in &tx_ids {
        let timeline = TxTimeline::collect(&records, tx_id.as_str());
        assert!(timeline.complete(), "traced tx must have all five phases");
        timeline.record_phase_metrics(traced.metrics());
    }
    PHASES
        .iter()
        .map(|phase| {
            let p50 = traced
                .metrics()
                .find_histogram("fabric_tx_phase_seconds", &[("phase", phase)])
                .and_then(|h| h.quantile(0.5))
                .unwrap_or(f64::NAN);
            (*phase, p50 * 1e3)
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // `--sizes=1,100` restricts the block sizes measured (full run counts,
    // no JSON write) — for iterating on one configuration.
    let explicit_sizes: Option<Vec<usize>> = std::env::args()
        .find_map(|a| a.strip_prefix("--sizes=").map(str::to_owned))
        .map(|list| {
            list.split(',')
                .map(|n| n.parse().expect("--sizes takes comma-separated integers"))
                .collect()
        });
    let sizes: &[usize] = match &explicit_sizes {
        Some(sizes) => sizes,
        None if smoke => &[1, 8],
        None => &[1, 100, 1000],
    };

    let mut results: Vec<Sample> = Vec::new();
    let mut breakdowns: Vec<StageBreakdown> = Vec::new();
    for &n in sizes {
        let mut net = fixture_network(DefenseConfig::original(), 7);
        let (peer, block, pkgs) = prepared_commit_block(&mut net, n, 1);
        let (runs, warmup) = match (smoke, n) {
            (true, _) => (3, 1),
            (false, 1) => (400, 50),
            (false, 100) => (60, 6),
            _ => (15, 2),
        };
        for mode in Mode::all() {
            let median = time_mode(&peer, &block, &pkgs, mode, runs, warmup, None);
            let txs_per_sec = n as f64 / median.as_secs_f64();
            println!(
                "block_txs={n:>5}  mode={:<13} median={:>10.3?}  txs/sec={txs_per_sec:>10.0}",
                mode.label(),
                median,
            );
            results.push(Sample {
                block_txs: n,
                mode,
                median,
                txs_per_sec,
            });
        }

        // Instrumented pass: pipeline-par again, now with a no-op
        // collector attached. Bare and instrumented runs interleave so
        // clock-speed drift hits both distributions equally, and the
        // min-to-min delta is the instrumentation overhead. Small blocks
        // get many extra runs — their minima sit at single-digit
        // microseconds, where a stable floor needs a deep sample.
        let noop = Telemetry::noop();
        let pair_runs = if smoke {
            runs
        } else {
            (200_000 / n).clamp(200, 2000)
        };
        let (bare, instrumented) =
            time_overhead_pair(&peer, &block, &pkgs, pair_runs, warmup, &noop);
        let overhead_pct =
            (instrumented.as_secs_f64() - bare.as_secs_f64()) / bare.as_secs_f64() * 100.0;
        // Monitor pass: live collector on both sides, one monitor tick
        // per block on the monitored side.
        let (unmonitored, monitored) = time_monitor_pair(&peer, &block, &pkgs, pair_runs, warmup);
        let monitor_overhead_pct = (monitored.as_secs_f64() - unmonitored.as_secs_f64())
            / unmonitored.as_secs_f64()
            * 100.0;
        // Stage breakdown from a short pass with a live collector: the
        // no-op pipeline skips timing instrumentation entirely (that is
        // the point of the overhead number above), so the stage
        // histograms only fill when spans are actually recorded.
        let traced = Telemetry::new();
        let stage_runs = if smoke { runs } else { 10 };
        time_mode(
            &peer,
            &block,
            &pkgs,
            Mode::PipelinePar,
            stage_runs,
            warmup.min(2),
            Some(&traced),
        );
        let stage_ms = |stage: &str| {
            traced
                .metrics()
                .find_histogram("fabric_commit_stage_seconds", &[("stage", stage)])
                .map(|h| h.sum() / h.count() as f64 * 1e3)
                .unwrap_or(f64::NAN)
        };
        // Audit-event volume per committed block, measured once per
        // parallelism setting on a fresh collector: events come only from
        // the sequential merge stage, so the counts must match.
        let audit_events = |parallel: bool| {
            let t = Telemetry::noop();
            let mut p = peer.clone();
            p.set_parallel_validation(parallel);
            p.set_telemetry(t.clone());
            let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned().map(std::sync::Arc::new);
            p.process_block(block.clone(), &mut provider)
                .expect("block chains");
            t.audit().len()
        };
        let audit_seq = audit_events(false);
        let audit_par = audit_events(true);
        assert_eq!(
            audit_seq, audit_par,
            "audit-event volume must not depend on the parallelism knob"
        );

        let breakdown = StageBreakdown {
            block_txs: n,
            stateless_ms: stage_ms("stateless"),
            stateful_ms: stage_ms("stateful"),
            instrumented,
            overhead_pct,
            monitor_overhead_pct,
            audit_events_per_block: audit_par,
        };
        println!(
            "block_txs={n:>5}  mode=pipeline-par+telemetry min={:>10.3?}  \
             stateless={:.3}ms stateful={:.3}ms overhead={overhead_pct:+.2}% \
             monitor_overhead={monitor_overhead_pct:+.2}% audit_events={}",
            breakdown.instrumented,
            breakdown.stateless_ms,
            breakdown.stateful_ms,
            breakdown.audit_events_per_block,
        );
        breakdowns.push(breakdown);
    }

    let throughput = |txs: usize, mode: Mode| {
        results
            .iter()
            .find(|s| s.block_txs == txs && s.mode == mode)
            .map(|s| s.txs_per_sec)
    };
    let largest = *sizes.last().expect("sizes not empty");
    let speedup = match (
        throughput(largest, Mode::PipelinePar),
        throughput(largest, Mode::Reference),
    ) {
        (Some(par), Some(reference)) => par / reference,
        _ => f64::NAN,
    };
    println!("speedup {largest}-tx pipeline-par vs reference: {speedup:.2}x");

    // Stream + sharded sections (skipped under --sizes, which iterates
    // on one per-block configuration).
    let stream_sharded = if explicit_sizes.is_none() {
        Some(run_stream_and_sharded(smoke))
    } else {
        None
    };

    // Per-phase lifecycle latencies: a traced end-to-end workload through
    // a full network (client → endorse → order → replicate → validate →
    // commit), aggregated per phase via the tx-timeline histograms.
    let phase_p50 = measure_phase_latencies(if smoke { 5 } else { 30 });
    for (phase, p50_ms) in &phase_p50 {
        println!("phase={phase:<10} p50={p50_ms:.3}ms");
    }

    if smoke || explicit_sizes.is_some() {
        println!("partial run: skipping BENCH_commit.json");
        return;
    }

    let mut json = String::from("{\n  \"bench\": \"commit_throughput\",\n");
    json.push_str(
        "  \"workload\": \"distinct-key PDC writes (chaincode MAJORITY + collection AND policy)\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"block_txs\": {}, \"mode\": \"{}\", \"median_ms\": {:.3}, \"txs_per_sec\": {:.0}}}{sep}\n",
            s.block_txs,
            s.mode.label(),
            s.median.as_secs_f64() * 1e3,
            s.txs_per_sec
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"stage_breakdowns\": [\n");
    for (i, b) in breakdowns.iter().enumerate() {
        let sep = if i + 1 == breakdowns.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"block_txs\": {}, \"mode\": \"pipeline-par+noop-telemetry\", \
             \"min_block_ms\": {:.3}, \"stateless_ms\": {:.3}, \"stateful_ms\": {:.3}, \
             \"telemetry_overhead_pct\": {:.2}, \"monitor_overhead_pct\": {:.2}, \
             \"audit_events_per_block\": {}}}{sep}\n",
            b.block_txs,
            b.instrumented.as_secs_f64() * 1e3,
            b.stateless_ms,
            b.stateful_ms,
            b.overhead_pct,
            b.monitor_overhead_pct,
            b.audit_events_per_block
        ));
    }
    json.push_str("  ],\n");
    let ss = stream_sharded.expect("full runs measure the stream and sharded sections");
    json.push_str(&format!(
        "  \"stream\": {{\"blocks\": {}, \"block_txs\": {}, \
         \"pipeline_par_txs_per_sec\": {:.0}, \"pipeline_overlap_txs_per_sec\": {:.0}, \
         \"overlap_speedup\": {:.2}}},\n",
        ss.stream_blocks,
        ss.stream_block_txs,
        ss.par_tps,
        ss.overlap_tps,
        ss.overlap_tps / ss.par_tps
    ));
    json.push_str(&format!(
        "  \"sharded\": {{\"channels\": {}, \"blocks_per_channel\": {}, \"block_txs\": {}, \
         \"lanes_1_txs_per_sec\": {:.0}, \"lanes_{}_txs_per_sec\": {:.0}, \
         \"hardware_cores\": {}, \"target_txs_per_sec\": 1000000, \
         \"note\": \"channels share no ledger state; the aggregate rate scales with cores, \
         and single-core hosts serialize the lanes\"}},\n",
        ss.shard_channels,
        ss.shard_blocks,
        ss.shard_block_txs,
        ss.lanes1_tps,
        ss.shard_channels,
        ss.lanesn_tps,
        ss.cores
    ));
    json.push_str("  \"phase_latency_p50_ms\": {");
    for (i, (phase, p50_ms)) in phase_p50.iter().enumerate() {
        let sep = if i + 1 == phase_p50.len() { "" } else { ", " };
        json.push_str(&format!("\"{phase}\": {p50_ms:.3}{sep}"));
    }
    json.push_str("},\n");
    // Headline overhead: the largest block size, where per-block span
    // costs are amortized and the per-transaction instrumentation cost
    // dominates — the number the <3% budget is judged against.
    let headline = breakdowns
        .iter()
        .find(|b| b.block_txs == largest)
        .map(|b| b.overhead_pct)
        .unwrap_or(f64::NAN);
    json.push_str(&format!(
        "  \"telemetry_overhead_pct_{largest}tx\": {headline:.2},\n"
    ));
    // Monitor headline under the same convention: one monitor tick per
    // block, amortized over the largest block — judged against a <3%
    // budget for the online-alerting path.
    let monitor_headline = breakdowns
        .iter()
        .find(|b| b.block_txs == largest)
        .map(|b| b.monitor_overhead_pct)
        .unwrap_or(f64::NAN);
    json.push_str(&format!(
        "  \"monitor_overhead_pct_{largest}tx\": {monitor_headline:.2},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_{largest}tx_parallel_vs_reference\": {speedup:.2}\n}}\n"
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_commit.json");
    std::fs::write(path, json).expect("write BENCH_commit.json");
    println!("wrote {path}");
}
