//! Commit-throughput baseline for the staged validation pipeline.
//!
//! Measures `Peer::process_block` throughput (txs/sec) over blocks of
//! 1/100/1000 PDC-write transactions in three modes:
//!
//! * `reference` — the pre-pipeline sequential validator
//!   (`process_block_reference`): every policy expression parsed at use.
//! * `pipeline-seq` — the staged pipeline with parallel validation off
//!   (compiled-policy caches, sequential stateless pass).
//! * `pipeline-par` — the staged pipeline with parallel validation on.
//!
//! Writes `BENCH_commit.json` at the repository root so future changes
//! have a perf trajectory. Pass `--smoke` for a seconds-long CI run that
//! skips the file write.
//!
//! ```text
//! cargo run --release -p fabric-bench --bin commit_throughput
//! ```

use fabric_bench::{fixture_network, prepared_commit_block};
use fabric_pdc::prelude::*;
use fabric_pdc::types::{Block, PvtDataPackage};
use std::collections::HashMap;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Reference,
    PipelineSeq,
    PipelinePar,
}

impl Mode {
    fn all() -> [Mode; 3] {
        [Mode::Reference, Mode::PipelineSeq, Mode::PipelinePar]
    }

    fn label(&self) -> &'static str {
        match self {
            Mode::Reference => "reference",
            Mode::PipelineSeq => "pipeline-seq",
            Mode::PipelinePar => "pipeline-par",
        }
    }
}

struct Sample {
    block_txs: usize,
    mode: Mode,
    median: Duration,
    txs_per_sec: f64,
}

/// Times `process_block` on fresh clones of `peer` (clones and block
/// copies are made outside the measured region).
fn time_mode(
    peer: &Peer,
    block: &Block,
    pkgs: &HashMap<TxId, PvtDataPackage>,
    mode: Mode,
    runs: usize,
    warmup: usize,
) -> Duration {
    let mut base = peer.clone();
    base.set_parallel_validation(mode == Mode::PipelinePar);
    let mut samples = Vec::with_capacity(runs);
    for i in 0..warmup + runs {
        let mut p = base.clone();
        let b = block.clone();
        // The provider clones each package out of the shared fixture map:
        // a small per-transaction cost paid identically by every mode,
        // without rebuilding (and cache-evicting) a fresh map per run.
        let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned();
        let start = Instant::now();
        let outcome = match mode {
            Mode::Reference => p.process_block_reference(b, &mut provider),
            _ => p.process_block(b, &mut provider),
        }
        .expect("block chains");
        let elapsed = start.elapsed();
        assert!(
            outcome.validation_codes.iter().all(|c| c.is_valid()),
            "workload transactions must all validate"
        );
        if i >= warmup {
            samples.push(elapsed);
        }
    }
    // Median: robust against scheduler noise on shared hardware.
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke { &[1, 8] } else { &[1, 100, 1000] };

    let mut results: Vec<Sample> = Vec::new();
    for &n in sizes {
        let mut net = fixture_network(DefenseConfig::original(), 7);
        let (peer, block, pkgs) = prepared_commit_block(&mut net, n, 1);
        let (runs, warmup) = match (smoke, n) {
            (true, _) => (3, 1),
            (false, 1) => (400, 50),
            (false, 100) => (60, 6),
            _ => (15, 2),
        };
        for mode in Mode::all() {
            let median = time_mode(&peer, &block, &pkgs, mode, runs, warmup);
            let txs_per_sec = n as f64 / median.as_secs_f64();
            println!(
                "block_txs={n:>5}  mode={:<13} median={:>10.3?}  txs/sec={txs_per_sec:>10.0}",
                mode.label(),
                median,
            );
            results.push(Sample {
                block_txs: n,
                mode,
                median,
                txs_per_sec,
            });
        }
    }

    let throughput = |txs: usize, mode: Mode| {
        results
            .iter()
            .find(|s| s.block_txs == txs && s.mode == mode)
            .map(|s| s.txs_per_sec)
    };
    let largest = *sizes.last().expect("sizes not empty");
    let speedup = match (
        throughput(largest, Mode::PipelinePar),
        throughput(largest, Mode::Reference),
    ) {
        (Some(par), Some(reference)) => par / reference,
        _ => f64::NAN,
    };
    println!("speedup {largest}-tx pipeline-par vs reference: {speedup:.2}x");

    if smoke {
        println!("smoke run: skipping BENCH_commit.json");
        return;
    }

    let mut json = String::from("{\n  \"bench\": \"commit_throughput\",\n");
    json.push_str(
        "  \"workload\": \"distinct-key PDC writes (chaincode MAJORITY + collection AND policy)\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"block_txs\": {}, \"mode\": \"{}\", \"median_ms\": {:.3}, \"txs_per_sec\": {:.0}}}{sep}\n",
            s.block_txs,
            s.mode.label(),
            s.median.as_secs_f64() * 1e3,
            s.txs_per_sec
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_{largest}tx_parallel_vs_reference\": {speedup:.2}\n}}\n"
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_commit.json");
    std::fs::write(path, json).expect("write BENCH_commit.json");
    println!("wrote {path}");
}
