//! Commit-throughput baseline for the staged validation pipeline.
//!
//! Measures `Peer::process_block` throughput (txs/sec) over blocks of
//! 1/100/1000 PDC-write transactions in three modes:
//!
//! * `reference` — the pre-pipeline sequential validator
//!   (`process_block_reference`): every policy expression parsed at use.
//! * `pipeline-seq` — the staged pipeline with parallel validation off
//!   (compiled-policy caches, sequential stateless pass).
//! * `pipeline-par` — the staged pipeline with parallel validation on.
//!
//! A fourth instrumented pass re-times `pipeline-par` with a no-op
//! telemetry collector attached, yielding the per-stage (stateless vs
//! stateful) breakdown from the `fabric_commit_stage_seconds` histograms
//! and the instrumentation overhead relative to the bare pipeline.
//!
//! Writes `BENCH_commit.json` at the repository root so future changes
//! have a perf trajectory. Pass `--smoke` for a seconds-long CI run that
//! skips the file write.
//!
//! ```text
//! cargo run --release -p fabric-bench --bin commit_throughput
//! ```

use fabric_bench::{fixture_network, prepared_commit_block};
use fabric_pdc::prelude::*;
use fabric_pdc::types::{Block, PvtDataPackage};
use std::collections::HashMap;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Reference,
    PipelineSeq,
    PipelinePar,
}

impl Mode {
    fn all() -> [Mode; 3] {
        [Mode::Reference, Mode::PipelineSeq, Mode::PipelinePar]
    }

    fn label(&self) -> &'static str {
        match self {
            Mode::Reference => "reference",
            Mode::PipelineSeq => "pipeline-seq",
            Mode::PipelinePar => "pipeline-par",
        }
    }
}

struct Sample {
    block_txs: usize,
    mode: Mode,
    median: Duration,
    txs_per_sec: f64,
}

/// Per-stage timing of one instrumented `pipeline-par` configuration.
struct StageBreakdown {
    block_txs: usize,
    /// Mean per-block stateless-stage time, milliseconds.
    stateless_ms: f64,
    /// Mean per-block stateful-stage time, milliseconds.
    stateful_ms: f64,
    /// Minimum block time with the no-op collector attached.
    instrumented: Duration,
    /// Instrumented-vs-bare overhead (interleaved min-to-min), percent;
    /// noise can make this slightly negative.
    overhead_pct: f64,
}

/// Times `process_block` on fresh clones of `peer` (clones and block
/// copies are made outside the measured region).
fn time_mode(
    peer: &Peer,
    block: &Block,
    pkgs: &HashMap<TxId, PvtDataPackage>,
    mode: Mode,
    runs: usize,
    warmup: usize,
    telemetry: Option<&Telemetry>,
) -> Duration {
    let mut base = peer.clone();
    base.set_parallel_validation(mode == Mode::PipelinePar);
    if let Some(t) = telemetry {
        base.set_telemetry(t.clone());
    }
    let mut samples = Vec::with_capacity(runs);
    for i in 0..warmup + runs {
        let mut p = base.clone();
        let b = block.clone();
        // The provider clones each package out of the shared fixture map:
        // a small per-transaction cost paid identically by every mode,
        // without rebuilding (and cache-evicting) a fresh map per run.
        let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned();
        let start = Instant::now();
        let outcome = match mode {
            Mode::Reference => p.process_block_reference(b, &mut provider),
            _ => p.process_block(b, &mut provider),
        }
        .expect("block chains");
        let elapsed = start.elapsed();
        assert!(
            outcome.validation_codes.iter().all(|c| c.is_valid()),
            "workload transactions must all validate"
        );
        if i >= warmup {
            samples.push(elapsed);
        }
    }
    // Median: robust against scheduler noise on shared hardware.
    samples.sort();
    samples[samples.len() / 2]
}

/// Times bare vs telemetry-instrumented `pipeline-par` with interleaved
/// runs (bare, instrumented, bare, ...), so slow drift — thermal, cache,
/// scheduler — biases both distributions equally. Returns each side's
/// *minimum*: instrumentation is deterministic extra work, so the
/// min-to-min delta isolates it from contention spikes that medians on a
/// shared box still absorb.
fn time_overhead_pair(
    peer: &Peer,
    block: &Block,
    pkgs: &HashMap<TxId, PvtDataPackage>,
    runs: usize,
    warmup: usize,
    noop: &Telemetry,
) -> (Duration, Duration) {
    let mut bare = peer.clone();
    bare.set_parallel_validation(true);
    let mut instrumented = bare.clone();
    instrumented.set_telemetry(noop.clone());
    let mut bare_samples = Vec::with_capacity(runs);
    let mut inst_samples = Vec::with_capacity(runs);
    for i in 0..warmup + runs {
        for (base, samples) in [
            (&bare, &mut bare_samples),
            (&instrumented, &mut inst_samples),
        ] {
            let mut p = base.clone();
            let b = block.clone();
            let mut provider = |tx_id: &TxId| pkgs.get(tx_id).cloned();
            let start = Instant::now();
            p.process_block(b, &mut provider).expect("block chains");
            let elapsed = start.elapsed();
            if i >= warmup {
                samples.push(elapsed);
            }
        }
    }
    (
        bare_samples.iter().copied().min().expect("runs > 0"),
        inst_samples.iter().copied().min().expect("runs > 0"),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke { &[1, 8] } else { &[1, 100, 1000] };

    let mut results: Vec<Sample> = Vec::new();
    let mut breakdowns: Vec<StageBreakdown> = Vec::new();
    for &n in sizes {
        let mut net = fixture_network(DefenseConfig::original(), 7);
        let (peer, block, pkgs) = prepared_commit_block(&mut net, n, 1);
        let (runs, warmup) = match (smoke, n) {
            (true, _) => (3, 1),
            (false, 1) => (400, 50),
            (false, 100) => (60, 6),
            _ => (15, 2),
        };
        for mode in Mode::all() {
            let median = time_mode(&peer, &block, &pkgs, mode, runs, warmup, None);
            let txs_per_sec = n as f64 / median.as_secs_f64();
            println!(
                "block_txs={n:>5}  mode={:<13} median={:>10.3?}  txs/sec={txs_per_sec:>10.0}",
                mode.label(),
                median,
            );
            results.push(Sample {
                block_txs: n,
                mode,
                median,
                txs_per_sec,
            });
        }

        // Instrumented pass: pipeline-par again, now with a no-op
        // collector attached. Bare and instrumented runs interleave so
        // clock-speed drift hits both distributions equally; the stage
        // histograms the instrumented runs fill give the
        // stateless/stateful split, and the median delta is the
        // instrumentation overhead.
        let noop = Telemetry::noop();
        let pair_runs = if smoke { runs } else { runs.max(40) };
        let (bare, instrumented) =
            time_overhead_pair(&peer, &block, &pkgs, pair_runs, warmup, &noop);
        let overhead_pct =
            (instrumented.as_secs_f64() - bare.as_secs_f64()) / bare.as_secs_f64() * 100.0;
        let stage_ms = |stage: &str| {
            noop.metrics()
                .find_histogram("fabric_commit_stage_seconds", &[("stage", stage)])
                .map(|h| h.sum() / h.count() as f64 * 1e3)
                .unwrap_or(f64::NAN)
        };
        let breakdown = StageBreakdown {
            block_txs: n,
            stateless_ms: stage_ms("stateless"),
            stateful_ms: stage_ms("stateful"),
            instrumented,
            overhead_pct,
        };
        println!(
            "block_txs={n:>5}  mode=pipeline-par+telemetry min={:>10.3?}  \
             stateless={:.3}ms stateful={:.3}ms overhead={overhead_pct:+.2}%",
            breakdown.instrumented, breakdown.stateless_ms, breakdown.stateful_ms,
        );
        breakdowns.push(breakdown);
    }

    let throughput = |txs: usize, mode: Mode| {
        results
            .iter()
            .find(|s| s.block_txs == txs && s.mode == mode)
            .map(|s| s.txs_per_sec)
    };
    let largest = *sizes.last().expect("sizes not empty");
    let speedup = match (
        throughput(largest, Mode::PipelinePar),
        throughput(largest, Mode::Reference),
    ) {
        (Some(par), Some(reference)) => par / reference,
        _ => f64::NAN,
    };
    println!("speedup {largest}-tx pipeline-par vs reference: {speedup:.2}x");

    if smoke {
        println!("smoke run: skipping BENCH_commit.json");
        return;
    }

    let mut json = String::from("{\n  \"bench\": \"commit_throughput\",\n");
    json.push_str(
        "  \"workload\": \"distinct-key PDC writes (chaincode MAJORITY + collection AND policy)\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"block_txs\": {}, \"mode\": \"{}\", \"median_ms\": {:.3}, \"txs_per_sec\": {:.0}}}{sep}\n",
            s.block_txs,
            s.mode.label(),
            s.median.as_secs_f64() * 1e3,
            s.txs_per_sec
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"stage_breakdowns\": [\n");
    for (i, b) in breakdowns.iter().enumerate() {
        let sep = if i + 1 == breakdowns.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"block_txs\": {}, \"mode\": \"pipeline-par+noop-telemetry\", \
             \"min_block_ms\": {:.3}, \"stateless_ms\": {:.3}, \"stateful_ms\": {:.3}, \
             \"telemetry_overhead_pct\": {:.2}}}{sep}\n",
            b.block_txs,
            b.instrumented.as_secs_f64() * 1e3,
            b.stateless_ms,
            b.stateful_ms,
            b.overhead_pct
        ));
    }
    json.push_str("  ],\n");
    // Headline overhead: the largest block size, where per-block span
    // costs are amortized and the per-transaction instrumentation cost
    // dominates — the number the <3% budget is judged against.
    let headline = breakdowns
        .iter()
        .find(|b| b.block_txs == largest)
        .map(|b| b.overhead_pct)
        .unwrap_or(f64::NAN);
    json.push_str(&format!(
        "  \"telemetry_overhead_pct_{largest}tx\": {headline:.2},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_{largest}tx_parallel_vs_reference\": {speedup:.2}\n}}\n"
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_commit.json");
    std::fs::write(path, json).expect("write BENCH_commit.json");
    println!("wrote {path}");
}
