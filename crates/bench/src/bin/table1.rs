//! Regenerates Table I: read/write sets of the four transaction types
//! operating on `⟨k1, val1⟩`, produced by real chaincode simulation.
//!
//! Run: `cargo run -p fabric-bench --bin table1`

use fabric_pdc::chaincode::{ChaincodeDefinition, ChaincodeError, ChaincodeStub};
use fabric_pdc::ledger::WorldState;
use fabric_pdc::prelude::*;
use fabric_pdc::types::{KvRwSet, Version};
use std::collections::HashSet;

/// A minimal chaincode exposing the four primitive operations.
fn table1_chaincode(stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
    match stub.function() {
        "read_only" => {
            stub.get_state("k1");
            Ok(Vec::new())
        }
        "write_only" => {
            stub.put_state("k1", b"val1".to_vec());
            Ok(Vec::new())
        }
        "read_write" => {
            stub.get_state("k1");
            stub.put_state("k1", b"val1".to_vec());
            Ok(Vec::new())
        }
        "delete_only" => {
            stub.del_state("k1");
            Ok(Vec::new())
        }
        other => Err(ChaincodeError::FunctionNotFound(other.to_string())),
    }
}

fn simulate(function: &str) -> KvRwSet {
    // World state where k1 exists at version 1 (the table's premise).
    let mut ws = WorldState::new();
    let def = ChaincodeDefinition::new("cc");
    ws.put_public(&def.id, "k1", b"val1".to_vec(), Version::new(1, 0));
    let memberships = HashSet::new();
    let kp = Keypair::generate_from_seed(1);
    let proposal = Proposal::new(
        "ch1",
        "cc",
        function,
        vec![],
        Default::default(),
        Identity::new("Org1MSP", Role::Client, kp.public_key()),
        1,
    );
    let mut stub = ChaincodeStub::new(&ws, &def, &memberships, &proposal);
    table1_chaincode(&mut stub).expect("function exists");
    stub.into_results().public
}

fn render_reads(rwset: &KvRwSet) -> String {
    if rwset.reads.is_empty() {
        "NULL".to_string()
    } else {
        rwset
            .reads
            .iter()
            .map(|r| {
                format!(
                    "({}, {})",
                    r.key,
                    r.version.map(|v| v.to_string()).unwrap_or("∅".into())
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn render_writes(rwset: &KvRwSet) -> String {
    if rwset.writes.is_empty() {
        "NULL".to_string()
    } else {
        rwset
            .writes
            .iter()
            .map(|w| {
                format!(
                    "({}, {}, is_delete={})",
                    w.key,
                    w.value
                        .as_ref()
                        .map(|v| String::from_utf8_lossy(v).into_owned())
                        .unwrap_or_else(|| "null".into()),
                    w.is_delete
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn main() {
    println!("TABLE I — READ/WRITE SET IN DIFFERENT TYPES OF TRANSACTIONS ON <k1, val1>");
    println!("(k1 exists at version 1:0; sets produced by real chaincode simulation)\n");
    println!(
        "{:<14} | {:<12} | {:<18} | Write Set",
        "Tx Type", "Kind", "Read Set"
    );
    println!("{}", "-".repeat(84));
    for function in ["read_only", "write_only", "read_write", "delete_only"] {
        let rwset = simulate(function);
        println!(
            "{:<14} | {:<12} | {:<18} | {}",
            function,
            rwset.kind().to_string(),
            render_reads(&rwset),
            render_writes(&rwset)
        );
    }
}
