//! Regenerates Fig. 11 as a quick textual summary: execution and
//! validation latency of one transaction, original vs. modified framework,
//! 100 runs each (the paper's methodology). For full statistics use
//! `cargo bench -p fabric-bench --bench fig11_latency`.
//!
//! Run: `cargo run --release -p fabric-bench --bin fig11`

use fabric_bench::{
    fixture_network, make_proposal, measure, prepared_block, process_prepared, Stats, TxOp,
};
use fabric_pdc::prelude::DefenseConfig;
use std::hint::black_box;

const RUNS: usize = 100;
const WARMUP: usize = 10;

fn fmt(stats: Stats) -> String {
    format!("{:>9.1?} (min {:>9.1?})", stats.mean, stats.min)
}

fn main() {
    println!("Fig. 11 — impact of defense measures on per-transaction latency");
    println!("({RUNS} measured runs per cell, {WARMUP} warm-up runs)\n");

    println!("execution latency (one endorsement):");
    println!(
        "{:<8} | {:<28} | {:<28} | overhead",
        "tx", "original", "new feature 2"
    );
    println!("{}", "-".repeat(84));
    for op in TxOp::all() {
        let mut cells = Vec::new();
        for defense in [DefenseConfig::original(), DefenseConfig::feature2()] {
            let net = fixture_network(defense, 21);
            let peer = net.peer("peer0.org1").clone();
            let mut nonce = 10_000u64;
            let stats = measure(RUNS, WARMUP, || {
                nonce += 1;
                let proposal = make_proposal(&net, op, nonce);
                black_box(peer.endorse(&proposal).expect("endorse"));
            });
            cells.push(stats);
        }
        let overhead = cells[1].mean.as_secs_f64() / cells[0].mean.as_secs_f64() * 100.0 - 100.0;
        println!(
            "{:<8} | {:<28} | {:<28} | {:+.1} %",
            op.label(),
            fmt(cells[0]),
            fmt(cells[1]),
            overhead
        );
    }

    println!("\nvalidation latency (one block validated + committed):");
    println!(
        "{:<8} | {:<28} | {:<28} | overhead",
        "tx", "original", "feature 1 + filter"
    );
    println!("{}", "-".repeat(84));
    let defended = DefenseConfig {
        collection_policy_for_reads: true,
        filter_non_member_endorsers: true,
        ..DefenseConfig::original()
    };
    for op in TxOp::all() {
        let mut cells = Vec::new();
        for defense in [DefenseConfig::original(), defended] {
            let mut net = fixture_network(defense, 22);
            let (peer, block, pvt) = prepared_block(&mut net, op, defense, 20_000);
            let stats = measure(RUNS, WARMUP, || {
                black_box(process_prepared(&peer, &block, &pvt));
            });
            cells.push(stats);
        }
        let overhead = cells[1].mean.as_secs_f64() / cells[0].mean.as_secs_f64() * 100.0 - 100.0;
        println!(
            "{:<8} | {:<28} | {:<28} | {:+.1} %",
            op.label(),
            fmt(cells[0]),
            fmt(cells[1]),
            overhead
        );
    }
    println!("\n(the paper reports minor impact in both phases; see EXPERIMENTS.md)");
}
