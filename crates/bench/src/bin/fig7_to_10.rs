//! Regenerates Figs. 7–10: the GitHub corpus study. Materializes the
//! paper-scale synthetic corpus (6392 projects) on disk, scans it with the
//! static analyzer, and prints the four figures.
//!
//! Run: `cargo run -p fabric-bench --bin fig7_to_10 [--small] [--keep]`

use fabric_pdc::analyzer::{corpus, scan_corpus, CorpusReport, CorpusSpec};
use std::fs;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let keep = args.iter().any(|a| a == "--keep");
    let spec = if small {
        CorpusSpec::small(20210704)
    } else {
        CorpusSpec::default()
    };
    let root = std::env::temp_dir().join(format!("fabric-pdc-fig7to10-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);

    let start = Instant::now();
    println!(
        "materializing {} synthetic Fabric projects under {} ...",
        spec.total(),
        root.display()
    );
    corpus::materialize(&spec, &root)?;
    println!("generated in {:.2?}; scanning ...", start.elapsed());

    let scan_start = Instant::now();
    let reports = scan_corpus(&root)?;
    let agg = CorpusReport::from_reports(&reports);
    println!(
        "scanned {} projects in {:.2?}\n",
        reports.len(),
        scan_start.elapsed()
    );

    println!("{}", agg.render_fig7());
    println!("{}", agg.render_fig8());
    println!("{}", agg.render_fig9());
    println!("{}", agg.render_fig10());

    println!("paper comparison:");
    println!(
        "  chaincode-level policy usage: measured {:.2} %  (paper: 86.51 %)",
        agg.pct_chaincode_level()
    );
    println!(
        "  PDC leakage issues:           measured {:.2} %  (paper: 91.67 %)",
        agg.pct_leaky()
    );
    println!(
        "  MAJORITY among configtx:      measured {}/{}  (paper: 116/120)",
        agg.configtx_majority, agg.configtx_found
    );

    if keep {
        println!("\ncorpus kept at {}", root.display());
    } else {
        let _ = fs::remove_dir_all(&root);
    }
    Ok(())
}
