//! End-to-end network throughput: the full submit → order → replicate →
//! validate → commit path through a live [`FabricNetwork`], measured
//! open-loop across peer counts and block sizes.
//!
//! Where `commit_throughput` isolates one peer's validation pipeline,
//! this bench drives the whole network: transactions are pre-endorsed and
//! pre-assembled (the client-side cost is not under test), then submitted
//! in one burst, and the network is ticked until every block lands on
//! every peer. The measured region covers Raft block cutting and
//! replication, the per-peer block fan-out, signature validation at every
//! peer, and the transient-store purge.
//!
//! Each configuration runs twice, once per [`FanoutMode`]:
//!
//! * `shared` — the production path: one block whose `Arc`-backed
//!   transaction storage is refcount-bumped per peer, with per-transaction
//!   signed-bytes memoized once and reused by every peer's verification.
//! * `deep-clone` — the pre-sharing cost model: every peer receives an
//!   owned copy of every transaction (fresh encode memos included), so
//!   each peer re-allocates and re-encodes everything it verifies.
//!
//! Writes `BENCH_e2e.json` at the repository root. Pass `--smoke` for a
//! seconds-long CI run that skips the file write.

use fabric_bench::{COL, NS};
use fabric_pdc::orderer::BatchConfig;
use fabric_pdc::prelude::*;
use fabric_pdc::wire::Encode;
use std::time::{Duration, Instant};

/// One measured epoch: a (peer count, block size, fan-out mode) cell.
#[derive(Debug, Clone, Copy)]
struct Sample {
    peers: usize,
    block_txs: usize,
    blocks: usize,
    mode: FanoutMode,
    elapsed: Duration,
    txs_per_sec: f64,
    /// Transaction bytes deep-copied per delivered block across all
    /// peers (0 in shared mode: fan-out is a refcount bump).
    bytes_cloned_per_block: usize,
}

fn mode_label(mode: FanoutMode) -> &'static str {
    match mode {
        FanoutMode::Shared => "shared",
        FanoutMode::DeepClone => "deep-clone",
    }
}

/// A 2-org network with `peers` total peers (extra peers join via
/// `add_peer`, alternating orgs) and blocks cut at exactly `block_txs`
/// transactions. Both orgs are members of the PDC, so private data
/// fans out to every peer.
fn build_net(peers: usize, block_txs: usize, seed: u64) -> FabricNetwork {
    assert!(peers >= 2, "the endorsement policy needs both orgs");
    let mut net = NetworkBuilder::new("e2e")
        .orgs(&["Org1MSP", "Org2MSP"])
        .seed(seed)
        .batch(BatchConfig {
            max_message_count: block_txs,
            batch_timeout_ticks: 1_000_000,
        })
        .build();
    let def = ChaincodeDefinition::new(NS)
        .with_endorsement_policy("MAJORITY Endorsement")
        .with_collection(
            CollectionConfig::membership_of(COL, &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
                .with_member_only_read(false)
                .with_endorsement_policy("AND('Org1MSP.peer','Org2MSP.peer')"),
        );
    net.deploy_chaincode(def, std::sync::Arc::new(GuardedPdc::unconstrained(COL)));
    for extra in 0..peers - 2 {
        let org = if extra % 2 == 0 { "Org1MSP" } else { "Org2MSP" };
        net.add_peer(org);
    }
    assert_eq!(net.peer_names().len(), peers);
    net
}

/// Pre-endorses and assembles `count` distinct-key PDC writes through the
/// network's dissemination path (so every member peer's transient store
/// holds the private data, exactly as after a live endorsement round).
fn prepare_txs(net: &mut FabricNetwork, count: usize, first_nonce: u64) -> Vec<Transaction> {
    let mut txs = Vec::with_capacity(count);
    for i in 0..count {
        let nonce = first_nonce + i as u64;
        let mut client = Client::new(
            "Org1MSP",
            Keypair::generate_from_seed(9_400_000 + nonce),
            DefenseConfig::original(),
        );
        let proposal = client.create_proposal(
            net.channel().clone(),
            ChaincodeId::new(NS),
            "write",
            vec![format!("ek{nonce}").into_bytes(), b"12".to_vec()],
            Default::default(),
        );
        let r1 = net.endorse("peer0.org1", &proposal).expect("endorse org1");
        let r2 = net.endorse("peer0.org2", &proposal).expect("endorse org2");
        let (tx, _) = client
            .assemble_transaction(&proposal, &[r1, r2])
            .expect("assemble");
        txs.push(tx);
    }
    txs
}

/// Submits every transaction in one burst, then ticks the network until
/// all `blocks` expected blocks committed on every peer. Returns the
/// wall-clock time of the submit-to-fully-committed window.
fn run_epoch(net: &mut FabricNetwork, txs: Vec<Transaction>, blocks: usize) -> Duration {
    let names = net.peer_names();
    let target: u64 = net.peer(&names[0]).block_store().height() + blocks as u64;
    let start = Instant::now();
    for tx in txs {
        net.submit(tx);
    }
    for _ in 0..100_000 {
        net.advance(1);
        if names
            .iter()
            .all(|n| net.peer(n).block_store().height() >= target)
        {
            let elapsed = start.elapsed();
            let tip = net.peer(&names[0]).block_store().tip_hash();
            for n in &names {
                assert_eq!(
                    net.peer(n).block_store().tip_hash(),
                    tip,
                    "all peers converge on one tip"
                );
            }
            return elapsed;
        }
    }
    panic!("blocks did not commit within the tick budget");
}

/// Measures one (peers, block size, mode) cell: a fresh network, `blocks`
/// blocks of `block_txs` pre-assembled writes, one timed epoch.
fn measure_cell(peers: usize, block_txs: usize, blocks: usize, mode: FanoutMode) -> Sample {
    let mut net = build_net(peers, block_txs, 7);
    net.set_fanout_mode(mode);
    let txs = prepare_txs(&mut net, blocks * block_txs, (block_txs * 10) as u64);
    // Transaction bytes a deep-clone fan-out copies per block, per peer
    // (measured on memo-free clones so the count reflects the wire form,
    // not cache state).
    let tx_bytes: usize = txs[..block_txs]
        .iter()
        .map(|t| t.clone().to_wire().len())
        .sum();
    let bytes_cloned_per_block = match mode {
        FanoutMode::Shared => 0,
        FanoutMode::DeepClone => peers * tx_bytes,
    };
    let total = txs.len();
    let elapsed = run_epoch(&mut net, txs, blocks);
    Sample {
        peers,
        block_txs,
        blocks,
        mode,
        elapsed,
        txs_per_sec: total as f64 / elapsed.as_secs_f64(),
        bytes_cloned_per_block,
    }
}

/// Runs `txs` traced transactions through the full submission path on a
/// 4-peer network and returns `(phase, p50_ms, p99_ms)` per lifecycle
/// phase from the tx-timeline histograms — the latency-vs-load lens of
/// the paper's Fig. 7–10 applied to the in-process network.
fn measure_phase_latencies(txs: usize) -> Vec<(&'static str, f64, f64)> {
    let traced = Telemetry::new();
    let mut net = NetworkBuilder::new("e2e-traced")
        .orgs(&["Org1MSP", "Org2MSP"])
        .seed(11)
        .with_telemetry(traced.clone())
        .build();
    let def = ChaincodeDefinition::new(NS)
        .with_endorsement_policy("MAJORITY Endorsement")
        .with_collection(
            CollectionConfig::membership_of(COL, &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")])
                .with_member_only_read(false)
                .with_endorsement_policy("AND('Org1MSP.peer','Org2MSP.peer')"),
        );
    net.deploy_chaincode(def, std::sync::Arc::new(GuardedPdc::unconstrained(COL)));
    net.add_peer("Org1MSP");
    net.add_peer("Org2MSP");
    let mut tx_ids = Vec::with_capacity(txs);
    for i in 0..txs {
        let key = format!("tk{i}");
        let outcome = net
            .submit_transaction(
                "client0.org1",
                NS,
                "write",
                &[&key, "12"],
                &[],
                &["peer0.org1", "peer0.org2"],
            )
            .expect("traced write");
        assert!(outcome.validation_code.is_valid());
        tx_ids.push(outcome.tx_id);
    }
    let records = traced.trace().expect("in-memory sink").records();
    for tx_id in &tx_ids {
        let timeline = TxTimeline::collect(&records, tx_id.as_str());
        assert!(timeline.complete(), "traced tx must have all five phases");
        timeline.record_phase_metrics(traced.metrics());
    }
    fabric_pdc::telemetry::PHASES
        .iter()
        .map(|phase| {
            let h = traced
                .metrics()
                .find_histogram("fabric_tx_phase_seconds", &[("phase", phase)]);
            let q = |q: f64| {
                h.as_ref()
                    .and_then(|h| h.quantile(q))
                    .map(|s| s * 1e3)
                    .unwrap_or(f64::NAN)
            };
            (*phase, q(0.5), q(0.99))
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cells: &[(usize, usize, usize)] = if smoke {
        // (peers, block_txs, blocks)
        &[(2, 8, 1)]
    } else {
        &[
            (2, 100, 2),
            (4, 100, 2),
            (8, 100, 2),
            (2, 1000, 2),
            (4, 1000, 2),
            (8, 1000, 2),
        ]
    };

    let mut results: Vec<Sample> = Vec::new();
    for &(peers, block_txs, blocks) in cells {
        for mode in [FanoutMode::DeepClone, FanoutMode::Shared] {
            let s = measure_cell(peers, block_txs, blocks, mode);
            println!(
                "peers={peers} block_txs={block_txs:>5} blocks={blocks} fanout={:<10} \
                 elapsed={:>10.3?}  txs/sec={:>10.0}  bytes_cloned_per_block={}",
                mode_label(s.mode),
                s.elapsed,
                s.txs_per_sec,
                s.bytes_cloned_per_block,
            );
            results.push(s);
        }
    }

    let tps = |peers: usize, block_txs: usize, mode: FanoutMode| {
        results
            .iter()
            .find(|s| s.peers == peers && s.block_txs == block_txs && s.mode == mode)
            .map(|s| s.txs_per_sec)
    };
    let mut speedups: Vec<(usize, usize, f64)> = Vec::new();
    for &(peers, block_txs, _) in cells {
        if let (Some(shared), Some(deep)) = (
            tps(peers, block_txs, FanoutMode::Shared),
            tps(peers, block_txs, FanoutMode::DeepClone),
        ) {
            let speedup = shared / deep;
            println!("peers={peers} block_txs={block_txs:>5} shared vs deep-clone: {speedup:.2}x");
            speedups.push((peers, block_txs, speedup));
        }
    }

    let phase_stats = measure_phase_latencies(if smoke { 3 } else { 25 });
    for (phase, p50, p99) in &phase_stats {
        println!("phase={phase:<10} p50={p50:.3}ms p99={p99:.3}ms");
    }

    if smoke {
        println!("partial run: skipping BENCH_e2e.json");
        return;
    }

    let mut json = String::from("{\n  \"bench\": \"e2e_throughput\",\n");
    json.push_str(
        "  \"workload\": \"pre-assembled distinct-key PDC writes, open-loop submit then \
         tick-to-full-commit across all peers\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"peers\": {}, \"block_txs\": {}, \"blocks\": {}, \"fanout\": \"{}\", \
             \"elapsed_ms\": {:.3}, \"txs_per_sec\": {:.0}, \"bytes_cloned_per_block\": {}}}{sep}\n",
            s.peers,
            s.block_txs,
            s.blocks,
            mode_label(s.mode),
            s.elapsed.as_secs_f64() * 1e3,
            s.txs_per_sec,
            s.bytes_cloned_per_block,
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedups_shared_vs_deep_clone\": [\n");
    for (i, (peers, block_txs, speedup)) in speedups.iter().enumerate() {
        let sep = if i + 1 == speedups.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"peers\": {peers}, \"block_txs\": {block_txs}, \"speedup\": {speedup:.2}}}{sep}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"phase_latency_ms\": {");
    for (i, (phase, p50, p99)) in phase_stats.iter().enumerate() {
        let sep = if i + 1 == phase_stats.len() { "" } else { ", " };
        json.push_str(&format!(
            "\"{phase}\": {{\"p50\": {p50:.3}, \"p99\": {p99:.3}}}{sep}"
        ));
    }
    json.push_str("},\n");
    let headline = speedups
        .iter()
        .find(|(p, b, _)| *p == 4 && *b == 1000)
        .map(|(_, _, s)| *s)
        .unwrap_or(f64::NAN);
    json.push_str(&format!(
        "  \"speedup_4peers_1000tx_shared_vs_deep_clone\": {headline:.2}\n}}\n"
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e2e.json");
    std::fs::write(path, json).expect("write BENCH_e2e.json");
    println!("wrote {path}");
}
