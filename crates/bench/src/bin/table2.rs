//! Regenerates Table II: the attack & defense evaluation summary. Every
//! cell runs an actual attack against a freshly built prototype network.
//!
//! Run: `cargo run -p fabric-bench --bin table2 [seed]`

use fabric_pdc::attacks::{
    build_lab, render_table2, run_attack, run_supplemental_filter_matrix, run_table2, AttackKind,
    LabConfig,
};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20210704);

    println!("running attack × configuration matrix (seed {seed}) ...\n");
    let rows = run_table2(seed);
    println!("{}", render_table2(&rows));

    println!("\nPer-attack detail under the default MAJORITY policy:\n");
    for kind in AttackKind::all() {
        let mut lab = build_lab(&LabConfig {
            seed: seed ^ 0xff,
            ..LabConfig::default()
        });
        let outcome = run_attack(&mut lab, kind);
        println!(
            "  {:<14} -> {:<8} ({}) {}",
            kind.label(),
            if outcome.succeeded { "WORKS" } else { "FAILS" },
            outcome
                .validation_code
                .map(|c| c.to_string())
                .unwrap_or_else(|| "no tx".into()),
            outcome.note
        );
    }

    println!("\nSupplemental feature (beyond Table II): non-member endorsement filter alone:\n");
    for (label, works) in run_supplemental_filter_matrix(seed ^ 0xf1) {
        println!(
            "  {:<14} -> {}",
            label,
            if works {
                "WORKS (filter failed!)"
            } else {
                "blocked"
            }
        );
    }
}
