//! Latency-vs-load curves over the open-loop workload harness: the
//! paper's Fig. 7–10 methodology applied to the in-process network.
//!
//! Each curve fixes a workload shape — Zipf key skew, operation mix,
//! peer count, fault/adversarial injection — and sweeps the offered
//! arrival rate across the orderer's block-cut capacity
//! (`block_txs` transactions per tick). Per rate the harness reports
//! goodput, MVCC abort rate, tick-denominated commit latency, wall-clock
//! per-phase percentiles, and the fabric-monitor alerts that fired; the
//! sweep then locates the saturation knee (goodput plateau or
//! super-linear p99 inflation) and names the bottleneck phase.
//!
//! Writes `BENCH_workload.json` at the repository root — in `--smoke`
//! mode too (CI greps the file), just from a seconds-long configuration.

use fabric_pdc::workload::{run_sweep, LoadPoint, OpMix, SweepCurve, WorkloadConfig};

struct CurveSpec {
    label: &'static str,
    mix_label: &'static str,
    cfg: WorkloadConfig,
}

fn base_config(smoke: bool) -> WorkloadConfig {
    if smoke {
        WorkloadConfig {
            seed: 42,
            virtual_clients: 10_000,
            key_space: 32,
            ticks: 40,
            window_ticks: 20,
            block_txs: 4,
            ..WorkloadConfig::default()
        }
    } else {
        WorkloadConfig {
            seed: 42,
            virtual_clients: 1_000_000,
            key_space: 128,
            ticks: 240,
            window_ticks: 60,
            block_txs: 8,
            ..WorkloadConfig::default()
        }
    }
}

fn curves(smoke: bool) -> Vec<CurveSpec> {
    let base = base_config(smoke);
    let uniform = CurveSpec {
        label: "skew0.00/pdc-heavy",
        mix_label: "pdc-heavy",
        cfg: WorkloadConfig {
            zipf_skew: 0.0,
            ..base.clone()
        },
    };
    let zipf = CurveSpec {
        label: "skew0.99/pdc-heavy",
        mix_label: "pdc-heavy",
        cfg: WorkloadConfig {
            zipf_skew: 0.99,
            ..base.clone()
        },
    };
    if smoke {
        return vec![uniform, zipf];
    }
    vec![
        uniform,
        zipf,
        CurveSpec {
            label: "skew0.99/pdc-heavy/btl+faults+adversary/5peers",
            mix_label: "pdc-heavy",
            cfg: WorkloadConfig {
                zipf_skew: 0.99,
                extra_peers: 2,
                block_to_live: 64,
                endorser_failure_prob: 0.05,
                adversarial_fraction: 0.05,
                ..base.clone()
            },
        },
        CurveSpec {
            label: "skew0.00/public-only",
            mix_label: "public-only",
            cfg: WorkloadConfig {
                zipf_skew: 0.0,
                mix: OpMix::public_only(),
                ..base
            },
        },
    ]
}

fn peer_count(cfg: &WorkloadConfig) -> usize {
    let anchors = if cfg.adversarial_fraction > 0.0 { 3 } else { 2 };
    anchors + cfg.extra_peers
}

/// Curve-level MVCC abort rate over the sub-saturation points (offered
/// rate at or below the block-cut capacity). Past the knee, staleness
/// from inflated endorse-to-commit latency aborts transactions at any
/// skew; below it, key contention is the only abort source, which is
/// the regime where the Zipf-vs-uniform contrast is meaningful.
fn curve_abort_rate(points: &[LoadPoint]) -> f64 {
    let sub: Vec<&LoadPoint> = points
        .iter()
        .filter(|p| p.offered_rate <= p.block_capacity_per_tick as f64)
        .collect();
    let submitted: u64 = sub.iter().map(|p| p.submitted).sum();
    let aborted: u64 = sub.iter().map(|p| p.aborted_mvcc).sum();
    if submitted == 0 {
        0.0
    } else {
        aborted as f64 / submitted as f64
    }
}

fn phase_map_json(map: &std::collections::BTreeMap<String, f64>) -> String {
    let mut out = String::from("{");
    for (i, (phase, ms)) in map.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{phase}\": {ms:.4}"));
    }
    out.push('}');
    out
}

fn point_json(p: &LoadPoint) -> String {
    let alerts = p
        .alerts
        .iter()
        .map(|a| format!("\"{a}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "        {{\"offered_rate\": {:.1}, \"goodput_per_tick\": {:.3}, \"abort_rate\": {:.4}, \
         \"offered\": {}, \"committed\": {}, \"aborted_mvcc\": {}, \"rejected_endorse\": {}, \
         \"invalid_other\": {}, \"adversarial\": {}, \"latency_ticks_p50\": {}, \
         \"latency_ticks_p99\": {}, \"drain_ticks\": {}, \"peak_in_flight\": {}, \
         \"phase_p50_ms\": {}, \"phase_p99_ms\": {}, \"alerts\": [{}]}}",
        p.offered_rate,
        p.goodput_per_tick,
        p.abort_rate,
        p.offered,
        p.committed,
        p.aborted_mvcc,
        p.rejected_endorse,
        p.invalid_other,
        p.adversarial,
        p.latency_ticks_p50,
        p.latency_ticks_p99,
        p.drain_ticks,
        p.peak_in_flight,
        phase_map_json(&p.phase_p50_ms),
        phase_map_json(&p.phase_p99_ms),
        alerts,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let specs = curves(smoke);
    let rates: Vec<f64> = if smoke {
        vec![1.0, 2.0, 4.0, 8.0]
    } else {
        vec![2.0, 4.0, 8.0, 12.0, 16.0]
    };

    let mut swept: Vec<(CurveSpec, SweepCurve)> = Vec::new();
    for spec in specs {
        let curve = run_sweep(spec.label, &spec.cfg, &rates);
        for p in &curve.points {
            println!(
                "{:<46} rate={:>5.1} goodput={:>6.3} abort={:>6.4} rejected={:>4} \
                 lat_ticks(p50/p99)={:>3}/{:<4} alerts={:?}",
                spec.label,
                p.offered_rate,
                p.goodput_per_tick,
                p.abort_rate,
                p.rejected_endorse,
                p.latency_ticks_p50,
                p.latency_ticks_p99,
                p.alerts,
            );
        }
        match &curve.knee {
            Some(k) => println!(
                "{:<46} knee at rate {:.1} ({}; bottleneck: {})",
                spec.label, k.offered_rate, k.reason, k.bottleneck
            ),
            None => println!("{:<46} no knee inside the swept range", spec.label),
        }
        swept.push((spec, curve));
    }

    // The contention story in one number pair: same mix, same rates,
    // only the key skew differs.
    let uniform_abort = curve_abort_rate(&swept[0].1.points);
    let zipf_abort = curve_abort_rate(&swept[1].1.points);
    println!(
        "sub-knee mvcc abort rate: skew 0.00 -> {uniform_abort:.4}, skew 0.99 -> {zipf_abort:.4} \
         ({:.1}x under contention)",
        if uniform_abort > 0.0 {
            zipf_abort / uniform_abort
        } else {
            f64::INFINITY
        }
    );

    let mut json = String::from("{\n  \"bench\": \"workload_throughput\",\n");
    json.push_str(
        "  \"workload\": \"seeded open-loop arrivals of mixed public/PDC/SBE operations with \
         zipfian key contention, BlockToLive churn, endorser-failure and adversarial injection, \
         swept across offered rates\",\n",
    );
    json.push_str(
        "  \"capacity_note\": \"the orderer cuts one block of at most block_txs per tick, so \
         goodput saturates at block_txs/tick\",\n",
    );
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"curves\": [\n");
    for (i, (spec, curve)) in swept.iter().enumerate() {
        let sep = if i + 1 == swept.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"zipf_skew\": {:.2}, \"mix\": \"{}\", \"peers\": {}, \
             \"block_txs\": {}, \"block_to_live\": {}, \"endorser_failure_prob\": {:.2}, \
             \"adversarial_fraction\": {:.2},\n      \"points\": [\n",
            spec.label,
            spec.cfg.zipf_skew,
            spec.mix_label,
            peer_count(&spec.cfg),
            spec.cfg.block_txs,
            spec.cfg.block_to_live,
            spec.cfg.endorser_failure_prob,
            spec.cfg.adversarial_fraction,
        ));
        for (j, p) in curve.points.iter().enumerate() {
            let psep = if j + 1 == curve.points.len() { "" } else { "," };
            json.push_str(&point_json(p));
            json.push_str(psep);
            json.push('\n');
        }
        json.push_str("      ],\n");
        match &curve.knee {
            Some(k) => json.push_str(&format!(
                "      \"knee\": {{\"offered_rate\": {:.1}, \"reason\": \"{}\", \
                 \"bottleneck\": \"{}\"}}}}{sep}\n",
                k.offered_rate, k.reason, k.bottleneck
            )),
            None => json.push_str(&format!("      \"knee\": null}}{sep}\n")),
        }
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sub_knee_mvcc_abort_rate_skew0\": {uniform_abort:.4},\n  \"sub_knee_mvcc_abort_rate_skew099\": {zipf_abort:.4}\n}}\n"
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_workload.json");
    std::fs::write(path, json).expect("write BENCH_workload.json");
    println!("wrote {path}");
}
