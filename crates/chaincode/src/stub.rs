//! The chaincode stub: the shim handed to chaincode during simulation.

use crate::definition::ChaincodeDefinition;
use crate::error::ChaincodeError;
use fabric_crypto::Hash256;
use fabric_ledger::{HistoryDb, HistoryEntry, WorldState};
use fabric_types::{
    ChaincodeEvent, CollectionName, CollectionPvtRwSet, Identity, KvRead, KvRwSet, KvWrite,
    MetadataWrite, Proposal,
};
use std::collections::{BTreeMap, HashSet};

/// Delimiter of composite key components (Fabric uses U+0000).
const COMPOSITE_DELIMITER: char = '\u{0}';

/// One shim-API call observed during a traced simulation.
///
/// Recording is off by default; [`ChaincodeStub::enable_op_log`] turns it
/// on and [`ChaincodeStub::into_results_and_ops`] yields the log. The
/// `fabric-flow` analyzer replays this log to attach provenance to every
/// data sink (public writes, events, response payloads) and to render
/// source→sink flow paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StubOp {
    /// `GetState(key)` returning `value`.
    GetState {
        /// Public key read.
        key: String,
        /// Value returned, when the key existed.
        value: Option<Vec<u8>>,
    },
    /// `PutState(key, value)`.
    PutState {
        /// Public key written.
        key: String,
        /// Value staged for the public write set.
        value: Vec<u8>,
    },
    /// `DelState(key)`.
    DelState {
        /// Public key deleted.
        key: String,
    },
    /// One `GetStateByRange` scan.
    RangeScan {
        /// Range start (inclusive).
        start: String,
        /// Range end (exclusive; empty = unbounded).
        end: String,
        /// Number of keys returned.
        returned: usize,
    },
    /// `GetPrivateData(collection, key)` returning `value` (only recorded
    /// when the membership guards passed).
    GetPrivateData {
        /// Collection read.
        collection: CollectionName,
        /// Private key read.
        key: String,
        /// Plaintext value returned, when the key existed.
        value: Option<Vec<u8>>,
    },
    /// `GetPrivateDataHash(collection, key)`.
    GetPrivateDataHash {
        /// Collection whose hashed store was read.
        collection: CollectionName,
        /// Private key queried.
        key: String,
        /// Whether a hash entry existed.
        found: bool,
    },
    /// `PutPrivateData(collection, key, value)`.
    PutPrivateData {
        /// Collection written.
        collection: CollectionName,
        /// Private key written.
        key: String,
        /// Plaintext value staged for the collection write set.
        value: Vec<u8>,
    },
    /// `DelPrivateData(collection, key)`.
    DelPrivateData {
        /// Collection the delete targets.
        collection: CollectionName,
        /// Private key deleted.
        key: String,
    },
    /// `SetEvent(name, payload)`.
    SetEvent {
        /// Event name.
        name: String,
        /// Event payload (committed into the public block).
        payload: Vec<u8>,
    },
}

impl StubOp {
    /// The bytes this operation carried (read results, staged writes,
    /// event payloads), when any. Taint analysis scans these for
    /// sentinels.
    pub fn carried(&self) -> Option<&[u8]> {
        match self {
            StubOp::GetState { value, .. } | StubOp::GetPrivateData { value, .. } => {
                value.as_deref()
            }
            StubOp::PutState { value, .. } | StubOp::PutPrivateData { value, .. } => {
                Some(value.as_slice())
            }
            StubOp::SetEvent { payload, .. } => Some(payload.as_slice()),
            StubOp::DelState { .. }
            | StubOp::DelPrivateData { .. }
            | StubOp::RangeScan { .. }
            | StubOp::GetPrivateDataHash { .. } => None,
        }
    }
}

impl std::fmt::Display for StubOp {
    /// Compact value-free rendering used in flow-path diagnostics (values
    /// are omitted so rendered paths stay deterministic even for
    /// nondeterministic chaincode).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StubOp::GetState { key, .. } => write!(f, "GetState({key:?})"),
            StubOp::PutState { key, .. } => write!(f, "PutState({key:?})"),
            StubOp::DelState { key } => write!(f, "DelState({key:?})"),
            StubOp::RangeScan {
                start,
                end,
                returned,
            } => write!(
                f,
                "GetStateByRange({start:?}, {end:?}) -> {returned} key(s)"
            ),
            StubOp::GetPrivateData {
                collection, key, ..
            } => write!(f, "GetPrivateData({}, {key:?})", collection.as_str()),
            StubOp::GetPrivateDataHash {
                collection, key, ..
            } => write!(f, "GetPrivateDataHash({}, {key:?})", collection.as_str()),
            StubOp::PutPrivateData {
                collection, key, ..
            } => write!(f, "PutPrivateData({}, {key:?})", collection.as_str()),
            StubOp::DelPrivateData { collection, key } => {
                write!(f, "DelPrivateData({}, {key:?})", collection.as_str())
            }
            StubOp::SetEvent { name, .. } => write!(f, "SetEvent({name:?})"),
        }
    }
}

/// The rwsets produced by one simulated invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimulationResult {
    /// Public-data rwset.
    pub public: KvRwSet,
    /// Key-metadata writes (state-based endorsement parameters).
    pub metadata_writes: Vec<MetadataWrite>,
    /// Plaintext per-collection rwsets, in collection-name order.
    pub collections: Vec<CollectionPvtRwSet>,
    /// Event set via [`ChaincodeStub::set_event`], if any.
    pub event: Option<ChaincodeEvent>,
}

/// The shim API chaincode programs against, backed by the endorsing peer's
/// world-state snapshot. Mirrors Fabric's `ChaincodeStubInterface`:
///
/// * [`get_state`](Self::get_state) / [`put_state`](Self::put_state) /
///   [`del_state`](Self::del_state) for public data;
/// * [`get_private_data`](Self::get_private_data) /
///   [`put_private_data`](Self::put_private_data) /
///   [`del_private_data`](Self::del_private_data) for PDC data;
/// * [`get_private_data_hash`](Self::get_private_data_hash) — works at
///   **every** peer (members and non-members) and records the same
///   `(key, version)` read entry as `get_private_data`, which is exactly
///   the property the paper's endorsement forgery abuses (§IV-A1).
///
/// Reads resolve against the committed snapshot (no read-your-writes
/// within one simulation, as in Fabric).
#[derive(Debug)]
pub struct ChaincodeStub<'a> {
    state: &'a WorldState,
    history: Option<&'a HistoryDb>,
    definition: &'a ChaincodeDefinition,
    /// Collections this *peer* stores plaintext for.
    peer_memberships: &'a HashSet<CollectionName>,
    function: String,
    args: Vec<Vec<u8>>,
    transient: BTreeMap<String, Vec<u8>>,
    creator: Identity,
    public_rwset: KvRwSet,
    metadata_writes: Vec<MetadataWrite>,
    pvt_rwsets: BTreeMap<CollectionName, KvRwSet>,
    event: Option<ChaincodeEvent>,
    /// Traced shim calls; `None` (the default) disables recording so the
    /// endorsement hot path pays nothing.
    op_log: Option<Vec<StubOp>>,
}

impl<'a> ChaincodeStub<'a> {
    /// Builds a stub for one proposal against a peer's snapshot.
    pub fn new(
        state: &'a WorldState,
        definition: &'a ChaincodeDefinition,
        peer_memberships: &'a HashSet<CollectionName>,
        proposal: &Proposal,
    ) -> Self {
        ChaincodeStub {
            state,
            history: None,
            definition,
            peer_memberships,
            function: proposal.function.clone(),
            args: proposal.args.clone(),
            transient: proposal.transient.clone(),
            creator: proposal.creator.clone(),
            public_rwset: KvRwSet::new(),
            metadata_writes: Vec::new(),
            pvt_rwsets: BTreeMap::new(),
            event: None,
            op_log: None,
        }
    }

    /// Turns on shim-call tracing: every subsequent data operation is
    /// recorded as a [`StubOp`], retrievable via
    /// [`into_results_and_ops`](Self::into_results_and_ops). Used by the
    /// `fabric-flow` taint analyzer; normal endorsement leaves this off.
    pub fn enable_op_log(&mut self) {
        self.op_log = Some(Vec::new());
    }

    fn record(&mut self, op: impl FnOnce() -> StubOp) {
        if let Some(log) = &mut self.op_log {
            log.push(op());
        }
    }

    /// Builds a stub that can also serve history queries
    /// (`GetHistoryForKey`).
    pub fn with_history(
        state: &'a WorldState,
        history: &'a HistoryDb,
        definition: &'a ChaincodeDefinition,
        peer_memberships: &'a HashSet<CollectionName>,
        proposal: &Proposal,
    ) -> Self {
        let mut stub = Self::new(state, definition, peer_memberships, proposal);
        stub.history = Some(history);
        stub
    }

    /// The invoked function name.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// The invocation arguments.
    pub fn args(&self) -> &[Vec<u8>] {
        &self.args
    }

    /// Argument `i` as UTF-8.
    ///
    /// # Errors
    ///
    /// [`ChaincodeError::InvalidArguments`] when absent or not UTF-8.
    pub fn arg_str(&self, i: usize) -> Result<String, ChaincodeError> {
        let bytes = self
            .args
            .get(i)
            .ok_or_else(|| ChaincodeError::InvalidArguments(format!("missing argument {i}")))?;
        String::from_utf8(bytes.clone())
            .map_err(|_| ChaincodeError::InvalidArguments(format!("argument {i} is not utf-8")))
    }

    /// A transient-map entry (private values travel here, not in args).
    pub fn transient(&self, key: &str) -> Option<&[u8]> {
        self.transient.get(key).map(Vec::as_slice)
    }

    /// The proposing client's identity.
    pub fn creator(&self) -> &Identity {
        &self.creator
    }

    /// The chaincode definition (collection configs etc.).
    pub fn definition(&self) -> &ChaincodeDefinition {
        self.definition
    }

    /// Whether this peer stores plaintext for `collection`.
    pub fn peer_is_member(&self, collection: &CollectionName) -> bool {
        self.peer_memberships.contains(collection)
    }

    // ---- public data ----

    /// Reads a public key, recording `(key, version)` in the read set.
    pub fn get_state(&mut self, key: &str) -> Option<Vec<u8>> {
        let entry = self.state.get_public(&self.definition.id, key);
        self.public_rwset.reads.push(KvRead {
            key: key.to_string(),
            version: entry.map(|e| e.version),
        });
        let value = entry.map(|e| e.value.clone());
        self.record(|| StubOp::GetState {
            key: key.to_string(),
            value: value.clone(),
        });
        value
    }

    /// Stages a public write.
    pub fn put_state(&mut self, key: &str, value: Vec<u8>) {
        self.record(|| StubOp::PutState {
            key: key.to_string(),
            value: value.clone(),
        });
        self.public_rwset.writes.push(KvWrite {
            key: key.to_string(),
            value: Some(value),
            is_delete: false,
        });
    }

    /// Stages a public delete (a write with `is_delete = true` and a null
    /// value, per Table I).
    pub fn del_state(&mut self, key: &str) {
        self.record(|| StubOp::DelState {
            key: key.to_string(),
        });
        self.public_rwset.writes.push(KvWrite {
            key: key.to_string(),
            value: None,
            is_delete: true,
        });
    }

    /// Reads public keys in `[start, end)` in key order
    /// (`GetStateByRange`), recording a read-set entry for every returned
    /// key.
    ///
    /// Note: like this simulator's MVCC check, only *returned* keys are
    /// version-protected; phantom inserts into the range between
    /// endorsement and commit are not detected (Fabric closes this with
    /// range-query info records — a known sharp edge of chaincode range
    /// queries, cf. Yamashita et al., cited in the paper's related work).
    pub fn get_state_by_range(&mut self, start: &str, end: &str) -> Vec<(String, Vec<u8>)> {
        let hits: Vec<(String, Vec<u8>, fabric_types::Version)> = self
            .state
            .public_range(&self.definition.id)
            .filter(|(k, _)| *k >= start && (end.is_empty() || *k < end))
            .map(|(k, v)| (k.to_string(), v.value.clone(), v.version))
            .collect();
        let mut out = Vec::with_capacity(hits.len());
        for (key, value, version) in hits {
            self.public_rwset.reads.push(KvRead {
                key: key.clone(),
                version: Some(version),
            });
            out.push((key, value));
        }
        self.record(|| StubOp::RangeScan {
            start: start.to_string(),
            end: end.to_string(),
            returned: out.len(),
        });
        out
    }

    /// Builds a composite key `\u{0}objectType\u{0}attr1\u{0}attr2...`
    /// (`CreateCompositeKey`). Composite keys live in a reserved range that
    /// plain keys cannot collide with, enabling secondary indexes.
    ///
    /// # Errors
    ///
    /// [`ChaincodeError::InvalidArguments`] when the object type or an
    /// attribute is empty or contains the `\u{0}` delimiter.
    pub fn create_composite_key(
        &self,
        object_type: &str,
        attributes: &[&str],
    ) -> Result<String, ChaincodeError> {
        let mut key = String::from(COMPOSITE_DELIMITER);
        for part in std::iter::once(object_type).chain(attributes.iter().copied()) {
            if part.is_empty() || part.contains(COMPOSITE_DELIMITER) {
                return Err(ChaincodeError::InvalidArguments(format!(
                    "invalid composite key component {part:?}"
                )));
            }
            key.push_str(part);
            key.push(COMPOSITE_DELIMITER);
        }
        Ok(key)
    }

    /// Splits a composite key back into `(object_type, attributes)`.
    /// Returns `None` for keys not produced by
    /// [`create_composite_key`](Self::create_composite_key).
    pub fn split_composite_key(&self, key: &str) -> Option<(String, Vec<String>)> {
        let rest = key.strip_prefix(COMPOSITE_DELIMITER)?;
        let mut parts = rest.split(COMPOSITE_DELIMITER);
        let object_type = parts.next()?.to_string();
        if object_type.is_empty() {
            return None;
        }
        let mut attributes: Vec<String> = parts.map(str::to_string).collect();
        // The trailing delimiter yields one empty tail element.
        if attributes.pop() != Some(String::new()) {
            return None;
        }
        Some((object_type, attributes))
    }

    /// Range-scans all composite keys matching `object_type` and the given
    /// attribute prefix (`GetStateByPartialCompositeKey`), recording reads.
    ///
    /// # Errors
    ///
    /// Propagates [`create_composite_key`](Self::create_composite_key)
    /// validation errors.
    pub fn get_state_by_partial_composite_key(
        &mut self,
        object_type: &str,
        attributes: &[&str],
    ) -> Result<Vec<(String, Vec<u8>)>, ChaincodeError> {
        let prefix = self.create_composite_key(object_type, attributes)?;
        // The prefix ends with the delimiter; every extension sorts within
        // [prefix, prefix + MAX).
        let end = format!("{prefix}\u{10FFFF}");
        Ok(self.get_state_by_range(&prefix, &end))
    }

    /// The committed write history of a public key (`GetHistoryForKey`),
    /// oldest first. Empty when the stub was built without history access
    /// or the key has never been written.
    pub fn get_history_for_key(&self, key: &str) -> Vec<HistoryEntry> {
        self.history
            .map(|h| h.key_history(&self.definition.id, key).to_vec())
            .unwrap_or_default()
    }

    /// Sets the chaincode event for this invocation (`SetEvent`). Like
    /// Fabric, one event per transaction: a later call replaces an earlier
    /// one. The event commits with the transaction and is delivered to
    /// listeners only if the transaction validates.
    pub fn set_event(&mut self, name: &str, payload: Vec<u8>) {
        self.record(|| StubOp::SetEvent {
            name: name.to_string(),
            payload: payload.clone(),
        });
        self.event = Some(ChaincodeEvent {
            name: name.to_string(),
            payload,
        });
    }

    // ---- state-based endorsement (key-level policies) ----

    /// Stages a key-level endorsement policy for a public key
    /// (`SetStateValidationParameter`). Once committed, writes to the key
    /// are validated against this policy *instead of* the chaincode-level
    /// policy — but PDC/key-level policies never govern read-only
    /// transactions, per the `validator_keylevel.go` behaviour the paper's
    /// Use Case 2 builds on.
    pub fn set_state_validation_parameter(&mut self, key: &str, policy: &str) {
        self.metadata_writes.push(MetadataWrite {
            key: key.to_string(),
            validation_parameter: Some(policy.to_string()),
        });
    }

    /// Stages removal of a key-level endorsement policy.
    pub fn delete_state_validation_parameter(&mut self, key: &str) {
        self.metadata_writes.push(MetadataWrite {
            key: key.to_string(),
            validation_parameter: None,
        });
    }

    /// Reads the committed key-level endorsement policy of a public key
    /// (`GetStateValidationParameter`).
    pub fn get_state_validation_parameter(&self, key: &str) -> Option<String> {
        self.state
            .get_validation_parameter(&self.definition.id, key)
            .map(str::to_string)
    }

    // ---- private data ----

    /// Reads plaintext private data (`GetPrivateData`).
    ///
    /// Records `(key, version)` in the collection's read set on success.
    ///
    /// # Errors
    ///
    /// * [`ChaincodeError::PrivateDataUnavailable`] when this peer is not a
    ///   member of the collection — the error a non-member endorser hits on
    ///   read proposals (§III-B2);
    /// * [`ChaincodeError::MemberOnlyRead`] when the collection restricts
    ///   reads to member orgs and the client is from a non-member org.
    pub fn get_private_data(
        &mut self,
        collection: &CollectionName,
        key: &str,
    ) -> Result<Option<Vec<u8>>, ChaincodeError> {
        if !self.peer_is_member(collection) {
            return Err(ChaincodeError::PrivateDataUnavailable {
                collection: collection.clone(),
                key: key.to_string(),
            });
        }
        if let Some(cfg) = self.definition.collection(collection) {
            if cfg.member_only_read && !self.definition.org_is_member(&self.creator.org, collection)
            {
                return Err(ChaincodeError::MemberOnlyRead {
                    collection: collection.clone(),
                });
            }
        }
        let entry = self.state.get_private(&self.definition.id, collection, key);
        self.pvt_rwsets
            .entry(collection.clone())
            .or_default()
            .reads
            .push(KvRead {
                key: key.to_string(),
                version: entry.map(|e| e.version),
            });
        let value = entry.map(|e| e.value.clone());
        self.record(|| StubOp::GetPrivateData {
            collection: collection.clone(),
            key: key.to_string(),
            value: value.clone(),
        });
        Ok(value)
    }

    /// Reads the hash of private data (`GetPrivateDataHash`).
    ///
    /// Available at **all** peers in the channel — the hashed store is
    /// replicated everywhere — and it records the *same* `(key, version)`
    /// read entry that `get_private_data` would. A malicious non-member
    /// endorser uses this to fabricate read endorsements with a valid
    /// version (the paper's Endorsement Forgery).
    pub fn get_private_data_hash(
        &mut self,
        collection: &CollectionName,
        key: &str,
    ) -> Option<Hash256> {
        let entry = self
            .state
            .get_private_hash(&self.definition.id, collection, key);
        self.pvt_rwsets
            .entry(collection.clone())
            .or_default()
            .reads
            .push(KvRead {
                key: key.to_string(),
                version: entry.map(|(_, v)| v),
            });
        self.record(|| StubOp::GetPrivateDataHash {
            collection: collection.clone(),
            key: key.to_string(),
            found: entry.is_some(),
        });
        entry.map(|(h, _)| h)
    }

    /// Stages a private write (`PutPrivateData`). Works at any peer: a
    /// write-only result needs no state, so non-members endorse it without
    /// errors (Use Case 1).
    pub fn put_private_data(&mut self, collection: &CollectionName, key: &str, value: Vec<u8>) {
        self.record(|| StubOp::PutPrivateData {
            collection: collection.clone(),
            key: key.to_string(),
            value: value.clone(),
        });
        self.pvt_rwsets
            .entry(collection.clone())
            .or_default()
            .writes
            .push(KvWrite {
                key: key.to_string(),
                value: Some(value),
                is_delete: false,
            });
    }

    /// Stages a private delete (`DelPrivateData`) — like a write, endorsable
    /// by non-members (§IV-A4).
    pub fn del_private_data(&mut self, collection: &CollectionName, key: &str) {
        self.record(|| StubOp::DelPrivateData {
            collection: collection.clone(),
            key: key.to_string(),
        });
        self.pvt_rwsets
            .entry(collection.clone())
            .or_default()
            .writes
            .push(KvWrite {
                key: key.to_string(),
                value: None,
                is_delete: true,
            });
    }

    /// Finishes the simulation, yielding the accumulated rwsets.
    pub fn into_results(self) -> SimulationResult {
        self.into_results_and_ops().0
    }

    /// Finishes a traced simulation, yielding the rwsets plus the shim-call
    /// log (empty unless [`enable_op_log`](Self::enable_op_log) was called).
    pub fn into_results_and_ops(self) -> (SimulationResult, Vec<StubOp>) {
        let results = SimulationResult {
            public: self.public_rwset,
            metadata_writes: self.metadata_writes,
            event: self.event,
            collections: self
                .pvt_rwsets
                .into_iter()
                .map(|(collection, rwset)| CollectionPvtRwSet { collection, rwset })
                .collect(),
        };
        (results, self.op_log.unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::{sha256, Keypair};
    use fabric_types::{CollectionConfig, OrgId, Role, TxKind, Version};

    fn setup() -> (WorldState, ChaincodeDefinition) {
        let mut ws = WorldState::new();
        let def = ChaincodeDefinition::new("cc").with_collection(CollectionConfig::membership_of(
            "PDC1",
            &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")],
        ));
        ws.put_public(&def.id, "pub1", b"v".to_vec(), Version::new(1, 0));
        ws.put_private(
            &def.id,
            &CollectionName::new("PDC1"),
            "k1",
            b"secret".to_vec(),
            Version::new(2, 0),
        );
        (ws, def)
    }

    fn proposal(function: &str, org: &str) -> Proposal {
        let kp = Keypair::generate_from_seed(77);
        Proposal::new(
            "ch1",
            "cc",
            function,
            vec![],
            BTreeMap::new(),
            Identity::new(org, Role::Client, kp.public_key()),
            1,
        )
    }

    fn member_set() -> HashSet<CollectionName> {
        [CollectionName::new("PDC1")].into_iter().collect()
    }

    #[test]
    fn public_reads_record_versions() {
        let (ws, def) = setup();
        let members = member_set();
        let prop = proposal("f", "Org1MSP");
        let mut stub = ChaincodeStub::new(&ws, &def, &members, &prop);
        assert_eq!(stub.get_state("pub1"), Some(b"v".to_vec()));
        assert_eq!(stub.get_state("missing"), None);
        let results = stub.into_results();
        assert_eq!(results.public.reads.len(), 2);
        assert_eq!(results.public.reads[0].version, Some(Version::new(1, 0)));
        assert_eq!(results.public.reads[1].version, None);
        assert_eq!(results.public.kind(), TxKind::ReadOnly);
    }

    #[test]
    fn member_peer_reads_private_data() {
        let (ws, def) = setup();
        let members = member_set();
        let prop = proposal("f", "Org1MSP");
        let mut stub = ChaincodeStub::new(&ws, &def, &members, &prop);
        let v = stub
            .get_private_data(&CollectionName::new("PDC1"), "k1")
            .unwrap();
        assert_eq!(v, Some(b"secret".to_vec()));
        let results = stub.into_results();
        assert_eq!(results.collections.len(), 1);
        assert_eq!(
            results.collections[0].rwset.reads[0].version,
            Some(Version::new(2, 0))
        );
    }

    #[test]
    fn non_member_peer_errors_on_private_read() {
        let (ws, def) = setup();
        let no_memberships = HashSet::new();
        let prop = proposal("f", "Org1MSP");
        let mut stub = ChaincodeStub::new(&ws, &def, &no_memberships, &prop);
        let err = stub
            .get_private_data(&CollectionName::new("PDC1"), "k1")
            .unwrap_err();
        assert!(matches!(err, ChaincodeError::PrivateDataUnavailable { .. }));
    }

    #[test]
    fn get_private_data_hash_works_at_non_members_with_correct_version() {
        // The attack precondition: a non-member obtains hash AND version.
        let (_, def) = setup();
        // Model the non-member's state: hashed entries only.
        let ws = {
            let mut nm = WorldState::new();
            nm.put_private_hash(
                &def.id,
                &CollectionName::new("PDC1"),
                sha256(b"k1"),
                sha256(b"secret"),
                Version::new(2, 0),
            );
            nm
        };
        let no_memberships = HashSet::new();
        let prop = proposal("f", "Org3MSP");
        let mut stub = ChaincodeStub::new(&ws, &def, &no_memberships, &prop);
        let h = stub.get_private_data_hash(&CollectionName::new("PDC1"), "k1");
        assert_eq!(h, Some(sha256(b"secret")));
        let results = stub.into_results();
        // Identical read-set entry to what a member endorser records.
        assert_eq!(
            results.collections[0].rwset.reads[0],
            KvRead {
                key: "k1".into(),
                version: Some(Version::new(2, 0)),
            }
        );
    }

    #[test]
    fn non_member_peer_endorses_private_writes_without_error() {
        // Use Case 1: write-only needs no state.
        let (ws, def) = setup();
        let no_memberships = HashSet::new();
        let prop = proposal("f", "Org3MSP");
        let mut stub = ChaincodeStub::new(&ws, &def, &no_memberships, &prop);
        stub.put_private_data(&CollectionName::new("PDC1"), "k1", b"forged".to_vec());
        let results = stub.into_results();
        assert_eq!(results.collections[0].rwset.kind(), TxKind::WriteOnly);
    }

    #[test]
    fn delete_records_null_value() {
        let (ws, def) = setup();
        let members = member_set();
        let prop = proposal("f", "Org1MSP");
        let mut stub = ChaincodeStub::new(&ws, &def, &members, &prop);
        stub.del_private_data(&CollectionName::new("PDC1"), "k1");
        let results = stub.into_results();
        let w = &results.collections[0].rwset.writes[0];
        assert!(w.is_delete);
        assert_eq!(w.value, None);
        assert_eq!(results.collections[0].rwset.kind(), TxKind::DeleteOnly);
    }

    #[test]
    fn member_only_read_blocks_non_member_clients() {
        let (ws, def) = setup();
        let members = member_set();
        // Client from Org3 (non-member); the collection is memberOnlyRead.
        let prop = proposal("f", "Org3MSP");
        let mut stub = ChaincodeStub::new(&ws, &def, &members, &prop);
        let err = stub
            .get_private_data(&CollectionName::new("PDC1"), "k1")
            .unwrap_err();
        assert!(matches!(err, ChaincodeError::MemberOnlyRead { .. }));
    }

    #[test]
    fn op_log_is_off_by_default() {
        let (ws, def) = setup();
        let members = member_set();
        let prop = proposal("f", "Org1MSP");
        let mut stub = ChaincodeStub::new(&ws, &def, &members, &prop);
        stub.get_state("pub1");
        stub.put_state("out", b"x".to_vec());
        let (_, ops) = stub.into_results_and_ops();
        assert!(ops.is_empty());
    }

    #[test]
    fn op_log_records_shim_calls_in_order() {
        let (ws, def) = setup();
        let members = member_set();
        let prop = proposal("f", "Org1MSP");
        let mut stub = ChaincodeStub::new(&ws, &def, &members, &prop);
        stub.enable_op_log();
        stub.get_state("pub1");
        stub.get_private_data(&CollectionName::new("PDC1"), "k1")
            .unwrap();
        stub.put_state("out", b"copied".to_vec());
        stub.set_event("evt", b"payload".to_vec());
        stub.del_private_data(&CollectionName::new("PDC1"), "k1");
        let (_, ops) = stub.into_results_and_ops();
        assert_eq!(ops.len(), 5);
        assert_eq!(
            ops[0],
            StubOp::GetState {
                key: "pub1".into(),
                value: Some(b"v".to_vec()),
            }
        );
        assert_eq!(ops[1].carried(), Some(b"secret".as_slice()));
        assert_eq!(ops[2].to_string(), "PutState(\"out\")");
        assert_eq!(ops[3].to_string(), "SetEvent(\"evt\")");
        assert_eq!(ops[4].carried(), None);
        // Display never renders carried values (determinism of rendered
        // flow paths for nondeterministic chaincode depends on this).
        for op in &ops {
            assert!(!op.to_string().contains("secret"));
            assert!(!op.to_string().contains("copied"));
        }
    }

    #[test]
    fn failed_private_reads_are_not_recorded() {
        let (ws, def) = setup();
        let no_memberships = HashSet::new();
        let prop = proposal("f", "Org1MSP");
        let mut stub = ChaincodeStub::new(&ws, &def, &no_memberships, &prop);
        stub.enable_op_log();
        stub.get_private_data(&CollectionName::new("PDC1"), "k1")
            .unwrap_err();
        let (_, ops) = stub.into_results_and_ops();
        assert!(ops.is_empty());
    }

    #[test]
    fn transient_and_args_accessors() {
        let (ws, def) = setup();
        let members = member_set();
        let kp = Keypair::generate_from_seed(9);
        let mut transient = BTreeMap::new();
        transient.insert("secret".to_string(), b"hidden".to_vec());
        let prop = Proposal::new(
            "ch1",
            "cc",
            "f",
            vec![b"arg0".to_vec()],
            transient,
            Identity::new("Org1MSP", Role::Client, kp.public_key()),
            1,
        );
        let stub = ChaincodeStub::new(&ws, &def, &members, &prop);
        assert_eq!(stub.arg_str(0).unwrap(), "arg0");
        assert!(stub.arg_str(1).is_err());
        assert_eq!(stub.transient("secret"), Some(b"hidden".as_slice()));
        assert_eq!(stub.transient("nope"), None);
        assert_eq!(stub.function(), "f");
    }
}
