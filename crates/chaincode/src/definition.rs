//! The channel-agreed chaincode definition.

use fabric_policy::SignaturePolicy;
use fabric_types::{ChaincodeId, CollectionConfig, CollectionName, OrgId};

/// What the channel agreed on when the chaincode was committed: its name,
/// chaincode-level endorsement policy, and collection configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaincodeDefinition {
    /// Chaincode name (also the rwset namespace).
    pub id: ChaincodeId,
    /// Chaincode-level endorsement policy expression. Defaults to the
    /// channel's implicitMeta `MAJORITY Endorsement` when projects don't
    /// override it — 116 of 120 GitHub configs do exactly that (§V-C2).
    pub endorsement_policy: String,
    /// Private data collections defined for this chaincode.
    pub collections: Vec<CollectionConfig>,
}

impl ChaincodeDefinition {
    /// Creates a definition with the Fabric default chaincode-level policy
    /// (`MAJORITY Endorsement`) and no collections.
    pub fn new(id: impl Into<ChaincodeId>) -> Self {
        ChaincodeDefinition {
            id: id.into(),
            endorsement_policy: "MAJORITY Endorsement".to_string(),
            collections: Vec::new(),
        }
    }

    /// Overrides the chaincode-level endorsement policy.
    pub fn with_endorsement_policy(mut self, policy: impl Into<String>) -> Self {
        self.endorsement_policy = policy.into();
        self
    }

    /// Adds a private data collection.
    pub fn with_collection(mut self, collection: CollectionConfig) -> Self {
        self.collections.push(collection);
        self
    }

    /// Looks up a collection config by name.
    pub fn collection(&self, name: &CollectionName) -> Option<&CollectionConfig> {
        self.collections.iter().find(|c| &c.name == name)
    }

    /// Whether `org` is a member of `collection`, per the collection's
    /// membership policy (an org is a member iff it appears in the policy —
    /// membership policies are OR-of-members in practice).
    ///
    /// Returns `false` for unknown collections or unparsable policies.
    pub fn org_is_member(&self, org: &OrgId, collection: &CollectionName) -> bool {
        let Some(cfg) = self.collection(collection) else {
            return false;
        };
        match SignaturePolicy::parse(&cfg.member_policy) {
            Ok(policy) => policy.organizations().contains(org),
            Err(_) => false,
        }
    }

    /// The collections `org` is a member of.
    pub fn memberships_of(&self, org: &OrgId) -> Vec<CollectionName> {
        self.collections
            .iter()
            .filter(|c| self.org_is_member(org, &c.name))
            .map(|c| c.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn definition() -> ChaincodeDefinition {
        ChaincodeDefinition::new("cc").with_collection(CollectionConfig::membership_of(
            "PDC1",
            &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")],
        ))
    }

    #[test]
    fn default_policy_is_majority_endorsement() {
        assert_eq!(
            ChaincodeDefinition::new("cc").endorsement_policy,
            "MAJORITY Endorsement"
        );
    }

    #[test]
    fn membership_follows_collection_policy() {
        let def = definition();
        let pdc1 = CollectionName::new("PDC1");
        assert!(def.org_is_member(&OrgId::new("Org1MSP"), &pdc1));
        assert!(def.org_is_member(&OrgId::new("Org2MSP"), &pdc1));
        assert!(!def.org_is_member(&OrgId::new("Org3MSP"), &pdc1));
        assert!(!def.org_is_member(&OrgId::new("Org1MSP"), &CollectionName::new("nope")));
    }

    #[test]
    fn memberships_of_lists_collections() {
        let def = definition();
        assert_eq!(
            def.memberships_of(&OrgId::new("Org1MSP")),
            vec![CollectionName::new("PDC1")]
        );
        assert!(def.memberships_of(&OrgId::new("Org3MSP")).is_empty());
    }
}
