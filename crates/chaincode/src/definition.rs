//! The channel-agreed chaincode definition.

use fabric_policy::{Policy, SignaturePolicy};
use fabric_types::{ChaincodeId, CollectionConfig, CollectionName, OrgId};
use std::collections::{BTreeSet, HashMap};

/// What the channel agreed on when the chaincode was committed: its name,
/// chaincode-level endorsement policy, and collection configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaincodeDefinition {
    /// Chaincode name (also the rwset namespace).
    pub id: ChaincodeId,
    /// Chaincode-level endorsement policy expression. Defaults to the
    /// channel's implicitMeta `MAJORITY Endorsement` when projects don't
    /// override it — 116 of 120 GitHub configs do exactly that (§V-C2).
    pub endorsement_policy: String,
    /// Private data collections defined for this chaincode.
    pub collections: Vec<CollectionConfig>,
}

impl ChaincodeDefinition {
    /// Creates a definition with the Fabric default chaincode-level policy
    /// (`MAJORITY Endorsement`) and no collections.
    pub fn new(id: impl Into<ChaincodeId>) -> Self {
        ChaincodeDefinition {
            id: id.into(),
            endorsement_policy: "MAJORITY Endorsement".to_string(),
            collections: Vec::new(),
        }
    }

    /// Overrides the chaincode-level endorsement policy.
    pub fn with_endorsement_policy(mut self, policy: impl Into<String>) -> Self {
        self.endorsement_policy = policy.into();
        self
    }

    /// Adds a private data collection.
    pub fn with_collection(mut self, collection: CollectionConfig) -> Self {
        self.collections.push(collection);
        self
    }

    /// Looks up a collection config by name.
    pub fn collection(&self, name: &CollectionName) -> Option<&CollectionConfig> {
        self.collections.iter().find(|c| &c.name == name)
    }

    /// Whether `org` is a member of `collection`, per the collection's
    /// membership policy (an org is a member iff it appears in the policy —
    /// membership policies are OR-of-members in practice).
    ///
    /// Returns `false` for unknown collections or unparsable policies.
    pub fn org_is_member(&self, org: &OrgId, collection: &CollectionName) -> bool {
        let Some(cfg) = self.collection(collection) else {
            return false;
        };
        match SignaturePolicy::parse(&cfg.member_policy) {
            Ok(policy) => policy.organizations().contains(org),
            Err(_) => false,
        }
    }

    /// The collections `org` is a member of.
    pub fn memberships_of(&self, org: &OrgId) -> Vec<CollectionName> {
        self.collections
            .iter()
            .filter(|c| self.org_is_member(org, &c.name))
            .map(|c| c.name.clone())
            .collect()
    }

    /// Parses every policy in the definition once, producing the
    /// evaluation-ready [`CompiledPolicies`] the committing peer's hot path
    /// uses instead of re-parsing expressions per transaction.
    pub fn compile(&self) -> CompiledPolicies {
        let endorsement = Policy::parse(&self.endorsement_policy).ok();
        let mut collection_endorsement = HashMap::new();
        let mut members = HashMap::new();
        for cfg in &self.collections {
            if let Some(expr) = &cfg.endorsement_policy {
                collection_endorsement.insert(cfg.name.clone(), SignaturePolicy::parse(expr).ok());
            }
            let orgs: BTreeSet<OrgId> = match SignaturePolicy::parse(&cfg.member_policy) {
                Ok(policy) => policy.organizations().into_iter().collect(),
                Err(_) => BTreeSet::new(),
            };
            members.insert(cfg.name.clone(), orgs);
        }
        CompiledPolicies {
            endorsement,
            collection_endorsement,
            members,
        }
    }
}

/// Pre-parsed forms of every policy a [`ChaincodeDefinition`] carries,
/// built once at chaincode-definition (install) time.
///
/// Unparsable expressions compile to `None`; callers surface the failure
/// (as `BAD_PAYLOAD`, matching a fresh parse) only when the policy is
/// actually needed, preserving the lazily-erroring semantics of parsing on
/// use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPolicies {
    endorsement: Option<Policy>,
    /// Only collections that define an endorsement policy appear here.
    collection_endorsement: HashMap<CollectionName, Option<SignaturePolicy>>,
    /// Member organizations per collection, from the membership policy.
    members: HashMap<CollectionName, BTreeSet<OrgId>>,
}

impl CompiledPolicies {
    /// The compiled chaincode-level endorsement policy; `None` when the
    /// expression does not parse.
    pub fn endorsement(&self) -> Option<&Policy> {
        self.endorsement.as_ref()
    }

    /// The compiled collection-level endorsement policy: outer `None` when
    /// the collection defines no policy, inner `None` when the defined
    /// expression does not parse.
    pub fn collection_endorsement(
        &self,
        collection: &CollectionName,
    ) -> Option<Option<&SignaturePolicy>> {
        self.collection_endorsement
            .get(collection)
            .map(|p| p.as_ref())
    }

    /// Whether `org` is a member of `collection` (compiled form of
    /// [`ChaincodeDefinition::org_is_member`]).
    pub fn org_is_member(&self, org: &OrgId, collection: &CollectionName) -> bool {
        self.members
            .get(collection)
            .is_some_and(|orgs| orgs.contains(org))
    }

    /// The member organizations of `collection`, when its membership
    /// policy names any. Lets hot paths resolve the set once and test
    /// many orgs against it.
    pub fn members(&self, collection: &CollectionName) -> Option<&BTreeSet<OrgId>> {
        self.members.get(collection)
    }

    /// The collections `org` is a member of, in definition-independent
    /// (sorted-name) order.
    pub fn memberships_of(&self, org: &OrgId) -> Vec<CollectionName> {
        let mut names: Vec<CollectionName> = self
            .members
            .iter()
            .filter(|(_, orgs)| orgs.contains(org))
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn definition() -> ChaincodeDefinition {
        ChaincodeDefinition::new("cc").with_collection(CollectionConfig::membership_of(
            "PDC1",
            &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")],
        ))
    }

    #[test]
    fn default_policy_is_majority_endorsement() {
        assert_eq!(
            ChaincodeDefinition::new("cc").endorsement_policy,
            "MAJORITY Endorsement"
        );
    }

    #[test]
    fn membership_follows_collection_policy() {
        let def = definition();
        let pdc1 = CollectionName::new("PDC1");
        assert!(def.org_is_member(&OrgId::new("Org1MSP"), &pdc1));
        assert!(def.org_is_member(&OrgId::new("Org2MSP"), &pdc1));
        assert!(!def.org_is_member(&OrgId::new("Org3MSP"), &pdc1));
        assert!(!def.org_is_member(&OrgId::new("Org1MSP"), &CollectionName::new("nope")));
    }

    #[test]
    fn compiled_policies_match_parse_on_use() {
        let def = definition().with_endorsement_policy("MAJORITY Endorsement");
        let compiled = def.compile();
        assert!(compiled.endorsement().is_some());
        let pdc1 = CollectionName::new("PDC1");
        // No collection-level endorsement policy defined.
        assert!(compiled.collection_endorsement(&pdc1).is_none());
        assert!(compiled.org_is_member(&OrgId::new("Org1MSP"), &pdc1));
        assert!(!compiled.org_is_member(&OrgId::new("Org3MSP"), &pdc1));
        assert_eq!(
            compiled.memberships_of(&OrgId::new("Org2MSP")),
            def.memberships_of(&OrgId::new("Org2MSP"))
        );
    }

    #[test]
    fn compiled_policies_keep_unparsable_expressions_lazy() {
        let def = ChaincodeDefinition::new("cc").with_endorsement_policy("not a policy");
        let compiled = def.compile();
        assert!(compiled.endorsement().is_none());
    }

    #[test]
    fn memberships_of_lists_collections() {
        let def = definition();
        assert_eq!(
            def.memberships_of(&OrgId::new("Org1MSP")),
            vec![CollectionName::new("PDC1")]
        );
        assert!(def.memberships_of(&OrgId::new("Org3MSP")).is_empty());
    }
}
