//! Chaincode shim API, transaction simulator and sample chaincodes.
//!
//! Chaincode ("smart contract") is the business logic peers execute during
//! the endorsement phase. This crate provides:
//!
//! * [`Chaincode`] — the trait chaincode implementations write against,
//!   equivalent to Fabric's shim interface;
//! * [`ChaincodeStub`] — the simulator handed to chaincode: it resolves
//!   reads against the peer's world-state snapshot and accumulates the
//!   read/write sets, with exactly the PDC semantics the paper analyzes
//!   (`GetPrivateData` fails at non-member peers, **`GetPrivateDataHash`
//!   works everywhere** and records the correct version — §IV-A1);
//! * [`ChaincodeDefinition`] — the channel-agreed chaincode configuration:
//!   chaincode-level endorsement policy plus collection configs;
//! * [`samples`] — runnable chaincodes, including the paper's two
//!   vulnerable GitHub listings and the guarded-update chaincode used in
//!   its attack experiments (§V-A/§V-B).
//!
//! Because Fabric chaincode is *customizable per organization* (it only
//! has to produce equal results to endorse honestly), peers host their own
//! [`Chaincode`] instances — malicious orgs exploit this by installing
//! colluding variants, which the attack crate does.

mod definition;
mod error;
mod stub;

pub mod samples;

pub use definition::{ChaincodeDefinition, CompiledPolicies};
pub use error::ChaincodeError;
pub use stub::{ChaincodeStub, SimulationResult, StubOp};

use std::sync::Arc;

/// The chaincode interface: one entry point dispatched by function name
/// via [`ChaincodeStub::function`].
///
/// Returns the response payload on success (what lands in the `payload`
/// field of the proposal response — in plaintext, per Use Case 3).
pub trait Chaincode: Send + Sync {
    /// Executes one invocation against the stub.
    ///
    /// # Errors
    ///
    /// Implementations return [`ChaincodeError`] for unknown functions, bad
    /// arguments, unavailable private data, or violated business rules; the
    /// endorsing peer converts errors into a 500 proposal response.
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError>;
}

impl<F> Chaincode for F
where
    F: Fn(&mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> + Send + Sync,
{
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        self(stub)
    }
}

/// Shared handle to an installed chaincode instance.
pub type ChaincodeHandle = Arc<dyn Chaincode>;
