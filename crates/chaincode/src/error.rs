//! Chaincode execution errors.

use fabric_types::CollectionName;
use std::fmt;

/// Errors a chaincode invocation can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaincodeError {
    /// The function name does not exist in this chaincode.
    FunctionNotFound(String),
    /// Arguments were missing or malformed.
    InvalidArguments(String),
    /// `GetPrivateData` was invoked on a peer that is not a member of the
    /// collection — Fabric reports the key as unavailable because only the
    /// hash lives in a non-member's world state (paper §III-B2).
    PrivateDataUnavailable {
        /// The collection whose plaintext this peer does not hold.
        collection: CollectionName,
        /// The requested key.
        key: String,
    },
    /// `MemberOnlyRead` rejected a read requested by a client of a
    /// non-member organization.
    MemberOnlyRead {
        /// The protected collection.
        collection: CollectionName,
    },
    /// A required key does not exist.
    KeyNotFound {
        /// The collection, `None` for public data.
        collection: Option<CollectionName>,
        /// The missing key.
        key: String,
    },
    /// A business rule encoded in this organization's chaincode variant
    /// rejected the operation (e.g. `k1.value < 15` in §V-A2).
    BusinessRule(String),
}

impl fmt::Display for ChaincodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaincodeError::FunctionNotFound(name) => {
                write!(f, "function {name:?} does not exist")
            }
            ChaincodeError::InvalidArguments(msg) => write!(f, "invalid arguments: {msg}"),
            ChaincodeError::PrivateDataUnavailable { collection, key } => write!(
                f,
                "private data {key:?} of collection {collection} unavailable on this peer"
            ),
            ChaincodeError::MemberOnlyRead { collection } => {
                write!(f, "collection {collection} is memberOnlyRead")
            }
            ChaincodeError::KeyNotFound { collection, key } => match collection {
                Some(c) => write!(f, "key {key:?} not found in collection {c}"),
                None => write!(f, "key {key:?} not found"),
            },
            ChaincodeError::BusinessRule(msg) => write!(f, "business rule violated: {msg}"),
        }
    }
}

impl std::error::Error for ChaincodeError {}
