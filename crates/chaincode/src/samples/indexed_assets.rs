//! An asset registry with a composite-key secondary index
//! (`owner~asset`), demonstrating `CreateCompositeKey` /
//! `GetStateByPartialCompositeKey` — the standard Fabric pattern for
//! querying by attribute without a rich-query database.

use crate::error::ChaincodeError;
use crate::stub::ChaincodeStub;
use crate::Chaincode;

const INDEX: &str = "owner~asset";

/// Functions:
///
/// | function | args | behaviour |
/// |---|---|---|
/// | `register` | id, owner, data | stores the asset + index entry |
/// | `transfer` | id, new-owner | moves the asset and re-indexes it |
/// | `by_owner` | owner | ids of the owner's assets via the index |
/// | `read` | id | the asset record `owner:data` |
#[derive(Debug, Default, Clone, Copy)]
pub struct IndexedAssets;

fn record(owner: &str, data: &str) -> Vec<u8> {
    format!("{owner}:{data}").into_bytes()
}

fn parse_record(bytes: &[u8]) -> Result<(String, String), ChaincodeError> {
    let text = String::from_utf8(bytes.to_vec())
        .map_err(|_| ChaincodeError::InvalidArguments("corrupt record".into()))?;
    let (owner, data) = text
        .split_once(':')
        .ok_or_else(|| ChaincodeError::InvalidArguments("corrupt record".into()))?;
    Ok((owner.to_string(), data.to_string()))
}

impl Chaincode for IndexedAssets {
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        match stub.function() {
            "register" => {
                let id = stub.arg_str(0)?;
                let owner = stub.arg_str(1)?;
                let data = stub.arg_str(2)?;
                if stub.get_state(&id).is_some() {
                    return Err(ChaincodeError::InvalidArguments(format!(
                        "asset {id} already exists"
                    )));
                }
                stub.put_state(&id, record(&owner, &data));
                let index_key = stub.create_composite_key(INDEX, &[&owner, &id])?;
                stub.put_state(&index_key, vec![0]);
                Ok(Vec::new())
            }
            "transfer" => {
                let id = stub.arg_str(0)?;
                let new_owner = stub.arg_str(1)?;
                let bytes = stub.get_state(&id).ok_or(ChaincodeError::KeyNotFound {
                    collection: None,
                    key: id.clone(),
                })?;
                let (old_owner, data) = parse_record(&bytes)?;
                stub.put_state(&id, record(&new_owner, &data));
                let old_index = stub.create_composite_key(INDEX, &[&old_owner, &id])?;
                stub.del_state(&old_index);
                let new_index = stub.create_composite_key(INDEX, &[&new_owner, &id])?;
                stub.put_state(&new_index, vec![0]);
                Ok(old_owner.into_bytes())
            }
            "by_owner" => {
                let owner = stub.arg_str(0)?;
                let hits = stub.get_state_by_partial_composite_key(INDEX, &[&owner])?;
                let mut ids = Vec::new();
                for (key, _) in hits {
                    if let Some((_, attrs)) = stub.split_composite_key(&key) {
                        if let Some(id) = attrs.get(1) {
                            ids.push(id.clone());
                        }
                    }
                }
                Ok(ids.join(",").into_bytes())
            }
            "read" => {
                let id = stub.arg_str(0)?;
                stub.get_state(&id).ok_or(ChaincodeError::KeyNotFound {
                    collection: None,
                    key: id,
                })
            }
            other => Err(ChaincodeError::FunctionNotFound(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::definition::ChaincodeDefinition;
    use fabric_ledger::WorldState;
    use fabric_types::{Identity, Proposal, Role, Version};
    use std::collections::{BTreeMap, HashSet};

    fn invoke(
        ws: &WorldState,
        function: &str,
        args: &[&str],
    ) -> (
        Result<Vec<u8>, ChaincodeError>,
        crate::stub::SimulationResult,
    ) {
        let def = ChaincodeDefinition::new("indexed");
        let memberships = HashSet::new();
        let kp = fabric_crypto::Keypair::generate_from_seed(90);
        let prop = Proposal::new(
            "ch1",
            "indexed",
            function,
            args.iter().map(|a| a.as_bytes().to_vec()).collect(),
            BTreeMap::new(),
            Identity::new("Org1MSP", Role::Client, kp.public_key()),
            1,
        );
        let mut stub = ChaincodeStub::new(ws, &def, &memberships, &prop);
        let out = IndexedAssets.invoke(&mut stub);
        (out, stub.into_results())
    }

    /// Applies an invocation's writes to the state (simulating a commit).
    fn commit(ws: &mut WorldState, function: &str, args: &[&str], height: u64) {
        let (out, results) = invoke(ws, function, args);
        out.expect("invocation succeeds");
        ws.apply_public_writes(&"indexed".into(), &results.public, Version::new(height, 0));
    }

    #[test]
    fn register_creates_record_and_index() {
        let mut ws = WorldState::new();
        commit(&mut ws, "register", &["a1", "alice", "blue"], 1);
        let (out, _) = invoke(&ws, "read", &["a1"]);
        assert_eq!(out.unwrap(), b"alice:blue");
        let (out, _) = invoke(&ws, "by_owner", &["alice"]);
        assert_eq!(out.unwrap(), b"a1");
    }

    #[test]
    fn index_queries_scope_to_one_owner() {
        let mut ws = WorldState::new();
        commit(&mut ws, "register", &["a1", "alice", "x"], 1);
        commit(&mut ws, "register", &["a2", "bob", "y"], 2);
        commit(&mut ws, "register", &["a3", "alice", "z"], 3);
        let (out, _) = invoke(&ws, "by_owner", &["alice"]);
        assert_eq!(out.unwrap(), b"a1,a3");
        let (out, _) = invoke(&ws, "by_owner", &["bob"]);
        assert_eq!(out.unwrap(), b"a2");
        // An owner that is a prefix of another must not match (al / alice).
        let (out, _) = invoke(&ws, "by_owner", &["al"]);
        assert_eq!(out.unwrap(), b"");
    }

    #[test]
    fn transfer_moves_the_index_entry() {
        let mut ws = WorldState::new();
        commit(&mut ws, "register", &["a1", "alice", "x"], 1);
        commit(&mut ws, "transfer", &["a1", "bob"], 2);
        let (out, _) = invoke(&ws, "by_owner", &["alice"]);
        assert_eq!(out.unwrap(), b"");
        let (out, _) = invoke(&ws, "by_owner", &["bob"]);
        assert_eq!(out.unwrap(), b"a1");
        let (out, _) = invoke(&ws, "read", &["a1"]);
        assert_eq!(out.unwrap(), b"bob:x");
    }

    #[test]
    fn composite_keys_never_collide_with_plain_keys() {
        let mut ws = WorldState::new();
        commit(&mut ws, "register", &["owner~asset", "alice", "tricky"], 1);
        // The plain key "owner~asset" and the index object type coexist.
        let (out, _) = invoke(&ws, "read", &["owner~asset"]);
        assert_eq!(out.unwrap(), b"alice:tricky");
        let (out, _) = invoke(&ws, "by_owner", &["alice"]);
        assert_eq!(out.unwrap(), b"owner~asset");
    }

    #[test]
    fn composite_key_component_validation() {
        let ws = WorldState::new();
        let def = ChaincodeDefinition::new("indexed");
        let memberships = HashSet::new();
        let kp = fabric_crypto::Keypair::generate_from_seed(91);
        let prop = Proposal::new(
            "ch1",
            "indexed",
            "read",
            vec![],
            BTreeMap::new(),
            Identity::new("Org1MSP", Role::Client, kp.public_key()),
            1,
        );
        let stub = ChaincodeStub::new(&ws, &def, &memberships, &prop);
        assert!(stub.create_composite_key("t", &["a", "b"]).is_ok());
        assert!(stub.create_composite_key("", &["a"]).is_err());
        assert!(stub.create_composite_key("t", &[""]).is_err());
        assert!(stub.create_composite_key("t", &["a\u{0}b"]).is_err());

        let key = stub.create_composite_key("t", &["a", "b"]).unwrap();
        assert_eq!(
            stub.split_composite_key(&key),
            Some(("t".to_string(), vec!["a".to_string(), "b".to_string()]))
        );
        assert_eq!(stub.split_composite_key("plain"), None);
    }
}
