//! Secured asset trade: the *legitimate* use of `GetPrivateDataHash`,
//! modeled on Fabric's "secured asset transfer" sample.
//!
//! A seller keeps an asset's appraisal private in its own collection and
//! only the SHA-256 lands on-chain. A buyer who received the claimed
//! appraisal off-band verifies it against the on-chain hash — without the
//! value ever entering a block. The exact API that enables this
//! (`GetPrivateDataHash` working at every peer) is what the paper's
//! endorsement forgery abuses; this chaincode is the dual-use contrast.

use crate::error::ChaincodeError;
use crate::stub::ChaincodeStub;
use crate::Chaincode;
use fabric_crypto::sha256;
use fabric_types::CollectionName;

/// Functions:
///
/// | function | args | transient | behaviour |
/// |---|---|---|---|
/// | `offer` | asset-id | `appraisal` | stores the private appraisal |
/// | `verify` | asset-id | `claimed` | compares `sha256(claimed)` to the on-chain hash |
/// | `exists` | asset-id | — | hash-store existence probe |
#[derive(Debug, Clone)]
pub struct SecuredTrade {
    collection: CollectionName,
}

impl SecuredTrade {
    /// Creates the contract over the seller's collection.
    pub fn new(collection: impl Into<CollectionName>) -> Self {
        SecuredTrade {
            collection: collection.into(),
        }
    }
}

impl Chaincode for SecuredTrade {
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        match stub.function() {
            "offer" => {
                let id = stub.arg_str(0)?;
                let appraisal = stub
                    .transient("appraisal")
                    .ok_or_else(|| {
                        ChaincodeError::InvalidArguments(
                            "appraisal must be passed in the transient map".into(),
                        )
                    })?
                    .to_vec();
                stub.put_private_data(&self.collection, &id, appraisal);
                // Returns only the id: nothing private in the payload.
                Ok(id.into_bytes())
            }
            "verify" => {
                let id = stub.arg_str(0)?;
                let claimed = stub
                    .transient("claimed")
                    .ok_or_else(|| {
                        ChaincodeError::InvalidArguments(
                            "claimed value must be passed in the transient map".into(),
                        )
                    })?
                    .to_vec();
                // Any peer — member or not — can serve this: only hashes
                // are compared.
                let on_chain = stub
                    .get_private_data_hash(&self.collection, &id)
                    .ok_or_else(|| ChaincodeError::KeyNotFound {
                        collection: Some(self.collection.clone()),
                        key: id,
                    })?;
                let matches = sha256(&claimed) == on_chain;
                Ok(if matches {
                    b"true".to_vec()
                } else {
                    b"false".to_vec()
                })
            }
            "exists" => {
                let id = stub.arg_str(0)?;
                let exists = stub.get_private_data_hash(&self.collection, &id).is_some();
                Ok(if exists {
                    b"true".to_vec()
                } else {
                    b"false".to_vec()
                })
            }
            other => Err(ChaincodeError::FunctionNotFound(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::definition::ChaincodeDefinition;
    use fabric_ledger::WorldState;
    use fabric_types::{CollectionConfig, Identity, OrgId, Proposal, Role, Version};
    use std::collections::{BTreeMap, HashSet};

    const COL: &str = "sellerCollection";

    fn run(
        member: bool,
        seeded: Option<&[u8]>,
        function: &str,
        args: &[&str],
        transient: &[(&str, &[u8])],
    ) -> Result<Vec<u8>, ChaincodeError> {
        let mut ws = WorldState::new();
        if let Some(value) = seeded {
            if member {
                ws.put_private(
                    &"trade".into(),
                    &CollectionName::new(COL),
                    "asset1",
                    value.to_vec(),
                    Version::new(1, 0),
                );
            } else {
                ws.put_private_hash(
                    &"trade".into(),
                    &CollectionName::new(COL),
                    sha256(b"asset1"),
                    sha256(value),
                    Version::new(1, 0),
                );
            }
        }
        let def = ChaincodeDefinition::new("trade").with_collection(
            CollectionConfig::membership_of(COL, &[OrgId::new("Org1MSP")]),
        );
        let memberships: HashSet<CollectionName> = if member {
            [CollectionName::new(COL)].into_iter().collect()
        } else {
            HashSet::new()
        };
        let kp = fabric_crypto::Keypair::generate_from_seed(55);
        let prop = Proposal::new(
            "ch1",
            "trade",
            function,
            args.iter().map(|a| a.as_bytes().to_vec()).collect(),
            transient
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_vec()))
                .collect::<BTreeMap<_, _>>(),
            Identity::new("Org2MSP", Role::Client, kp.public_key()),
            1,
        );
        let mut stub = ChaincodeStub::new(&ws, &def, &memberships, &prop);
        SecuredTrade::new(COL).invoke(&mut stub)
    }

    #[test]
    fn offer_keeps_appraisal_out_of_payload() {
        let out = run(true, None, "offer", &["asset1"], &[("appraisal", b"9500")]).unwrap();
        assert_eq!(out, b"asset1");
    }

    #[test]
    fn non_member_verifies_truthful_claim() {
        let out = run(
            false,
            Some(b"9500"),
            "verify",
            &["asset1"],
            &[("claimed", b"9500")],
        )
        .unwrap();
        assert_eq!(out, b"true");
    }

    #[test]
    fn non_member_detects_false_claim() {
        let out = run(
            false,
            Some(b"9500"),
            "verify",
            &["asset1"],
            &[("claimed", b"12000")],
        )
        .unwrap();
        assert_eq!(out, b"false");
    }

    #[test]
    fn verify_unknown_asset_errors() {
        let out = run(false, None, "verify", &["asset1"], &[("claimed", b"1")]);
        assert!(matches!(out, Err(ChaincodeError::KeyNotFound { .. })));
    }

    #[test]
    fn exists_probe() {
        assert_eq!(
            run(false, Some(b"x"), "exists", &["asset1"], &[]).unwrap(),
            b"true"
        );
        assert_eq!(
            run(false, None, "exists", &["asset1"], &[]).unwrap(),
            b"false"
        );
    }
}
