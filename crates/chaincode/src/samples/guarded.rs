//! The experiment chaincode of §V-A: private integer values guarded by
//! per-organization business rules.
//!
//! Fabric chaincode is customizable per organization (it need not be
//! byte-identical across peers as long as results agree), so each org
//! deploys a [`GuardedPdc`] configured with its own [`Guard`]s — in the
//! paper, org1 requires `k1.value < 15`, org2 requires `k1.value > 10`,
//! and the PDC non-member org3 installs no constraints at all.

use crate::error::ChaincodeError;
use crate::stub::ChaincodeStub;
use crate::Chaincode;
use fabric_types::CollectionName;

/// A business-rule predicate over an integer value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// No constraint (org3 in the paper's experiments).
    Always,
    /// The value must be strictly less than the bound (org1: `< 15`).
    LessThan(i64),
    /// The value must be strictly greater than the bound (org2: `> 10`).
    GreaterThan(i64),
    /// Reject everything.
    Never,
}

impl Guard {
    /// Evaluates the predicate.
    pub fn allows(&self, value: i64) -> bool {
        match self {
            Guard::Always => true,
            Guard::LessThan(bound) => value < *bound,
            Guard::GreaterThan(bound) => value > *bound,
            Guard::Never => false,
        }
    }

    /// Human-readable rule description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Guard::Always => "no constraint".into(),
            Guard::LessThan(b) => format!("value < {b}"),
            Guard::GreaterThan(b) => format!("value > {b}"),
            Guard::Never => "always rejected".into(),
        }
    }
}

/// The guarded PDC chaincode. Functions (values are ASCII integers):
///
/// | function | args | rwset shape | guard applied |
/// |---|---|---|---|
/// | `read`   | key  | PDC read-only   | none (but leaks via payload) |
/// | `write`  | key, value | PDC write-only | `write_guard` on the new value |
/// | `add`    | key, delta | PDC read-write | `write_guard` on the sum |
/// | `delete` | key  | PDC read+delete | `delete_guard` on the current value |
///
/// `read` returns the private value through the payload — the PDC
/// "auditable read" service of §IV-B1, and the target of the fake-read
/// injection.
#[derive(Debug, Clone)]
pub struct GuardedPdc {
    collection: CollectionName,
    write_guard: Guard,
    delete_guard: Guard,
}

impl GuardedPdc {
    /// Creates an org's variant with its guards.
    pub fn new(
        collection: impl Into<CollectionName>,
        write_guard: Guard,
        delete_guard: Guard,
    ) -> Self {
        GuardedPdc {
            collection: collection.into(),
            write_guard,
            delete_guard,
        }
    }

    /// The unconstrained variant a disinterested non-member org deploys.
    pub fn unconstrained(collection: impl Into<CollectionName>) -> Self {
        Self::new(collection, Guard::Always, Guard::Always)
    }

    /// The collection this chaincode operates on.
    pub fn collection(&self) -> &CollectionName {
        &self.collection
    }

    /// The write guard (used to check world-state outcomes in tests).
    pub fn write_guard(&self) -> Guard {
        self.write_guard
    }

    fn read_int(&self, stub: &mut ChaincodeStub<'_>, key: &str) -> Result<i64, ChaincodeError> {
        let bytes = stub
            .get_private_data(&self.collection, key)?
            .ok_or_else(|| ChaincodeError::KeyNotFound {
                collection: Some(self.collection.clone()),
                key: key.to_string(),
            })?;
        super::parse_int(&bytes)
    }
}

impl Chaincode for GuardedPdc {
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        match stub.function() {
            "read" => {
                let key = stub.arg_str(0)?;
                let value = self.read_int(stub, &key)?;
                // PDC read service: the value is returned in the payload so
                // the read can be audited on-chain (§IV-B1).
                Ok(value.to_string().into_bytes())
            }
            "write" => {
                let key = stub.arg_str(0)?;
                let value = super::parse_int(&stub.args().get(1).cloned().ok_or_else(|| {
                    ChaincodeError::InvalidArguments("write needs key and value".into())
                })?)?;
                if !self.write_guard.allows(value) {
                    return Err(ChaincodeError::BusinessRule(format!(
                        "write of {value} rejected: requires {}",
                        self.write_guard.describe()
                    )));
                }
                stub.put_private_data(&self.collection, &key, value.to_string().into_bytes());
                Ok(Vec::new())
            }
            "add" => {
                let key = stub.arg_str(0)?;
                let delta = super::parse_int(&stub.args().get(1).cloned().ok_or_else(|| {
                    ChaincodeError::InvalidArguments("add needs key and delta".into())
                })?)?;
                let current = self.read_int(stub, &key)?;
                let sum = current + delta;
                if !self.write_guard.allows(sum) {
                    return Err(ChaincodeError::BusinessRule(format!(
                        "update to {sum} rejected: requires {}",
                        self.write_guard.describe()
                    )));
                }
                stub.put_private_data(&self.collection, &key, sum.to_string().into_bytes());
                Ok(sum.to_string().into_bytes())
            }
            "delete" => {
                let key = stub.arg_str(0)?;
                match self.delete_guard {
                    Guard::Always => {}
                    guard => {
                        let current = self.read_int(stub, &key)?;
                        if !guard.allows(current) {
                            return Err(ChaincodeError::BusinessRule(format!(
                                "delete at {current} rejected: requires {}",
                                guard.describe()
                            )));
                        }
                    }
                }
                stub.del_private_data(&self.collection, &key);
                Ok(Vec::new())
            }
            other => Err(ChaincodeError::FunctionNotFound(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::definition::ChaincodeDefinition;
    use fabric_ledger::WorldState;
    use fabric_types::{CollectionConfig, Identity, OrgId, Proposal, Role, TxKind, Version};
    use std::collections::{BTreeMap, HashSet};

    const COL: &str = "PDC1";

    fn run(
        cc: &GuardedPdc,
        function: &str,
        args: &[&str],
        seed: Option<i64>,
    ) -> (
        Result<Vec<u8>, ChaincodeError>,
        crate::stub::SimulationResult,
    ) {
        let mut ws = WorldState::new();
        if let Some(v) = seed {
            ws.put_private(
                &"guarded".into(),
                &CollectionName::new(COL),
                "k1",
                v.to_string().into_bytes(),
                Version::new(1, 0),
            );
        }
        let def = ChaincodeDefinition::new("guarded").with_collection(
            CollectionConfig::membership_of(COL, &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")]),
        );
        let memberships: HashSet<_> = [CollectionName::new(COL)].into_iter().collect();
        let kp = fabric_crypto::Keypair::generate_from_seed(8);
        let prop = Proposal::new(
            "ch1",
            "guarded",
            function,
            args.iter().map(|a| a.as_bytes().to_vec()).collect(),
            BTreeMap::new(),
            Identity::new("Org1MSP", Role::Client, kp.public_key()),
            1,
        );
        let mut stub = ChaincodeStub::new(&ws, &def, &memberships, &prop);
        let out = cc.invoke(&mut stub);
        (out, stub.into_results())
    }

    fn org1() -> GuardedPdc {
        // §V-A2: peer0.org1 requires k1.value < 15.
        GuardedPdc::new(COL, Guard::LessThan(15), Guard::LessThan(15))
    }

    fn org2() -> GuardedPdc {
        // §V-A2: peer0.org2 requires k1.value > 10.
        GuardedPdc::new(COL, Guard::GreaterThan(10), Guard::GreaterThan(10))
    }

    #[test]
    fn read_returns_value_and_is_read_only() {
        let (out, results) = run(&org1(), "read", &["k1"], Some(12));
        assert_eq!(out.unwrap(), b"12");
        assert_eq!(results.collections[0].rwset.kind(), TxKind::ReadOnly);
    }

    #[test]
    fn write_guards_differ_per_org() {
        // The §V-A2 scenario: writing 5 passes org1 (< 15), violates org2
        // (> 10).
        let (out, results) = run(&org1(), "write", &["k1", "5"], None);
        assert!(out.is_ok());
        assert_eq!(results.collections[0].rwset.kind(), TxKind::WriteOnly);

        let (out, _) = run(&org2(), "write", &["k1", "5"], None);
        assert!(matches!(out, Err(ChaincodeError::BusinessRule(_))));
    }

    #[test]
    fn add_is_read_write_and_guarded() {
        let (out, results) = run(&org1(), "add", &["k1", "2"], Some(12));
        assert_eq!(out.unwrap(), b"14");
        assert_eq!(results.collections[0].rwset.kind(), TxKind::ReadWrite);

        // 12 + 5 = 17 violates org1's < 15 rule.
        let (out, _) = run(&org1(), "add", &["k1", "5"], Some(12));
        assert!(matches!(out, Err(ChaincodeError::BusinessRule(_))));
    }

    #[test]
    fn delete_guard_reads_current_value() {
        // §V-A4 with k1 = 5: org1 (< 15) allows, org2 (> 10) rejects.
        let (out, results) = run(&org1(), "delete", &["k1"], Some(5));
        assert!(out.is_ok());
        assert_eq!(results.collections[0].rwset.kind(), TxKind::Mixed);

        let (out, _) = run(&org2(), "delete", &["k1"], Some(5));
        assert!(matches!(out, Err(ChaincodeError::BusinessRule(_))));
    }

    #[test]
    fn unconstrained_variant_allows_everything() {
        let cc = GuardedPdc::unconstrained(COL);
        assert!(run(&cc, "write", &["k1", "-999"], None).0.is_ok());
        // Unconstrained delete is a pure delete-only transaction.
        let (out, results) = run(&cc, "delete", &["k1"], Some(5));
        assert!(out.is_ok());
        assert_eq!(results.collections[0].rwset.kind(), TxKind::DeleteOnly);
    }

    #[test]
    fn guard_predicates() {
        assert!(Guard::Always.allows(i64::MAX));
        assert!(!Guard::Never.allows(0));
        assert!(Guard::LessThan(15).allows(14));
        assert!(!Guard::LessThan(15).allows(15));
        assert!(Guard::GreaterThan(10).allows(11));
        assert!(!Guard::GreaterThan(10).allows(10));
    }
}
