//! Sample chaincodes.
//!
//! * [`AssetTransfer`] — a public-data asset registry (quickstart).
//! * [`SaccPrivate`] — the Go chaincode of the paper's Listing 2: its
//!   `set` function returns the private value through the response
//!   `payload`, leaking it to every peer (PDC-write leakage, §V-B2).
//! * [`PerfTest`] — the Node.js chaincode of Listing 1:
//!   `readPrivatePerfTest` returns the private asset in the payload
//!   (PDC-read leakage, §V-B1).
//! * [`GuardedPdc`] — the experiment chaincode of §V-A: each organization
//!   deploys its own variant with its own business-rule guards
//!   (customizable chaincode), e.g. org1 requires `k1.value < 15`, org2
//!   requires `k1.value > 10`.
//! * [`LeakyEscrow`] — a deliberately leaky chaincode exercising every
//!   `fabric-flow` sink (PDC012–PDC017); the analyzer's positive fixture.

mod asset_transfer;
mod guarded;
mod indexed_assets;
mod leaky_escrow;
mod perf_test;
mod sacc;
mod sbe_demo;
mod secured_trade;

pub use asset_transfer::{Asset, AssetTransfer};
pub use guarded::{Guard, GuardedPdc};
pub use indexed_assets::IndexedAssets;
pub use leaky_escrow::LeakyEscrow;
pub use perf_test::PerfTest;
pub use sacc::{SaccPrivate, SaccPrivateFixed};
pub use sbe_demo::SbeDemo;
pub use secured_trade::SecuredTrade;

use crate::error::ChaincodeError;

/// Parses an ASCII base-10 integer argument value.
pub(crate) fn parse_int(bytes: &[u8]) -> Result<i64, ChaincodeError> {
    std::str::from_utf8(bytes)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| ChaincodeError::InvalidArguments("expected an integer value".into()))
}
