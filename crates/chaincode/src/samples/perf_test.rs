//! The paper's Listing 1: a Node.js contract whose `readPrivatePerfTest`
//! function returns the private asset through the response payload.
//!
//! ```js
//! // Original Node.js source analyzed by the paper:
//! async readPrivatePerfTest(ctx, perfTestId) {
//!     const exists = await this.privatePerfTestExists(ctx, perfTestId);
//!     if (!exists) { throw new Error(`The perf test ${perfTestId} does not exist`); }
//!     const buffer = await ctx.stub.getPrivateData(collection, perfTestId);
//!     const asset = JSON.parse(buffer.toString());
//!     return asset;          // <-- leaks the private asset via "payload"
//! }
//! ```

use crate::error::ChaincodeError;
use crate::stub::ChaincodeStub;
use crate::Chaincode;
use fabric_types::CollectionName;

/// The perf-test contract (PDC-read leakage, §V-B1). Functions:
///
/// * `createPrivatePerfTest(id)` — stores the transient `asset` value;
/// * `privatePerfTestExists(id)` — existence check via the hash store;
/// * `readPrivatePerfTest(id)` — returns the private asset in the payload.
#[derive(Debug, Clone)]
pub struct PerfTest {
    collection: CollectionName,
}

impl PerfTest {
    /// Creates the contract over a collection.
    pub fn new(collection: impl Into<CollectionName>) -> Self {
        PerfTest {
            collection: collection.into(),
        }
    }
}

impl Default for PerfTest {
    fn default() -> Self {
        PerfTest::new("perfCollection")
    }
}

impl Chaincode for PerfTest {
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        match stub.function() {
            "createPrivatePerfTest" => {
                let id = stub.arg_str(0)?;
                let asset = stub
                    .transient("asset")
                    .ok_or_else(|| {
                        ChaincodeError::InvalidArguments(
                            "asset must be passed in the transient map".into(),
                        )
                    })?
                    .to_vec();
                stub.put_private_data(&self.collection, &id, asset);
                Ok(Vec::new())
            }
            "privatePerfTestExists" => {
                let id = stub.arg_str(0)?;
                let exists = stub.get_private_data_hash(&self.collection, &id).is_some();
                Ok(if exists { &b"true"[..] } else { &b"false"[..] }.to_vec())
            }
            "readPrivatePerfTest" => {
                let id = stub.arg_str(0)?;
                // `privatePerfTestExists` inline: hash lookup.
                if stub.get_private_data_hash(&self.collection, &id).is_none() {
                    return Err(ChaincodeError::KeyNotFound {
                        collection: Some(self.collection.clone()),
                        key: id,
                    });
                }
                let asset = stub
                    .get_private_data(&self.collection, &id)?
                    .ok_or_else(|| ChaincodeError::KeyNotFound {
                        collection: Some(self.collection.clone()),
                        key: id.clone(),
                    })?;
                // Line 10 of Listing 1: `return asset` — the private asset
                // goes back in the payload.
                Ok(asset)
            }
            other => Err(ChaincodeError::FunctionNotFound(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::definition::ChaincodeDefinition;
    use fabric_ledger::WorldState;
    use fabric_types::{CollectionConfig, Identity, OrgId, Proposal, Role, Version};
    use std::collections::{BTreeMap, HashSet};

    fn run(
        function: &str,
        args: &[&str],
        transient: &[(&str, &str)],
        seed_value: Option<&str>,
    ) -> Result<Vec<u8>, ChaincodeError> {
        let mut ws = WorldState::new();
        let col = CollectionName::new("perfCollection");
        if let Some(v) = seed_value {
            ws.put_private(
                &"perf".into(),
                &col,
                "t1",
                v.as_bytes().to_vec(),
                Version::new(1, 0),
            );
        }
        let def = ChaincodeDefinition::new("perf").with_collection(
            CollectionConfig::membership_of("perfCollection", &[OrgId::new("Org1MSP")]),
        );
        let memberships: HashSet<_> = [col].into_iter().collect();
        let kp = fabric_crypto::Keypair::generate_from_seed(6);
        let prop = Proposal::new(
            "ch1",
            "perf",
            function,
            args.iter().map(|a| a.as_bytes().to_vec()).collect(),
            transient
                .iter()
                .map(|(k, v)| (k.to_string(), v.as_bytes().to_vec()))
                .collect::<BTreeMap<_, _>>(),
            Identity::new("Org1MSP", Role::Client, kp.public_key()),
            1,
        );
        let mut stub = ChaincodeStub::new(&ws, &def, &memberships, &prop);
        PerfTest::default().invoke(&mut stub)
    }

    #[test]
    fn read_returns_private_asset_in_payload() {
        let out = run("readPrivatePerfTest", &["t1"], &[], Some("private-asset"));
        assert_eq!(out.unwrap(), b"private-asset");
    }

    #[test]
    fn read_missing_asset_errors_like_listing() {
        let out = run("readPrivatePerfTest", &["t1"], &[], None);
        assert!(matches!(out, Err(ChaincodeError::KeyNotFound { .. })));
    }

    #[test]
    fn exists_uses_hash_store() {
        assert_eq!(
            run("privatePerfTestExists", &["t1"], &[], Some("x")).unwrap(),
            b"true"
        );
        assert_eq!(
            run("privatePerfTestExists", &["t1"], &[], None).unwrap(),
            b"false"
        );
    }

    #[test]
    fn create_stores_transient_asset() {
        let out = run("createPrivatePerfTest", &["t1"], &[("asset", "data")], None);
        assert!(out.unwrap().is_empty());
    }
}
