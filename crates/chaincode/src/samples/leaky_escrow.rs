//! A deliberately leaky escrow chaincode: the `fabric-flow` analyzer's
//! positive fixture.
//!
//! Every function routes private-collection data into a different
//! forbidden sink, one per flow rule:
//!
//! | function  | sink | rule |
//! |---|---|---|
//! | `publish` | public world state | PDC012 |
//! | `announce`| chaincode event | PDC013 |
//! | `peek`    | response payload (readable by non-members) | PDC014 |
//! | `mirror`  | a laxer collection (cross-collection downgrade) | PDC015 |
//! | `settle`  | low-entropy commitment (brute-forceable PR_Hash) | PDC016 |
//! | `stamp`   | nondeterministic write (endorsement divergence) | PDC017 |
//!
//! The paper's attacks are all instances of these flows; this sample
//! packs them into one chaincode so the analyzer's whole rule surface has
//! a triggering fixture (the clean samples are the non-triggering ones).

use crate::definition::ChaincodeDefinition;
use crate::error::ChaincodeError;
use crate::stub::ChaincodeStub;
use crate::Chaincode;
use fabric_types::{CollectionConfig, CollectionName, OrgId};
use std::sync::atomic::{AtomicU64, Ordering};

/// The leaky escrow chaincode over two collections: `escrow` (the strict
/// one holding the secrets) and `audit` (a laxer one with a different
/// member set, the PDC015 downgrade target).
#[derive(Debug)]
pub struct LeakyEscrow {
    escrow: CollectionName,
    audit: CollectionName,
    /// Per-process invocation counter — deliberate nondeterminism: two
    /// endorsers (or two runs) stamp different values (PDC017).
    nonce: AtomicU64,
}

impl LeakyEscrow {
    /// Creates the chaincode over the two collections.
    pub fn new(escrow: impl Into<CollectionName>, audit: impl Into<CollectionName>) -> Self {
        LeakyEscrow {
            escrow: escrow.into(),
            audit: audit.into(),
            nonce: AtomicU64::new(0),
        }
    }

    /// The canonical definition this sample deploys with:
    ///
    /// * `escrowCollection` — members Org1, Org2, with `memberOnlyRead`
    ///   **disabled** (itself a misconfiguration) so non-member clients
    ///   reach the `peek` payload leak;
    /// * `auditCollection` — members Org1, Org3: *not* a superset or
    ///   subset of the escrow member set, so `mirror` hands Org3 data it
    ///   was never entitled to.
    pub fn default_definition() -> ChaincodeDefinition {
        ChaincodeDefinition::new("leaky_escrow")
            .with_collection(
                CollectionConfig::membership_of(
                    "escrowCollection",
                    &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")],
                )
                .with_member_only_read(false),
            )
            .with_collection(CollectionConfig::membership_of(
                "auditCollection",
                &[OrgId::new("Org1MSP"), OrgId::new("Org3MSP")],
            ))
    }

    fn read_escrow(
        &self,
        stub: &mut ChaincodeStub<'_>,
        key: &str,
    ) -> Result<Vec<u8>, ChaincodeError> {
        stub.get_private_data(&self.escrow, key)?
            .ok_or_else(|| ChaincodeError::KeyNotFound {
                collection: Some(self.escrow.clone()),
                key: key.to_string(),
            })
    }
}

impl Default for LeakyEscrow {
    fn default() -> Self {
        LeakyEscrow::new("escrowCollection", "auditCollection")
    }
}

impl Chaincode for LeakyEscrow {
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        let key = stub.arg_str(0)?;
        match stub.function() {
            // PDC012: the escrowed value lands in public world state,
            // replicated in plaintext to every peer on the channel.
            "publish" => {
                let value = self.read_escrow(stub, &key)?;
                stub.put_state(&key, value);
                Ok(Vec::new())
            }
            // PDC013: the value rides out in a chaincode event, delivered
            // to every block listener.
            "announce" => {
                let value = self.read_escrow(stub, &key)?;
                stub.set_event("escrow_settled", value);
                Ok(Vec::new())
            }
            // PDC014: the value is the response payload — any client the
            // collection's memberOnlyRead=false lets through reads it,
            // member or not.
            "peek" => self.read_escrow(stub, &key),
            // PDC015: copies from the strict escrow set {Org1,Org2} into
            // the audit set {Org1,Org3} — Org3 gains the plaintext.
            "mirror" => {
                let value = self.read_escrow(stub, &key)?;
                stub.put_private_data(&self.audit, &key, value);
                Ok(Vec::new())
            }
            // PDC016: commits a dictionary word; its on-chain PR_Hash is
            // recoverable by brute force at any non-member peer.
            "settle" => {
                stub.put_private_data(&self.escrow, &key, b"settled".to_vec());
                Ok(Vec::new())
            }
            // PDC017: writes a process-local counter — endorsers disagree,
            // so the proposal responses never match.
            "stamp" => {
                let n = self.nonce.fetch_add(1, Ordering::Relaxed);
                stub.put_state(&key, format!("stamp-{n}").into_bytes());
                Ok(Vec::new())
            }
            other => Err(ChaincodeError::FunctionNotFound(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::Keypair;
    use fabric_ledger::WorldState;
    use fabric_types::{Identity, Proposal, Role, Version};
    use std::collections::{BTreeMap, HashSet};

    fn run(
        cc: &LeakyEscrow,
        function: &str,
        args: &[&str],
    ) -> (
        Result<Vec<u8>, ChaincodeError>,
        crate::stub::SimulationResult,
    ) {
        let mut ws = WorldState::new();
        let def = LeakyEscrow::default_definition();
        ws.put_private(
            &def.id,
            &CollectionName::new("escrowCollection"),
            "k1",
            b"the-secret".to_vec(),
            Version::new(1, 0),
        );
        let memberships: HashSet<_> = [
            CollectionName::new("escrowCollection"),
            CollectionName::new("auditCollection"),
        ]
        .into_iter()
        .collect();
        let kp = Keypair::generate_from_seed(6);
        let prop = Proposal::new(
            "ch1",
            "leaky_escrow",
            function,
            args.iter().map(|a| a.as_bytes().to_vec()).collect(),
            BTreeMap::new(),
            Identity::new("Org1MSP", Role::Client, kp.public_key()),
            1,
        );
        let mut stub = ChaincodeStub::new(&ws, &def, &memberships, &prop);
        let out = cc.invoke(&mut stub);
        (out, stub.into_results())
    }

    #[test]
    fn publish_copies_private_to_public_state() {
        let (out, results) = run(&LeakyEscrow::default(), "publish", &["k1"]);
        assert!(out.is_ok());
        assert_eq!(results.public.writes[0].value, Some(b"the-secret".to_vec()));
    }

    #[test]
    fn announce_puts_private_into_the_event() {
        let (out, results) = run(&LeakyEscrow::default(), "announce", &["k1"]);
        assert!(out.is_ok());
        assert_eq!(results.event.unwrap().payload, b"the-secret");
    }

    #[test]
    fn peek_returns_the_private_value() {
        let (out, _) = run(&LeakyEscrow::default(), "peek", &["k1"]);
        assert_eq!(out.unwrap(), b"the-secret");
    }

    #[test]
    fn mirror_copies_across_collections() {
        let (out, results) = run(&LeakyEscrow::default(), "mirror", &["k1"]);
        assert!(out.is_ok());
        let audit = results
            .collections
            .iter()
            .find(|c| c.collection.as_str() == "auditCollection")
            .unwrap();
        assert_eq!(audit.rwset.writes[0].value, Some(b"the-secret".to_vec()));
    }

    #[test]
    fn settle_commits_a_dictionary_word() {
        let (out, results) = run(&LeakyEscrow::default(), "settle", &["k1"]);
        assert!(out.is_ok());
        assert_eq!(
            results.collections[0].rwset.writes[0].value,
            Some(b"settled".to_vec())
        );
    }

    #[test]
    fn stamp_diverges_across_invocations() {
        let cc = LeakyEscrow::default();
        let (_, first) = run(&cc, "stamp", &["k1"]);
        let (_, second) = run(&cc, "stamp", &["k1"]);
        assert_ne!(first.public.writes[0].value, second.public.writes[0].value);
    }

    #[test]
    fn default_definition_has_the_two_collections() {
        let def = LeakyEscrow::default_definition();
        let escrow = def
            .collection(&CollectionName::new("escrowCollection"))
            .unwrap();
        assert!(!escrow.member_only_read);
        assert!(def
            .collection(&CollectionName::new("auditCollection"))
            .is_some());
    }

    #[test]
    fn unknown_function_errors() {
        let (out, _) = run(&LeakyEscrow::default(), "nope", &["k1"]);
        assert!(matches!(out, Err(ChaincodeError::FunctionNotFound(_))));
    }
}
