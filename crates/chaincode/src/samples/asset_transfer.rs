//! A public-data asset registry, modeled on Fabric's `asset-transfer-basic`
//! sample. Exercises the public shim surface end to end.

use crate::error::ChaincodeError;
use crate::stub::ChaincodeStub;
use crate::Chaincode;
use fabric_wire::{Decode, Encode};

/// An asset record stored in the world state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Asset {
    /// Asset identifier (the state key).
    pub id: String,
    /// Color attribute.
    pub color: String,
    /// Current owner.
    pub owner: String,
    /// Appraised value.
    pub value: u64,
}

impl Asset {
    /// Serializes the asset for state storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        (
            self.id.clone(),
            self.color.clone(),
            self.owner.clone(),
            self.value,
        )
            .to_wire()
    }

    /// Parses an asset from state bytes.
    ///
    /// # Errors
    ///
    /// [`ChaincodeError::InvalidArguments`] when the bytes are malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ChaincodeError> {
        let (id, color, owner, value) = <(String, String, String, u64)>::from_wire(bytes)
            .map_err(|e| ChaincodeError::InvalidArguments(format!("corrupt asset: {e}")))?;
        Ok(Asset {
            id,
            color,
            owner,
            value,
        })
    }
}

/// The asset-transfer chaincode. Functions:
///
/// | function | args | behaviour |
/// |---|---|---|
/// | `CreateAsset` | id, color, owner, value | fails if the id exists |
/// | `ReadAsset` | id | returns the serialized asset |
/// | `UpdateAsset` | id, color, owner, value | fails if the id is absent |
/// | `TransferAsset` | id, new-owner | read-modify-write |
/// | `DeleteAsset` | id | removes the asset |
/// | `GetAllAssets` | — | range query over all assets |
/// | `GetAssetHistory` | id | committed write history of the asset |
#[derive(Debug, Default, Clone, Copy)]
pub struct AssetTransfer;

impl Chaincode for AssetTransfer {
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        match stub.function() {
            "CreateAsset" => {
                let id = stub.arg_str(0)?;
                let color = stub.arg_str(1)?;
                let owner = stub.arg_str(2)?;
                let value = super::parse_int(&stub.args()[3].clone())? as u64;
                if stub.get_state(&id).is_some() {
                    return Err(ChaincodeError::InvalidArguments(format!(
                        "asset {id} already exists"
                    )));
                }
                let asset = Asset {
                    id: id.clone(),
                    color,
                    owner,
                    value,
                };
                stub.put_state(&id, asset.to_bytes());
                stub.set_event("CreateAsset", id.into_bytes());
                Ok(Vec::new())
            }
            "ReadAsset" => {
                let id = stub.arg_str(0)?;
                let bytes = stub.get_state(&id).ok_or(ChaincodeError::KeyNotFound {
                    collection: None,
                    key: id,
                })?;
                Ok(bytes)
            }
            "UpdateAsset" => {
                let id = stub.arg_str(0)?;
                let color = stub.arg_str(1)?;
                let owner = stub.arg_str(2)?;
                let value = super::parse_int(&stub.args()[3].clone())? as u64;
                if stub.get_state(&id).is_none() {
                    return Err(ChaincodeError::KeyNotFound {
                        collection: None,
                        key: id,
                    });
                }
                let asset = Asset {
                    id: id.clone(),
                    color,
                    owner,
                    value,
                };
                stub.put_state(&id, asset.to_bytes());
                Ok(Vec::new())
            }
            "TransferAsset" => {
                let id = stub.arg_str(0)?;
                let new_owner = stub.arg_str(1)?;
                let bytes = stub.get_state(&id).ok_or(ChaincodeError::KeyNotFound {
                    collection: None,
                    key: id.clone(),
                })?;
                let mut asset = Asset::from_bytes(&bytes)?;
                let old_owner = std::mem::replace(&mut asset.owner, new_owner.clone());
                stub.put_state(&id, asset.to_bytes());
                stub.set_event(
                    "TransferAsset",
                    format!("{id}:{old_owner}->{new_owner}").into_bytes(),
                );
                Ok(old_owner.into_bytes())
            }
            "DeleteAsset" => {
                let id = stub.arg_str(0)?;
                if stub.get_state(&id).is_none() {
                    return Err(ChaincodeError::KeyNotFound {
                        collection: None,
                        key: id,
                    });
                }
                stub.del_state(&id);
                Ok(Vec::new())
            }
            "GetAllAssets" => {
                let hits = stub.get_state_by_range("", "");
                let payload: Vec<Vec<u8>> = hits.into_iter().map(|(_, v)| v).collect();
                Ok(fabric_wire::Encode::to_wire(&payload))
            }
            "GetAssetHistory" => {
                let id = stub.arg_str(0)?;
                let entries: Vec<String> = stub
                    .get_history_for_key(&id)
                    .into_iter()
                    .map(|e| {
                        let what = if e.is_delete {
                            "deleted".to_string()
                        } else {
                            e.value
                                .map(|v| String::from_utf8_lossy(&v).into_owned())
                                .unwrap_or_default()
                        };
                        format!("{}@{}:{}", e.tx_id, e.version, what)
                    })
                    .collect();
                Ok(entries.join("\n").into_bytes())
            }
            other => Err(ChaincodeError::FunctionNotFound(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::definition::ChaincodeDefinition;
    use fabric_ledger::WorldState;
    use fabric_types::{Identity, Proposal, Role, TxKind, Version};
    use std::collections::{BTreeMap, HashSet};

    fn run(
        ws: &WorldState,
        function: &str,
        args: &[&str],
    ) -> (
        Result<Vec<u8>, ChaincodeError>,
        crate::stub::SimulationResult,
    ) {
        let def = ChaincodeDefinition::new("assets");
        let memberships = HashSet::new();
        let kp = fabric_crypto::Keypair::generate_from_seed(1);
        let prop = Proposal::new(
            "ch1",
            "assets",
            function,
            args.iter().map(|a| a.as_bytes().to_vec()).collect(),
            BTreeMap::new(),
            Identity::new("Org1MSP", Role::Client, kp.public_key()),
            1,
        );
        let mut stub = ChaincodeStub::new(ws, &def, &memberships, &prop);
        let out = AssetTransfer.invoke(&mut stub);
        (out, stub.into_results())
    }

    fn seeded_state() -> WorldState {
        let mut ws = WorldState::new();
        let asset = Asset {
            id: "a1".into(),
            color: "red".into(),
            owner: "alice".into(),
            value: 100,
        };
        ws.put_public(&"assets".into(), "a1", asset.to_bytes(), Version::new(1, 0));
        ws
    }

    #[test]
    fn create_then_duplicate_fails() {
        let ws = WorldState::new();
        let (out, results) = run(&ws, "CreateAsset", &["a1", "red", "alice", "100"]);
        assert!(out.is_ok());
        assert_eq!(results.public.writes.len(), 1);

        let ws = seeded_state();
        let (out, _) = run(&ws, "CreateAsset", &["a1", "red", "alice", "100"]);
        assert!(out.is_err());
    }

    #[test]
    fn read_returns_serialized_asset() {
        let ws = seeded_state();
        let (out, results) = run(&ws, "ReadAsset", &["a1"]);
        let asset = Asset::from_bytes(&out.unwrap()).unwrap();
        assert_eq!(asset.owner, "alice");
        assert_eq!(results.public.kind(), TxKind::ReadOnly);
    }

    #[test]
    fn transfer_is_read_write() {
        let ws = seeded_state();
        let (out, results) = run(&ws, "TransferAsset", &["a1", "bob"]);
        assert_eq!(out.unwrap(), b"alice");
        assert_eq!(results.public.kind(), TxKind::ReadWrite);
        let written = Asset::from_bytes(results.public.writes[0].value.as_ref().unwrap()).unwrap();
        assert_eq!(written.owner, "bob");
    }

    #[test]
    fn delete_produces_delete_write() {
        let ws = seeded_state();
        let (out, results) = run(&ws, "DeleteAsset", &["a1"]);
        assert!(out.is_ok());
        assert!(results.public.writes[0].is_delete);
    }

    #[test]
    fn unknown_function_and_missing_key_error() {
        let ws = WorldState::new();
        let (out, _) = run(&ws, "Nope", &[]);
        assert!(matches!(out, Err(ChaincodeError::FunctionNotFound(_))));
        let (out, _) = run(&ws, "ReadAsset", &["ghost"]);
        assert!(matches!(out, Err(ChaincodeError::KeyNotFound { .. })));
    }
}
