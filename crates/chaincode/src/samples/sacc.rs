//! The paper's Listing 2: a "simple asset chaincode" whose private `set`
//! function returns the written value through the response payload.
//!
//! ```go
//! // Original Go source analyzed by the paper:
//! func setPrivate(stub shim.ChaincodeStubInterface, args []string) (string, error) {
//!     err := stub.PutPrivateData("demo", args[0], []byte(args[1]))
//!     ...
//!     return args[1], nil   // <-- leaks the private value via "payload"
//! }
//! ```

use crate::error::ChaincodeError;
use crate::stub::ChaincodeStub;
use crate::Chaincode;
use fabric_types::CollectionName;

/// The vulnerable chaincode: `set` leaks through the payload (PDC-write
/// leakage, §V-B2); `get` returns the private value to the client, which
/// leaks when invoked via `submit_transaction` (PDC-read leakage, §V-B1).
#[derive(Debug, Clone)]
pub struct SaccPrivate {
    collection: CollectionName,
}

impl SaccPrivate {
    /// Creates the chaincode over a collection (the project used `"demo"`).
    pub fn new(collection: impl Into<CollectionName>) -> Self {
        SaccPrivate {
            collection: collection.into(),
        }
    }
}

impl Default for SaccPrivate {
    fn default() -> Self {
        SaccPrivate::new("demo")
    }
}

impl Chaincode for SaccPrivate {
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        match stub.function() {
            "set" => {
                if stub.args().len() != 2 {
                    return Err(ChaincodeError::InvalidArguments(
                        "Incorrect arguments. Expecting a key and a value".into(),
                    ));
                }
                let key = stub.arg_str(0)?;
                let value = stub.args()[1].clone();
                stub.put_private_data(&self.collection, &key, value.clone());
                // Line 10 of Listing 2: `return args[1], nil` — the private
                // value goes back in the payload and thus into the block.
                Ok(value)
            }
            "get" => {
                let key = stub.arg_str(0)?;
                let value = stub
                    .get_private_data(&self.collection, &key)?
                    .ok_or_else(|| ChaincodeError::KeyNotFound {
                        collection: Some(self.collection.clone()),
                        key: key.clone(),
                    })?;
                Ok(value)
            }
            other => Err(ChaincodeError::FunctionNotFound(other.to_string())),
        }
    }
}

/// The remediated variant: `set` takes the value from the transient map
/// and returns only the key, so nothing private enters the payload.
#[derive(Debug, Clone)]
pub struct SaccPrivateFixed {
    collection: CollectionName,
}

impl SaccPrivateFixed {
    /// Creates the fixed chaincode over a collection.
    pub fn new(collection: impl Into<CollectionName>) -> Self {
        SaccPrivateFixed {
            collection: collection.into(),
        }
    }
}

impl Default for SaccPrivateFixed {
    fn default() -> Self {
        SaccPrivateFixed::new("demo")
    }
}

impl Chaincode for SaccPrivateFixed {
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        match stub.function() {
            "set" => {
                let key = stub.arg_str(0)?;
                let value = stub
                    .transient("value")
                    .ok_or_else(|| {
                        ChaincodeError::InvalidArguments(
                            "private value must be passed in the transient map".into(),
                        )
                    })?
                    .to_vec();
                stub.put_private_data(&self.collection, &key, value);
                Ok(key.into_bytes())
            }
            "get" => {
                let key = stub.arg_str(0)?;
                let value = stub
                    .get_private_data(&self.collection, &key)?
                    .ok_or_else(|| ChaincodeError::KeyNotFound {
                        collection: Some(self.collection.clone()),
                        key: key.clone(),
                    })?;
                Ok(value)
            }
            other => Err(ChaincodeError::FunctionNotFound(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::definition::ChaincodeDefinition;
    use fabric_ledger::WorldState;
    use fabric_types::{CollectionConfig, Identity, OrgId, Proposal, Role};
    use std::collections::{BTreeMap, HashSet};

    fn invoke(
        cc: &dyn Chaincode,
        function: &str,
        args: &[&str],
        transient: &[(&str, &str)],
    ) -> (
        Result<Vec<u8>, ChaincodeError>,
        crate::stub::SimulationResult,
    ) {
        let ws = WorldState::new();
        let def = ChaincodeDefinition::new("sacc").with_collection(
            CollectionConfig::membership_of("demo", &[OrgId::new("Org1MSP")]),
        );
        let memberships: HashSet<_> = [CollectionName::new("demo")].into_iter().collect();
        let kp = fabric_crypto::Keypair::generate_from_seed(5);
        let prop = Proposal::new(
            "ch1",
            "sacc",
            function,
            args.iter().map(|a| a.as_bytes().to_vec()).collect(),
            transient
                .iter()
                .map(|(k, v)| (k.to_string(), v.as_bytes().to_vec()))
                .collect::<BTreeMap<_, _>>(),
            Identity::new("Org1MSP", Role::Client, kp.public_key()),
            1,
        );
        let mut stub = ChaincodeStub::new(&ws, &def, &memberships, &prop);
        let out = cc.invoke(&mut stub);
        (out, stub.into_results())
    }

    #[test]
    fn vulnerable_set_returns_private_value() {
        let (out, results) = invoke(&SaccPrivate::default(), "set", &["k1", "secret"], &[]);
        // The leak: the payload equals the private value.
        assert_eq!(out.unwrap(), b"secret");
        assert_eq!(results.collections[0].rwset.writes[0].key, "k1");
    }

    #[test]
    fn fixed_set_returns_only_the_key() {
        let (out, results) = invoke(
            &SaccPrivateFixed::default(),
            "set",
            &["k1"],
            &[("value", "secret")],
        );
        assert_eq!(out.unwrap(), b"k1");
        assert_eq!(
            results.collections[0].rwset.writes[0].value,
            Some(b"secret".to_vec())
        );
    }

    #[test]
    fn fixed_set_requires_transient_value() {
        let (out, _) = invoke(&SaccPrivateFixed::default(), "set", &["k1"], &[]);
        assert!(matches!(out, Err(ChaincodeError::InvalidArguments(_))));
    }

    #[test]
    fn wrong_arity_matches_listing() {
        let (out, _) = invoke(&SaccPrivate::default(), "set", &["only-key"], &[]);
        assert!(matches!(out, Err(ChaincodeError::InvalidArguments(_))));
    }

    #[test]
    fn get_missing_key_errors() {
        let (out, _) = invoke(&SaccPrivate::default(), "get", &["ghost"], &[]);
        assert!(matches!(out, Err(ChaincodeError::KeyNotFound { .. })));
    }
}
