//! A chaincode exercising state-based endorsement (key-level policies):
//! Fabric's `SetStateValidationParameter` machinery, whose validator
//! (`validator_keylevel.go`) is the code path the paper cites when
//! establishing Use Case 2.

use crate::error::ChaincodeError;
use crate::stub::ChaincodeStub;
use crate::Chaincode;

/// Functions:
///
/// | function | args | behaviour |
/// |---|---|---|
/// | `put` | key, value | public write |
/// | `get` | key | public read, value in payload |
/// | `set_policy` | key, policy-expr | stages a key-level endorsement policy |
/// | `clear_policy` | key | removes the key-level policy |
/// | `get_policy` | key | returns the committed key-level policy |
#[derive(Debug, Default, Clone, Copy)]
pub struct SbeDemo;

impl Chaincode for SbeDemo {
    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        match stub.function() {
            "put" => {
                let key = stub.arg_str(0)?;
                let value =
                    stub.args().get(1).cloned().ok_or_else(|| {
                        ChaincodeError::InvalidArguments("put needs a value".into())
                    })?;
                stub.put_state(&key, value);
                Ok(Vec::new())
            }
            "get" => {
                let key = stub.arg_str(0)?;
                stub.get_state(&key).ok_or(ChaincodeError::KeyNotFound {
                    collection: None,
                    key,
                })
            }
            "set_policy" => {
                let key = stub.arg_str(0)?;
                let policy = stub.arg_str(1)?;
                stub.set_state_validation_parameter(&key, &policy);
                Ok(Vec::new())
            }
            "clear_policy" => {
                let key = stub.arg_str(0)?;
                stub.delete_state_validation_parameter(&key);
                Ok(Vec::new())
            }
            "get_policy" => {
                let key = stub.arg_str(0)?;
                Ok(stub
                    .get_state_validation_parameter(&key)
                    .unwrap_or_default()
                    .into_bytes())
            }
            other => Err(ChaincodeError::FunctionNotFound(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::definition::ChaincodeDefinition;
    use fabric_ledger::WorldState;
    use fabric_types::{Identity, Proposal, Role};
    use std::collections::{BTreeMap, HashSet};

    fn run(
        ws: &WorldState,
        function: &str,
        args: &[&str],
    ) -> (
        Result<Vec<u8>, ChaincodeError>,
        crate::stub::SimulationResult,
    ) {
        let def = ChaincodeDefinition::new("sbe");
        let memberships = HashSet::new();
        let kp = fabric_crypto::Keypair::generate_from_seed(3);
        let prop = Proposal::new(
            "ch1",
            "sbe",
            function,
            args.iter().map(|a| a.as_bytes().to_vec()).collect(),
            BTreeMap::new(),
            Identity::new("Org1MSP", Role::Client, kp.public_key()),
            1,
        );
        let mut stub = ChaincodeStub::new(ws, &def, &memberships, &prop);
        let out = SbeDemo.invoke(&mut stub);
        (out, stub.into_results())
    }

    #[test]
    fn set_policy_stages_metadata_write() {
        let ws = WorldState::new();
        let (out, results) = run(
            &ws,
            "set_policy",
            &["k1", "AND('Org1MSP.peer','Org2MSP.peer')"],
        );
        assert!(out.is_ok());
        assert_eq!(results.metadata_writes.len(), 1);
        assert_eq!(results.metadata_writes[0].key, "k1");
        assert_eq!(
            results.metadata_writes[0].validation_parameter.as_deref(),
            Some("AND('Org1MSP.peer','Org2MSP.peer')")
        );
        // No regular writes.
        assert!(results.public.writes.is_empty());
    }

    #[test]
    fn clear_policy_stages_tombstone() {
        let ws = WorldState::new();
        let (out, results) = run(&ws, "clear_policy", &["k1"]);
        assert!(out.is_ok());
        assert_eq!(results.metadata_writes[0].validation_parameter, None);
    }

    #[test]
    fn get_policy_reads_committed_state() {
        let mut ws = WorldState::new();
        ws.set_validation_parameter(&"sbe".into(), "k1", Some("OR('Org2MSP.peer')".into()));
        let (out, _) = run(&ws, "get_policy", &["k1"]);
        assert_eq!(out.unwrap(), b"OR('Org2MSP.peer')");
        let (out, _) = run(&ws, "get_policy", &["other"]);
        assert_eq!(out.unwrap(), b"");
    }
}
