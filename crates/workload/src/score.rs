//! Telemetry-scored load results: windowed samples, per-rate load
//! points, and knee detection over a rate sweep.
//!
//! The scorer reads the same streams the operator-facing tooling reads —
//! `fabric_tx_phase_seconds` histograms (via reset-free
//! [`HistogramWindow`] deltas), the audit-event log, and fabric-monitor
//! alert transitions — so a load curve is scored by exactly the
//! telemetry a production deployment would export, not by
//! harness-private bookkeeping.
//!
//! Determinism is split explicitly: everything derived from logical
//! ticks (counts, abort rates, tick latencies, audit totals, alert
//! sequences) is bit-identical across runs of the same seed and across
//! the validation-parallelism knob, and is what
//! [`LoadPoint::deterministic_signature`] hashes over. Wall-clock phase
//! quantiles (`*_ms` fields) vary run to run and are reported for the
//! latency-vs-load curves only.

use fabric_monitor::{AlertPhase, Monitor};
use fabric_telemetry::{HistogramWindow, Telemetry, PHASES, PHASE_SECONDS_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One scorer window: deltas of every stream over a fixed tick span.
#[derive(Debug, Clone)]
pub struct WindowSample {
    /// Zero-based window index within the run.
    pub index: usize,
    /// First tick covered (inclusive).
    pub start_tick: u64,
    /// Last tick covered (exclusive).
    pub end_tick: u64,
    /// Transactions submitted to ordering during the window.
    pub submitted: u64,
    /// Transactions committed `Valid` during the window.
    pub committed: u64,
    /// MVCC aborts resolved during the window.
    pub aborted_mvcc: u64,
    /// Audit events emitted during the window, by kind.
    pub audit: BTreeMap<String, u64>,
    /// Alert rules that transitioned to `Firing` during the window.
    pub alerts_fired: Vec<String>,
    /// Wall-clock per-phase p50 over the window, milliseconds.
    pub phase_p50_ms: BTreeMap<String, f64>,
    /// Wall-clock per-phase p99 over the window, milliseconds.
    pub phase_p99_ms: BTreeMap<String, f64>,
}

/// Consumes telemetry deltas window by window while a load run drives
/// the network.
pub struct WorkloadScorer {
    telemetry: Telemetry,
    audit_cursor: usize,
    transition_cursor: usize,
    phase_windows: Vec<(&'static str, HistogramWindow)>,
    window_start_tick: u64,
    prev_submitted: u64,
    prev_committed: u64,
    prev_aborted: u64,
    windows: Vec<WindowSample>,
}

impl WorkloadScorer {
    /// Attaches a scorer to the pipeline the network under load exports
    /// into. Pre-registers the per-phase histograms so the first window
    /// can diff against an empty baseline, and marks the current
    /// audit-log and alert-transition positions so seed-phase noise
    /// stays out of the first window.
    pub fn new(telemetry: &Telemetry, monitor: &Monitor) -> Self {
        let phase_windows = PHASES
            .iter()
            .map(|phase| {
                let histogram = telemetry.metrics().histogram(
                    "fabric_tx_phase_seconds",
                    "Per-transaction lifecycle phase latency",
                    &[("phase", phase)],
                    PHASE_SECONDS_BUCKETS,
                );
                (*phase, histogram.window())
            })
            .collect();
        WorkloadScorer {
            telemetry: telemetry.clone(),
            audit_cursor: telemetry.audit().len(),
            transition_cursor: monitor.transitions().len(),
            phase_windows,
            window_start_tick: 0,
            prev_submitted: 0,
            prev_committed: 0,
            prev_aborted: 0,
            windows: Vec::new(),
        }
    }

    /// Closes the current window at `end_tick`. The harness passes its
    /// *cumulative* submit/commit/abort totals; the scorer diffs them
    /// against the previous window close.
    pub fn close_window(
        &mut self,
        end_tick: u64,
        monitor: &Monitor,
        submitted_total: u64,
        committed_total: u64,
        aborted_total: u64,
    ) -> WindowSample {
        let mut audit = BTreeMap::new();
        let events = self.telemetry.audit().events_since(self.audit_cursor);
        self.audit_cursor += events.len();
        for event in &events {
            *audit.entry(event.kind().to_string()).or_insert(0) += 1;
        }

        let transitions = monitor.transitions();
        let alerts_fired: Vec<String> = transitions
            [self.transition_cursor.min(transitions.len())..]
            .iter()
            .filter(|t| t.to == AlertPhase::Firing)
            .map(|t| t.rule.clone())
            .collect();
        self.transition_cursor = transitions.len();

        let mut phase_p50_ms = BTreeMap::new();
        let mut phase_p99_ms = BTreeMap::new();
        for (phase, window) in &mut self.phase_windows {
            let delta = window.take_delta();
            if let Some(p50) = delta.quantile(0.5) {
                phase_p50_ms.insert(phase.to_string(), p50 * 1e3);
            }
            if let Some(p99) = delta.quantile(0.99) {
                phase_p99_ms.insert(phase.to_string(), p99 * 1e3);
            }
        }

        let sample = WindowSample {
            index: self.windows.len(),
            start_tick: self.window_start_tick,
            end_tick,
            submitted: submitted_total - self.prev_submitted,
            committed: committed_total - self.prev_committed,
            aborted_mvcc: aborted_total - self.prev_aborted,
            audit,
            alerts_fired,
            phase_p50_ms,
            phase_p99_ms,
        };
        self.window_start_tick = end_tick;
        self.prev_submitted = submitted_total;
        self.prev_committed = committed_total;
        self.prev_aborted = aborted_total;
        self.windows.push(sample.clone());
        sample
    }

    /// All windows closed so far, in order.
    pub fn windows(&self) -> &[WindowSample] {
        &self.windows
    }

    /// Consumes the scorer, returning its window log.
    pub fn into_windows(self) -> Vec<WindowSample> {
        self.windows
    }
}

/// One row of a latency-vs-load curve: everything measured at a single
/// offered rate.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Mean arrivals per tick the generator offered.
    pub offered_rate: f64,
    /// Ticks of offered load.
    pub ticks: u64,
    /// Extra ticks spent draining in-flight transactions after arrivals
    /// stopped (backlog depth in disguise).
    pub drain_ticks: u64,
    /// Orderer block-cut size = commit capacity per tick.
    pub block_capacity_per_tick: u64,
    /// Arrivals the open-loop schedule generated.
    pub offered: u64,
    /// Arrivals that reached the ordering service.
    pub submitted: u64,
    /// Arrivals replaced by attack-lab adversarial submissions.
    pub adversarial: u64,
    /// Arrivals rejected at endorsement (BTL-expired reads, refused
    /// peers) and never submitted.
    pub rejected_endorse: u64,
    /// Transactions committed `Valid`.
    pub committed: u64,
    /// Transactions aborted by MVCC read-version conflicts.
    pub aborted_mvcc: u64,
    /// Transactions invalidated for any other reason (endorsement
    /// policy failures from fault injection, adversarial rejections).
    pub invalid_other: u64,
    /// Transactions still unresolved when the drain budget ran out.
    pub unresolved: u64,
    /// Peak number of simultaneously in-flight transactions.
    pub peak_in_flight: usize,
    /// Committed transactions per tick over the whole run.
    pub goodput_per_tick: f64,
    /// MVCC aborts / submitted.
    pub abort_rate: f64,
    /// Median submit-to-resolve latency of committed txs, in ticks.
    pub latency_ticks_p50: u64,
    /// 99th-percentile submit-to-resolve latency, in ticks.
    pub latency_ticks_p99: u64,
    /// Run-total audit events by kind.
    pub audit_events: BTreeMap<String, u64>,
    /// Alert rules that fired at least once, sorted and deduped.
    pub alerts: Vec<String>,
    /// Run-level wall-clock per-phase p50, milliseconds.
    pub phase_p50_ms: BTreeMap<String, f64>,
    /// Run-level wall-clock per-phase p99, milliseconds.
    pub phase_p99_ms: BTreeMap<String, f64>,
    /// The scorer's window log.
    pub windows: Vec<WindowSample>,
}

impl LoadPoint {
    /// Renders every tick-deterministic field into one string. Two runs
    /// of the same seed and config — including across the
    /// validation-parallelism knob — must produce identical signatures;
    /// wall-clock quantiles are deliberately excluded.
    pub fn deterministic_signature(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "rate={:.3} ticks={} drain={} cap={} offered={} submitted={} adversarial={} \
             rejected={} committed={} aborted={} invalid={} unresolved={} peak={} \
             lat_p50={} lat_p99={}",
            self.offered_rate,
            self.ticks,
            self.drain_ticks,
            self.block_capacity_per_tick,
            self.offered,
            self.submitted,
            self.adversarial,
            self.rejected_endorse,
            self.committed,
            self.aborted_mvcc,
            self.invalid_other,
            self.unresolved,
            self.peak_in_flight,
            self.latency_ticks_p50,
            self.latency_ticks_p99,
        );
        let _ = write!(s, " audit={:?} alerts={:?}", self.audit_events, self.alerts);
        for w in &self.windows {
            let _ = write!(
                s,
                " w{}[{}..{} sub={} com={} abort={} audit={:?} alerts={:?}]",
                w.index,
                w.start_tick,
                w.end_tick,
                w.submitted,
                w.committed,
                w.aborted_mvcc,
                w.audit,
                w.alerts_fired,
            );
        }
        s
    }
}

/// Where and why a sweep saturated.
#[derive(Debug, Clone)]
pub struct KneePoint {
    /// Index into the sweep's load points.
    pub index: usize,
    /// Offered rate at the knee.
    pub offered_rate: f64,
    /// `goodput-plateau` or `p99-inflation`.
    pub reason: String,
    /// The lifecycle phase blamed for the ceiling.
    pub bottleneck: String,
}

/// Marginal goodput below this fraction of the offered-rate increase
/// counts as a plateau.
const PLATEAU_MARGINAL: f64 = 0.5;

/// p99 growing more than this multiple of the rate ratio counts as
/// super-linear inflation.
const INFLATION_FACTOR: f64 = 2.0;

/// Finds the first load point where the system saturates: marginal
/// goodput collapses (plateau) or p99 latency inflates super-linearly
/// relative to the rate increase. Points must be sorted by ascending
/// `offered_rate`. Returns `None` while every point still scales.
pub fn detect_knee(points: &[LoadPoint]) -> Option<KneePoint> {
    for i in 1..points.len() {
        let prev = &points[i - 1];
        let p = &points[i];
        let d_rate = p.offered_rate - prev.offered_rate;
        if d_rate <= 0.0 {
            continue;
        }
        let marginal = (p.goodput_per_tick - prev.goodput_per_tick) / d_rate;
        if marginal < PLATEAU_MARGINAL {
            return Some(KneePoint {
                index: i,
                offered_rate: p.offered_rate,
                reason: "goodput-plateau".into(),
                bottleneck: name_bottleneck(p),
            });
        }
        let rate_ratio = p.offered_rate / prev.offered_rate;
        if prev.latency_ticks_p99 > 0 {
            let p99_ratio = p.latency_ticks_p99 as f64 / prev.latency_ticks_p99 as f64;
            if p99_ratio > INFLATION_FACTOR * rate_ratio
                && p.latency_ticks_p99 >= prev.latency_ticks_p99 + 2
            {
                return Some(KneePoint {
                    index: i,
                    offered_rate: p.offered_rate,
                    reason: "p99-inflation".into(),
                    bottleneck: name_bottleneck(p),
                });
            }
        }
    }
    None
}

/// Names the phase responsible for a saturated point. Pinned goodput at
/// the block-cut ceiling (or a backlog that outlived the offered phase)
/// is the ordering service by construction — the orderer cuts exactly
/// one block per tick — otherwise the slowest phase by wall-clock p99
/// takes the blame.
fn name_bottleneck(p: &LoadPoint) -> String {
    let at_cut_ceiling = p.block_capacity_per_tick > 0
        && p.goodput_per_tick >= 0.9 * p.block_capacity_per_tick as f64;
    let backlog_outlived_run = p.drain_ticks > p.latency_ticks_p99.saturating_mul(2).max(8);
    if at_cut_ceiling || backlog_outlived_run {
        return "order".into();
    }
    p.phase_p99_ms
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("phase quantiles are finite"))
        .map(|(phase, _)| phase.clone())
        .unwrap_or_else(|| "commit".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(rate: f64, goodput: f64, p99: u64) -> LoadPoint {
        LoadPoint {
            offered_rate: rate,
            ticks: 100,
            drain_ticks: 2,
            block_capacity_per_tick: 8,
            offered: (rate * 100.0) as u64,
            submitted: (rate * 100.0) as u64,
            adversarial: 0,
            rejected_endorse: 0,
            committed: (goodput * 100.0) as u64,
            aborted_mvcc: 0,
            invalid_other: 0,
            unresolved: 0,
            peak_in_flight: 10,
            goodput_per_tick: goodput,
            abort_rate: 0.0,
            latency_ticks_p50: p99 / 2,
            latency_ticks_p99: p99,
            audit_events: BTreeMap::new(),
            alerts: Vec::new(),
            phase_p50_ms: BTreeMap::new(),
            phase_p99_ms: BTreeMap::new(),
            windows: Vec::new(),
        }
    }

    #[test]
    fn no_knee_while_goodput_tracks_offered_rate() {
        let points = vec![point(2.0, 2.0, 3), point(4.0, 4.0, 3), point(6.0, 6.0, 4)];
        assert!(detect_knee(&points).is_none());
    }

    #[test]
    fn goodput_plateau_is_a_knee_blamed_on_ordering_at_the_cut_ceiling() {
        let points = vec![point(4.0, 4.0, 3), point(8.0, 7.9, 4), point(12.0, 8.0, 40)];
        let knee = detect_knee(&points).expect("plateau at 12/tick");
        assert_eq!(knee.index, 2);
        assert_eq!(knee.reason, "goodput-plateau");
        assert_eq!(
            knee.bottleneck, "order",
            "goodput pinned at 8/tick capacity"
        );
    }

    #[test]
    fn p99_inflation_is_a_knee_even_before_the_plateau() {
        let mut saturating = point(8.0, 7.0, 30);
        saturating.block_capacity_per_tick = 64;
        saturating.phase_p99_ms.insert("validate".into(), 9.0);
        saturating.phase_p99_ms.insert("endorse".into(), 1.0);
        let points = vec![point(2.0, 2.0, 3), point(4.0, 4.0, 3), saturating];
        let knee = detect_knee(&points).expect("p99 went 3 -> 30 on a 2x rate step");
        assert_eq!(knee.index, 2);
        assert_eq!(knee.reason, "p99-inflation");
        assert_eq!(knee.bottleneck, "validate", "slowest phase by wall p99");
    }

    #[test]
    fn deterministic_signature_ignores_wall_clock_fields() {
        let mut a = point(4.0, 4.0, 3);
        let mut b = point(4.0, 4.0, 3);
        a.phase_p99_ms.insert("commit".into(), 1.23);
        b.phase_p99_ms.insert("commit".into(), 9.87);
        assert_eq!(a.deterministic_signature(), b.deterministic_signature());
        b.committed += 1;
        assert_ne!(a.deterministic_signature(), b.deterministic_signature());
    }
}
