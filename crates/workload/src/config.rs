//! Workload shape: arrival rate, operation mix, contention, and fault
//! injection knobs.

/// The kinds of client operations the generator blends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Read-modify-write (`add`) on a Zipf-sampled private key: the
    /// contention workload. Carries a read version, so concurrent
    /// writers to the same hot key produce MVCC aborts; on a
    /// BlockToLive-expired cold key the read fails at endorsement
    /// (expiry churn).
    PdcAdd,
    /// Blind `write` on a Zipf-sampled private key: refreshes hot keys
    /// (keeping them alive across the BTL horizon) and bumps versions
    /// under in-flight readers.
    PdcWrite,
    /// Public-state `put` on a per-client key: the uncontended baseline
    /// lane.
    Public,
    /// Public-state `put` on a key carrying a committed key-level
    /// (state-based) endorsement policy, so validation exercises the
    /// SBE path.
    Sbe,
}

/// Integer weights for the operation mix (0 disables a lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Weight of [`OpKind::PdcAdd`].
    pub pdc_add: u32,
    /// Weight of [`OpKind::PdcWrite`].
    pub pdc_write: u32,
    /// Weight of [`OpKind::Public`].
    pub public: u32,
    /// Weight of [`OpKind::Sbe`].
    pub sbe: u32,
}

impl OpMix {
    /// Sum of all lane weights.
    pub fn total(&self) -> u32 {
        self.pdc_add + self.pdc_write + self.public + self.sbe
    }

    /// Maps a draw in `0..total()` onto a lane.
    pub fn pick(&self, draw: u32) -> OpKind {
        debug_assert!(self.total() > 0, "op mix must have at least one lane");
        let mut edge = self.pdc_add;
        if draw < edge {
            return OpKind::PdcAdd;
        }
        edge += self.pdc_write;
        if draw < edge {
            return OpKind::PdcWrite;
        }
        edge += self.public;
        if draw < edge {
            return OpKind::Public;
        }
        OpKind::Sbe
    }

    /// The paper-experiment default: PDC-heavy with public and SBE side
    /// traffic.
    pub fn pdc_heavy() -> Self {
        OpMix {
            pdc_add: 40,
            pdc_write: 30,
            public: 20,
            sbe: 10,
        }
    }

    /// Pure public-state traffic (no private data, no contention lane).
    pub fn public_only() -> Self {
        OpMix {
            pdc_add: 0,
            pdc_write: 0,
            public: 100,
            sbe: 0,
        }
    }
}

/// Full configuration of one load point.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Master seed: schedule, key draws, identity draws, and fault
    /// injection all derive from it.
    pub seed: u64,
    /// Extra peers added beyond the per-org anchors, alternating orgs.
    pub extra_peers: usize,
    /// Size of the virtual client-identity space ops draw from.
    pub virtual_clients: u64,
    /// Number of distinct private keys (the Zipf domain).
    pub key_space: usize,
    /// Zipf skew over the key space; 0 = uniform.
    pub zipf_skew: f64,
    /// Operation mix weights.
    pub mix: OpMix,
    /// Mean arrivals per logical tick (open loop: arrivals never wait
    /// for completions).
    pub offered_rate: f64,
    /// Ticks of offered load before the drain phase.
    pub ticks: u64,
    /// Scorer window length in ticks.
    pub window_ticks: u64,
    /// Orderer block-cut size; capacity is one block per tick.
    pub block_txs: usize,
    /// BlockToLive for the private collection (0 = never expire).
    pub block_to_live: u64,
    /// Probability an honest op loses its second endorsement (submitted
    /// anyway; fails endorsement policy at validation).
    pub endorser_failure_prob: f64,
    /// Fraction of arrivals replaced by a colluding non-member
    /// endorsement attack from the attack lab.
    pub adversarial_fraction: f64,
    /// Validation parallelism knob, forwarded to the network.
    pub parallel_validation: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 1,
            extra_peers: 0,
            virtual_clients: 1_000_000,
            key_space: 128,
            zipf_skew: 0.99,
            mix: OpMix::pdc_heavy(),
            offered_rate: 4.0,
            ticks: 200,
            window_ticks: 50,
            block_txs: 8,
            block_to_live: 0,
            endorser_failure_prob: 0.0,
            adversarial_fraction: 0.0,
            parallel_validation: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_pick_partitions_the_weight_range() {
        let mix = OpMix {
            pdc_add: 2,
            pdc_write: 3,
            public: 4,
            sbe: 1,
        };
        let kinds: Vec<OpKind> = (0..mix.total()).map(|d| mix.pick(d)).collect();
        assert_eq!(kinds.iter().filter(|k| **k == OpKind::PdcAdd).count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == OpKind::PdcWrite).count(), 3);
        assert_eq!(kinds.iter().filter(|k| **k == OpKind::Public).count(), 4);
        assert_eq!(kinds.iter().filter(|k| **k == OpKind::Sbe).count(), 1);
    }

    #[test]
    fn disabled_lanes_are_never_picked() {
        let mix = OpMix::public_only();
        for d in 0..mix.total() {
            assert_eq!(mix.pick(d), OpKind::Public);
        }
    }
}
