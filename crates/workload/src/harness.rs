//! Open-loop traffic generation against a live [`FabricNetwork`].
//!
//! The generator models millions of client identities (identities are
//! derived lazily from a virtual-client index, so the identity space
//! costs nothing until an index is drawn) submitting a weighted mix of
//! public, private-data, and SBE operations at a configured arrival
//! rate. The loop is **open**: arrivals follow the schedule regardless
//! of how far behind the network falls, which is what exposes the
//! saturation knee — a closed loop would simply slow its own offered
//! load to match capacity.
//!
//! Per tick the harness (1) injects the scheduled arrivals (endorse,
//! assemble, submit), (2) advances the network one tick, (3) routes the
//! tick's trace spans to their in-flight transactions, and (4) resolves
//! commits/aborts against the ledger, feeding committed-transaction
//! timelines into `fabric_tx_phase_seconds`. Every draw comes from one
//! seeded generator and all accounting is in logical ticks, so the
//! schedule and the deterministic half of the resulting [`LoadPoint`]
//! are reproducible bit for bit.

use crate::config::{OpKind, WorkloadConfig};
use crate::score::{detect_knee, KneePoint, LoadPoint, WorkloadScorer};
use crate::zipf::ZipfSampler;
use fabric_attacks::{ColludingGuardedPdc, MaliciousClient};
use fabric_chaincode::samples::{GuardedPdc, SbeDemo};
use fabric_chaincode::ChaincodeDefinition;
use fabric_client::Client;
use fabric_crypto::Keypair;
use fabric_monitor::Monitor;
use fabric_network::{FabricNetwork, NetworkBuilder};
use fabric_orderer::BatchConfig;
use fabric_telemetry::{SpanRecord, Telemetry, TraceContext, TxTimeline};
use fabric_types::{
    ChaincodeId, ChannelId, CollectionConfig, DefenseConfig, OrgId, Proposal, TxId,
    TxValidationCode,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// Namespace of the private-data (GuardedPdc) chaincode.
pub const GUARDED_NS: &str = "wlguarded";
/// Namespace of the public/SBE (SbeDemo) chaincode.
pub const SBE_NS: &str = "wlsbe";
/// The private collection all PDC lanes write into.
pub const COLLECTION: &str = "WLPDC";

/// Collection-level endorsement policy (also seeded as the key-level
/// policy of every SBE key).
const PDC_POLICY: &str = "AND('Org1MSP.peer','Org2MSP.peer')";
/// Number of public keys carrying a seeded key-level SBE policy.
const SBE_KEYS: u64 = 8;
/// Number of uncontended public-state keys.
const PUBLIC_KEYS: u64 = 64;
/// Keypair-seed base for virtual client identities; disjoint from the
/// seeding and attacker identity spaces below.
const CLIENT_SEED_BASE: u64 = 1 << 32;
/// Keypair seed of the state-seeding client.
const SEEDER_IDENTITY: u64 = 1 << 33;
/// Keypair seed of the colluding attacker.
const ATTACKER_IDENTITY: u64 = (1 << 34) | 0xbad;

fn pdc_key(i: usize) -> String {
    format!("k{i}")
}

fn sbe_key(j: u64) -> String {
    format!("sbe{j}")
}

/// One submitted, not-yet-resolved transaction.
struct InFlight {
    tx_id: TxId,
    trace_id: u64,
    submit_tick: u64,
}

enum Arrival {
    /// Endorsed, assembled, and handed to ordering.
    Submitted { flight: InFlight, adversarial: bool },
    /// Refused at endorsement (BTL-expired read, unknown key, refused
    /// peer) — never reached the orderer.
    RejectedEndorse,
}

/// Deterministic operation generator: one seeded RNG drives lane
/// selection, key skew, identity draws, and fault injection.
struct OpGen {
    rng: StdRng,
    zipf: ZipfSampler,
    channel: ChannelId,
    cfg: WorkloadConfig,
    /// Global proposal nonce: tx IDs derive from (identity, nonce), so a
    /// shared counter keeps IDs unique even when a virtual client
    /// recurs.
    nonce: u64,
    attacker: Option<MaliciousClient>,
}

impl OpGen {
    fn new(cfg: &WorkloadConfig, channel: ChannelId) -> Self {
        let attacker = (cfg.adversarial_fraction > 0.0).then(|| {
            MaliciousClient::new(
                "Org3MSP",
                Keypair::generate_from_seed(ATTACKER_IDENTITY ^ cfg.seed),
            )
        });
        OpGen {
            rng: StdRng::seed_from_u64(cfg.seed),
            zipf: ZipfSampler::new(cfg.key_space, cfg.zipf_skew),
            channel,
            cfg: cfg.clone(),
            nonce: 0,
            attacker,
        }
    }

    fn arrival(&mut self, net: &mut FabricNetwork, tick: u64) -> Arrival {
        if self.cfg.adversarial_fraction > 0.0 && self.rng.gen_bool(self.cfg.adversarial_fraction) {
            return self.adversarial_arrival(net, tick);
        }
        let kind = self
            .cfg
            .mix
            .pick(self.rng.gen_range(0..self.cfg.mix.total()));
        let key = self.zipf.sample(&mut self.rng);
        let vid = self.rng.gen_range(0..self.cfg.virtual_clients.max(1));
        let lose_endorsement = self.cfg.endorser_failure_prob > 0.0
            && self.rng.gen_bool(self.cfg.endorser_failure_prob);

        let (ns, function, args): (&str, &str, Vec<Vec<u8>>) = match kind {
            OpKind::PdcAdd => (
                GUARDED_NS,
                "add",
                vec![pdc_key(key).into_bytes(), b"1".to_vec()],
            ),
            OpKind::PdcWrite => (
                GUARDED_NS,
                "write",
                vec![pdc_key(key).into_bytes(), b"7".to_vec()],
            ),
            OpKind::Public => (
                SBE_NS,
                "put",
                vec![
                    format!("pub{}", vid % PUBLIC_KEYS).into_bytes(),
                    b"1".to_vec(),
                ],
            ),
            OpKind::Sbe => (
                SBE_NS,
                "put",
                vec![sbe_key(key as u64 % SBE_KEYS).into_bytes(), b"1".to_vec()],
            ),
        };

        let org = if vid % 2 == 0 { "Org1MSP" } else { "Org2MSP" };
        let client = Client::new(
            org,
            Keypair::generate_from_seed(CLIENT_SEED_BASE + vid),
            DefenseConfig::hardened(),
        );
        self.nonce += 1;
        let proposal = Proposal::new(
            self.channel.clone(),
            ChaincodeId::new(ns),
            function,
            args,
            BTreeMap::new(),
            client.identity().clone(),
            self.nonce,
        );
        let mut responses = Vec::new();
        for peer in ["peer0.org1", "peer0.org2"] {
            match net.endorse(peer, &proposal) {
                Ok(r) => responses.push(r),
                Err(_) => return Arrival::RejectedEndorse,
            }
            if lose_endorsement {
                // Injected endorser failure: the client gives up on the
                // second endorsement and submits anyway — the policy
                // check at validation is what catches it.
                break;
            }
        }
        let Ok((tx, _)) = client.assemble_transaction(&proposal, &responses) else {
            return Arrival::RejectedEndorse;
        };
        Arrival::Submitted {
            flight: submit(net, tx, tick),
            adversarial: false,
        }
    }

    /// A colluding client from the attack lab: endorsed only by the
    /// non-member org's peer (running [`ColludingGuardedPdc`]), SDK
    /// checks bypassed. Validation audits the non-member endorsement
    /// (Use Case 1) and, under the hardened defense, rejects it.
    fn adversarial_arrival(&mut self, net: &mut FabricNetwork, tick: u64) -> Arrival {
        let key = self.zipf.sample(&mut self.rng);
        let attacker = self.attacker.as_mut().expect("adversarial lane is on");
        let proposal = attacker.create_proposal(
            self.channel.clone(),
            ChaincodeId::new(GUARDED_NS),
            "write",
            vec![pdc_key(key).into_bytes(), b"9999".to_vec()],
            BTreeMap::new(),
        );
        let response = match net.endorse("peer0.org3", &proposal) {
            Ok(r) => r,
            Err(_) => return Arrival::RejectedEndorse,
        };
        match attacker.assemble_unchecked(&proposal, &[response]) {
            Some(tx) => Arrival::Submitted {
                flight: submit(net, tx, tick),
                adversarial: true,
            },
            None => Arrival::RejectedEndorse,
        }
    }
}

fn submit(net: &mut FabricNetwork, tx: fabric_types::Transaction, tick: u64) -> InFlight {
    let tx_id = tx.tx_id.clone();
    let trace_id = TraceContext::for_tx(tx_id.as_str()).trace_id;
    net.submit(tx);
    InFlight {
        tx_id,
        trace_id,
        submit_tick: tick,
    }
}

/// Builds the network under test: two member orgs (plus a non-member
/// third when the adversarial lane is on), the guarded PDC chaincode
/// with a collection-level policy and optional BlockToLive, the SBE
/// demo chaincode, and the colluding chaincode on the attacker's peer.
fn build_network(cfg: &WorkloadConfig, telemetry: &Telemetry, monitor: Monitor) -> FabricNetwork {
    let adversarial = cfg.adversarial_fraction > 0.0;
    let orgs: &[&str] = if adversarial {
        &["Org1MSP", "Org2MSP", "Org3MSP"]
    } else {
        &["Org1MSP", "Org2MSP"]
    };
    let mut net = NetworkBuilder::new("workload")
        .orgs(orgs)
        .seed(cfg.seed)
        .defense(DefenseConfig::hardened())
        .batch(BatchConfig {
            max_message_count: cfg.block_txs.max(1),
            batch_timeout_ticks: 2,
        })
        .parallel_validation(cfg.parallel_validation)
        .with_telemetry(telemetry.clone())
        .with_monitor(monitor)
        .build();

    let mut collection = CollectionConfig::membership_of(
        COLLECTION,
        &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")],
    )
    .with_member_only_read(false)
    .with_endorsement_policy(PDC_POLICY);
    if cfg.block_to_live > 0 {
        collection = collection.with_block_to_live(cfg.block_to_live);
    }
    let guarded_def = ChaincodeDefinition::new(GUARDED_NS)
        .with_endorsement_policy("MAJORITY Endorsement")
        .with_collection(collection);
    net.deploy_chaincode(
        guarded_def.clone(),
        Arc::new(GuardedPdc::unconstrained(COLLECTION)),
    );
    net.deploy_chaincode(
        ChaincodeDefinition::new(SBE_NS).with_endorsement_policy("MAJORITY Endorsement"),
        Arc::new(SbeDemo),
    );
    if adversarial {
        net.install_custom_chaincode(
            "peer0.org3",
            guarded_def,
            Arc::new(ColludingGuardedPdc::new(COLLECTION, 9999)),
        );
    }
    for i in 0..cfg.extra_peers {
        let org = if i % 2 == 0 { "Org1MSP" } else { "Org2MSP" };
        net.add_peer(org);
    }
    net
}

/// Commits the initial world state: every PDC key holds an integer (so
/// `add` has something to read until BlockToLive expires it) and every
/// SBE key exists with a committed key-level endorsement policy.
fn seed_state(net: &mut FabricNetwork, cfg: &WorkloadConfig) {
    let channel = net.channel().clone();
    let mut seeder = Client::new(
        "Org1MSP",
        Keypair::generate_from_seed(SEEDER_IDENTITY ^ cfg.seed),
        DefenseConfig::hardened(),
    );
    let submit_seed = |net: &mut FabricNetwork,
                       seeder: &mut Client,
                       ns: &str,
                       function: &str,
                       args: Vec<Vec<u8>>|
     -> TxId {
        let proposal = seeder.create_proposal(
            channel.clone(),
            ChaincodeId::new(ns),
            function,
            args,
            BTreeMap::new(),
        );
        let r1 = net.endorse("peer0.org1", &proposal).expect("seed endorse");
        let r2 = net.endorse("peer0.org2", &proposal).expect("seed endorse");
        let (tx, _) = seeder
            .assemble_transaction(&proposal, &[r1, r2])
            .expect("seed assemble");
        let tx_id = tx.tx_id.clone();
        net.submit(tx);
        tx_id
    };

    let mut pending = Vec::new();
    for i in 0..cfg.key_space {
        pending.push(submit_seed(
            net,
            &mut seeder,
            GUARDED_NS,
            "write",
            vec![pdc_key(i).into_bytes(), b"10".to_vec()],
        ));
    }
    for j in 0..SBE_KEYS {
        pending.push(submit_seed(
            net,
            &mut seeder,
            SBE_NS,
            "put",
            vec![sbe_key(j).into_bytes(), b"1".to_vec()],
        ));
    }
    wait_all_valid(net, &pending, "seed writes");

    // Key-level policies go in a later block than the puts so the SBE
    // path is exercised by committed state, not in-block re-checks.
    let mut pending = Vec::new();
    for j in 0..SBE_KEYS {
        pending.push(submit_seed(
            net,
            &mut seeder,
            SBE_NS,
            "set_policy",
            vec![sbe_key(j).into_bytes(), PDC_POLICY.as_bytes().to_vec()],
        ));
    }
    wait_all_valid(net, &pending, "SBE policies");
}

fn wait_all_valid(net: &mut FabricNetwork, pending: &[TxId], what: &str) {
    for _ in 0..10_000 {
        if pending
            .iter()
            .all(|id| net.transaction_status(id).is_some())
        {
            for id in pending {
                assert_eq!(
                    net.transaction_status(id),
                    Some(TxValidationCode::Valid),
                    "{what}: seed tx {id} must commit Valid"
                );
            }
            return;
        }
        net.advance(1);
    }
    panic!("{what}: seed transactions did not commit");
}

/// Runs one load point: seeds the network, offers `cfg.ticks` ticks of
/// open-loop arrivals at `cfg.offered_rate`, drains the backlog, and
/// scores the result from the telemetry streams.
pub fn run(cfg: &WorkloadConfig) -> LoadPoint {
    assert!(cfg.mix.total() > 0, "op mix needs at least one lane");
    let telemetry = Telemetry::new();
    let monitor = Monitor::new(&telemetry);
    let mut net = build_network(cfg, &telemetry, monitor);
    seed_state(&mut net, cfg);

    // Score the run against a quiet network: drop seed-phase traces and
    // re-baseline the monitor.
    let sink = telemetry.trace().expect("default telemetry traces");
    sink.clear();
    let run_monitor = net.monitor().expect("monitor attached").clone();
    run_monitor.reset();
    let mut scorer = WorkloadScorer::new(&telemetry, &run_monitor);

    let mut gen = OpGen::new(cfg, net.channel().clone());
    let window = cfg.window_ticks.max(1);
    let drain_budget = 4 * cfg.ticks + 256;

    let mut credit = 0.0_f64;
    let mut tick = 0_u64;
    let mut drain_ticks = 0_u64;
    let mut inflight: VecDeque<InFlight> = VecDeque::new();
    let mut spans_by_trace: HashMap<u64, Vec<SpanRecord>> = HashMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut peak_in_flight = 0_usize;

    let (mut offered, mut submitted, mut adversarial, mut rejected_endorse) =
        (0u64, 0u64, 0u64, 0u64);
    let (mut committed, mut aborted_mvcc, mut invalid_other) = (0u64, 0u64, 0u64);

    loop {
        let offering = tick < cfg.ticks;
        if !offering && (inflight.is_empty() || drain_ticks >= drain_budget) {
            break;
        }
        tick += 1;
        if offering {
            credit += cfg.offered_rate;
            while credit >= 1.0 {
                credit -= 1.0;
                offered += 1;
                match gen.arrival(&mut net, tick) {
                    Arrival::Submitted {
                        flight,
                        adversarial: adv,
                    } => {
                        submitted += 1;
                        if adv {
                            adversarial += 1;
                        }
                        spans_by_trace.entry(flight.trace_id).or_default();
                        inflight.push_back(flight);
                    }
                    Arrival::RejectedEndorse => rejected_endorse += 1,
                }
            }
        } else {
            drain_ticks += 1;
        }
        peak_in_flight = peak_in_flight.max(inflight.len());
        net.advance(1);

        // Route this tick's spans to their in-flight transactions;
        // spans of untracked traces (endorse-rejected arrivals, node
        // housekeeping) are dropped on the floor.
        for record in sink.drain() {
            if let Some(bucket) = spans_by_trace.get_mut(&record.trace_id) {
                bucket.push(record);
            }
        }

        let mut unresolved = VecDeque::with_capacity(inflight.len());
        for flight in inflight.drain(..) {
            match net.transaction_status(&flight.tx_id) {
                None => unresolved.push_back(flight),
                Some(code) => {
                    let spans = spans_by_trace.remove(&flight.trace_id).unwrap_or_default();
                    match code {
                        TxValidationCode::Valid => {
                            committed += 1;
                            latencies.push(tick - flight.submit_tick + 1);
                            TxTimeline::collect(&spans, flight.tx_id.as_str())
                                .record_phase_metrics(telemetry.metrics());
                        }
                        TxValidationCode::MvccReadConflict => aborted_mvcc += 1,
                        _ => invalid_other += 1,
                    }
                }
            }
        }
        inflight = unresolved;

        if tick.is_multiple_of(window) {
            scorer.close_window(tick, &run_monitor, submitted, committed, aborted_mvcc);
        }
    }
    if !tick.is_multiple_of(window) || tick == 0 {
        scorer.close_window(tick, &run_monitor, submitted, committed, aborted_mvcc);
    }

    let unresolved = inflight.len() as u64;
    latencies.sort_unstable();
    let lat = |q: f64| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            latencies[(((latencies.len() - 1) as f64) * q).round() as usize]
        }
    };

    let windows = scorer.into_windows();
    let mut audit_events: BTreeMap<String, u64> = BTreeMap::new();
    let mut alerts: Vec<String> = Vec::new();
    for w in &windows {
        for (kind, n) in &w.audit {
            *audit_events.entry(kind.clone()).or_insert(0) += n;
        }
        alerts.extend(w.alerts_fired.iter().cloned());
    }
    alerts.sort();
    alerts.dedup();

    let mut phase_p50_ms = BTreeMap::new();
    let mut phase_p99_ms = BTreeMap::new();
    for phase in fabric_telemetry::PHASES {
        if let Some(h) = telemetry
            .metrics()
            .find_histogram("fabric_tx_phase_seconds", &[("phase", phase)])
        {
            if let Some(p50) = h.quantile(0.5) {
                phase_p50_ms.insert(phase.to_string(), p50 * 1e3);
            }
            if let Some(p99) = h.quantile(0.99) {
                phase_p99_ms.insert(phase.to_string(), p99 * 1e3);
            }
        }
    }

    let total_ticks = (cfg.ticks + drain_ticks).max(1);
    LoadPoint {
        offered_rate: cfg.offered_rate,
        ticks: cfg.ticks,
        drain_ticks,
        block_capacity_per_tick: cfg.block_txs as u64,
        offered,
        submitted,
        adversarial,
        rejected_endorse,
        committed,
        aborted_mvcc,
        invalid_other,
        unresolved,
        peak_in_flight,
        goodput_per_tick: committed as f64 / total_ticks as f64,
        abort_rate: if submitted > 0 {
            aborted_mvcc as f64 / submitted as f64
        } else {
            0.0
        },
        latency_ticks_p50: lat(0.5),
        latency_ticks_p99: lat(0.99),
        audit_events,
        alerts,
        phase_p50_ms,
        phase_p99_ms,
        windows,
    }
}

/// One latency-vs-load curve: the same workload shape swept across
/// ascending offered rates, with the detected saturation knee.
#[derive(Debug, Clone)]
pub struct SweepCurve {
    /// Curve label for rendering (e.g. `skew0.99/pdc-heavy/2peers`).
    pub label: String,
    /// The base configuration (offered_rate is overridden per point).
    pub config: WorkloadConfig,
    /// One load point per offered rate, ascending.
    pub points: Vec<LoadPoint>,
    /// First saturated point, if the sweep reached saturation.
    pub knee: Option<KneePoint>,
}

/// Sweeps `base` across `rates` (each point runs on a fresh network)
/// and detects the knee.
pub fn run_sweep(label: &str, base: &WorkloadConfig, rates: &[f64]) -> SweepCurve {
    let mut points = Vec::with_capacity(rates.len());
    for &rate in rates {
        let mut cfg = base.clone();
        cfg.offered_rate = rate;
        points.push(run(&cfg));
    }
    let knee = detect_knee(&points);
    SweepCurve {
        label: label.to_string(),
        config: base.clone(),
        points,
        knee,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OpMix;

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            seed: 11,
            extra_peers: 0,
            virtual_clients: 1_000,
            key_space: 16,
            zipf_skew: 0.9,
            mix: OpMix::pdc_heavy(),
            offered_rate: 2.0,
            ticks: 40,
            window_ticks: 20,
            block_txs: 4,
            block_to_live: 0,
            endorser_failure_prob: 0.1,
            adversarial_fraction: 0.1,
            parallel_validation: false,
        }
    }

    #[test]
    fn small_mixed_run_commits_and_accounts_for_every_arrival() {
        let point = run(&small_cfg());
        assert_eq!(point.offered, 80, "open loop offers rate x ticks arrivals");
        assert_eq!(
            point.offered,
            point.submitted + point.rejected_endorse,
            "every arrival is either submitted or endorse-rejected"
        );
        assert_eq!(
            point.submitted,
            point.committed + point.aborted_mvcc + point.invalid_other + point.unresolved,
            "every submitted tx resolves exactly once"
        );
        assert!(point.committed > 0, "honest traffic commits: {point:?}");
        assert!(
            point.adversarial > 0 && point.invalid_other > 0,
            "the adversarial lane submits and gets rejected: {point:?}"
        );
        assert!(
            point
                .audit_events
                .get("endorsement_by_non_member")
                .copied()
                .unwrap_or(0)
                > 0,
            "non-member endorsements are audited: {:?}",
            point.audit_events
        );
        assert!(point.latency_ticks_p50 >= 1);
        assert!(point.windows.len() >= 2, "windowed samples accumulate");
    }

    #[test]
    fn btl_expiry_rejects_adds_on_cold_keys() {
        let mut cfg = small_cfg();
        cfg.adversarial_fraction = 0.0;
        cfg.endorser_failure_prob = 0.0;
        cfg.block_to_live = 4;
        cfg.zipf_skew = 2.0; // hot head: the tail goes cold and expires
        cfg.ticks = 120;
        cfg.window_ticks = 40;
        cfg.mix = OpMix {
            pdc_add: 80,
            pdc_write: 20,
            public: 0,
            sbe: 0,
        };
        let point = run(&cfg);
        assert!(
            point.rejected_endorse > 0,
            "adds on BTL-expired keys are refused at endorsement: {point:?}"
        );
        assert!(point.committed > 0, "hot keys stay alive: {point:?}");
    }
}
