//! Telemetry-scored open-loop load harness.
//!
//! Reproduces the methodology behind the paper's latency-vs-load
//! figures (Figs. 7–10 of "On Private Data Collection of Hyperledger
//! Fabric", ICDCS 2021): offer traffic at fixed arrival rates
//! regardless of completions, measure per-phase latency and goodput at
//! each rate, and locate the saturation knee where latency inflates
//! super-linearly or goodput stops tracking offered load.
//!
//! Three pieces:
//!
//! * [`WorkloadConfig`] / [`OpMix`] — the workload shape: arrival rate,
//!   operation mix (contended PDC read-modify-writes, blind PDC writes,
//!   public puts, SBE-governed puts), Zipfian key skew, BlockToLive
//!   expiry churn, endorser-failure injection, and an adversarial lane
//!   that blends attack-lab clients into honest traffic.
//! * [`run`] / [`run_sweep`] — the open-loop driver: a fractional
//!   credit accumulator schedules arrivals per logical tick, the
//!   network advances one tick at a time, and commits/aborts resolve
//!   against the ledger. Everything tick-denominated is deterministic
//!   per seed, including across the validation-parallelism knob.
//! * [`WorkloadScorer`] / [`LoadPoint`] / [`detect_knee`] — scoring
//!   from the telemetry streams a deployment would export: reset-free
//!   `fabric_tx_phase_seconds` window deltas, audit-event rates, and
//!   fabric-monitor alert transitions, aggregated into per-rate rows
//!   and a named-bottleneck knee.

mod config;
mod harness;
mod score;
mod zipf;

pub use config::{OpKind, OpMix, WorkloadConfig};
pub use harness::{run, run_sweep, SweepCurve, COLLECTION, GUARDED_NS, SBE_NS};
pub use score::{detect_knee, KneePoint, LoadPoint, WindowSample, WorkloadScorer};
pub use zipf::ZipfSampler;
