//! Zipfian key sampling with a precomputed CDF.
//!
//! Load generators skew key popularity to model real contention: a few
//! hot keys absorb most writes while a long tail stays cold. The
//! sampler draws from a Zipf(s) distribution over `0..n` where key `i`
//! has weight `1 / (i + 1)^s`; `s = 0` degenerates to uniform. The CDF
//! is computed once up front so sampling is one uniform draw plus a
//! binary search — cheap enough to sit inside the per-tick arrival loop.
//!
//! The vendored `rand` subset only samples integer ranges, so the
//! uniform unit draw derives 53 mantissa bits from `next_u64` directly
//! (the same construction `gen_bool` uses).

use rand::RngCore;

/// Draws key indices from `0..n` with Zipfian skew.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// `cdf[i]` = P(key <= i); the last entry is exactly 1.0.
    cdf: Vec<f64>,
    skew: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `n` keys (clamped to at least 1) with
    /// exponent `skew >= 0`.
    pub fn new(n: usize, skew: f64) -> Self {
        let n = n.max(1);
        assert!(skew >= 0.0, "zipf skew must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(skew);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        // Pin the top so a unit draw of exactly 1.0 - eps can't fall off
        // the end through rounding.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf, skew }
    }

    /// Number of keys in the sampled range.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True only for the degenerate single-key sampler.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The skew exponent the sampler was built with.
    pub fn skew(&self) -> f64 {
        self.skew
    }

    /// Draws one key index in `0..len()`.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // First bucket whose cumulative probability covers the draw.
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&unit).expect("cdf is NaN-free"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(sampler: &ZipfSampler, draws: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; sampler.len()];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let sampler = ZipfSampler::new(16, 0.0);
        let counts = histogram(&sampler, 32_000, 7);
        let expected = 32_000 / 16;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < expected as u64 / 2,
                "bucket {i} count {c} too far from uniform {expected}"
            );
        }
    }

    #[test]
    fn high_skew_concentrates_on_the_head() {
        let sampler = ZipfSampler::new(128, 0.99);
        let counts = histogram(&sampler, 32_000, 7);
        // At s = 0.99 over 128 keys the top-4 mass is ~0.38 while the
        // entire 64-key tail holds ~0.13.
        let head: usize = counts[..4].iter().sum();
        let tail: usize = counts[64..].iter().sum();
        assert!(
            head > 2 * tail.max(1),
            "head {head} should dwarf tail {tail} at skew 0.99"
        );
        assert!(counts[0] > counts[8] && counts[8] >= counts[64]);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let sampler = ZipfSampler::new(64, 0.8);
        assert_eq!(
            histogram(&sampler, 1_000, 42),
            histogram(&sampler, 1_000, 42)
        );
        assert_ne!(
            histogram(&sampler, 1_000, 42),
            histogram(&sampler, 1_000, 43)
        );
    }

    #[test]
    fn single_key_sampler_always_returns_zero() {
        let sampler = ZipfSampler::new(1, 3.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 0);
        }
    }
}
