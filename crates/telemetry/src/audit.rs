//! Typed security-audit events for the PDC attack surface.
//!
//! Each [`AuditEvent`] variant maps onto a signal from the paper ("On
//! Private Data Collection of Hyperledger Fabric", ICDCS 2021):
//!
//! * [`AuditEvent::EndorsementByNonMember`] — Use Case 1: a transaction
//!   carries an endorsement from an org that is not a member of a
//!   private data collection it touches (the fake-PDC injection tell).
//! * [`AuditEvent::PolicyFallbackToChaincodeLevel`] — Use Case 2: a
//!   collection was validated against the chaincode-level policy because
//!   no collection-level endorsement policy is configured.
//! * [`AuditEvent::PlaintextPayloadInTx`] — Use Case 3: a committed
//!   transaction that touches a collection carries a plaintext response
//!   payload, leaking private data onto the public ledger.
//! * [`AuditEvent::MvccConflict`] / [`AuditEvent::SbeReCheck`] —
//!   validation-pipeline visibility: version conflicts and the stateful
//!   re-checks triggered by mid-block state-based-endorsement changes.
//! * [`AuditEvent::DefenseRejected`] — the paper's New Features in
//!   action: a transaction rejected by a supplemental defense.
//!
//! Events are recorded in **block order** by the sequential merge stage
//! of the validation pipeline, so parallel and sequential validation
//! emit identical sequences (asserted by `tests/pipeline_equivalence.rs`).

use fabric_types::{ChaincodeId, CollectionName, OrgId, TxId, TxValidationCode};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;

/// A security-relevant event observed during endorsement or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditEvent {
    /// An endorsement on a collection-touching transaction came from an
    /// org outside the collection's membership (Use Case 1).
    EndorsementByNonMember {
        /// Transaction carrying the endorsement.
        tx_id: TxId,
        /// Collection whose membership the endorser is outside of.
        collection: CollectionName,
        /// The non-member endorsing org.
        endorser_org: OrgId,
    },
    /// A touched collection has no collection-level endorsement policy,
    /// so validation fell back to the chaincode-level policy (Use Case 2).
    PolicyFallbackToChaincodeLevel {
        /// Transaction being validated.
        tx_id: TxId,
        /// Chaincode whose policy was used as the fallback.
        chaincode: ChaincodeId,
        /// Collection lacking its own policy.
        collection: CollectionName,
    },
    /// A collection-touching transaction committed with a plaintext
    /// response payload (Use Case 3).
    PlaintextPayloadInTx {
        /// Transaction with the plaintext payload.
        tx_id: TxId,
        /// Chaincode that produced the payload.
        chaincode: ChaincodeId,
        /// Size of the leaked payload in bytes.
        payload_bytes: usize,
    },
    /// A transaction was invalidated by an MVCC read-version conflict.
    MvccConflict {
        /// Conflicting transaction.
        tx_id: TxId,
        /// Chaincode whose read set conflicted.
        chaincode: ChaincodeId,
    },
    /// A mid-block state-based-endorsement change forced a stateful
    /// policy re-check of this transaction.
    SbeReCheck {
        /// Re-checked transaction.
        tx_id: TxId,
        /// Chaincode owning the dirty key-level policy parameter.
        chaincode: ChaincodeId,
        /// Validation code after the re-check.
        outcome: TxValidationCode,
    },
    /// A supplemental defense (the paper's New Features) rejected the
    /// transaction.
    DefenseRejected {
        /// Rejected transaction.
        tx_id: TxId,
        /// The rejection code the defense produced.
        code: TxValidationCode,
    },
}

impl AuditEvent {
    /// The variant's stable kind label (used as a metric label value).
    pub fn kind(&self) -> &'static str {
        match self {
            AuditEvent::EndorsementByNonMember { .. } => "endorsement_by_non_member",
            AuditEvent::PolicyFallbackToChaincodeLevel { .. } => {
                "policy_fallback_to_chaincode_level"
            }
            AuditEvent::PlaintextPayloadInTx { .. } => "plaintext_payload_in_tx",
            AuditEvent::MvccConflict { .. } => "mvcc_conflict",
            AuditEvent::SbeReCheck { .. } => "sbe_re_check",
            AuditEvent::DefenseRejected { .. } => "defense_rejected",
        }
    }

    /// Transaction the event is about.
    pub fn tx_id(&self) -> &TxId {
        match self {
            AuditEvent::EndorsementByNonMember { tx_id, .. }
            | AuditEvent::PolicyFallbackToChaincodeLevel { tx_id, .. }
            | AuditEvent::PlaintextPayloadInTx { tx_id, .. }
            | AuditEvent::MvccConflict { tx_id, .. }
            | AuditEvent::SbeReCheck { tx_id, .. }
            | AuditEvent::DefenseRejected { tx_id, .. } => tx_id,
        }
    }
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditEvent::EndorsementByNonMember {
                tx_id,
                collection,
                endorser_org,
            } => write!(
                f,
                "{}: tx {tx_id} endorsed by {endorser_org}, not a member of {collection}",
                self.kind()
            ),
            AuditEvent::PolicyFallbackToChaincodeLevel {
                tx_id,
                chaincode,
                collection,
            } => write!(
                f,
                "{}: tx {tx_id} collection {collection} validated under {chaincode}'s chaincode-level policy",
                self.kind()
            ),
            AuditEvent::PlaintextPayloadInTx {
                tx_id,
                chaincode,
                payload_bytes,
            } => write!(
                f,
                "{}: tx {tx_id} ({chaincode}) committed {payload_bytes} plaintext payload bytes",
                self.kind()
            ),
            AuditEvent::MvccConflict { tx_id, chaincode } => {
                write!(f, "{}: tx {tx_id} ({chaincode})", self.kind())
            }
            AuditEvent::SbeReCheck {
                tx_id,
                chaincode,
                outcome,
            } => write!(
                f,
                "{}: tx {tx_id} ({chaincode}) re-checked, outcome {outcome}",
                self.kind()
            ),
            AuditEvent::DefenseRejected { tx_id, code } => {
                write!(f, "{}: tx {tx_id} rejected with {code}", self.kind())
            }
        }
    }
}

/// Thread-safe, append-only log of emitted [`AuditEvent`]s.
#[derive(Debug, Default)]
pub struct AuditLog {
    events: Mutex<Vec<AuditEvent>>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&self, event: AuditEvent) {
        self.events.lock().push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Clones out all events in emission order.
    pub fn events(&self) -> Vec<AuditEvent> {
        self.events.lock().clone()
    }

    /// Clones out events recorded at index `from` onward — for diffing
    /// "what fired during this operation".
    pub fn events_since(&self, from: usize) -> Vec<AuditEvent> {
        let events = self.events.lock();
        events.get(from..).unwrap_or(&[]).to_vec()
    }

    /// Event counts grouped by [`AuditEvent::kind`].
    pub fn counts_by_kind(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for event in self.events.lock().iter() {
            *counts.entry(event.kind()).or_insert(0) += 1;
        }
        counts
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}
