//! Structured tracing: spans with monotonic timing and key-value fields.
//!
//! A [`SpanGuard`] measures the region between its creation (via
//! [`crate::Telemetry::span`] or [`SpanGuard::child`]) and its drop, then
//! hands the finished [`SpanRecord`] to the telemetry's [`Collector`].
//! The in-memory [`TraceSink`] collector retains records and renders a
//! flamegraph-style text tree ([`TraceSink::render_tree`]).

use crate::audit::AuditEvent;
use crate::metrics::Counter;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// A finished span as delivered to a [`Collector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within one [`crate::Telemetry`] instance.
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name, e.g. `peer.process_block`.
    pub name: String,
    /// Key-value annotations attached while the span was open.
    pub fields: Vec<(String, String)>,
    /// Start offset from the telemetry instance's epoch (monotonic).
    pub start: Duration,
    /// Wall time between span open and close.
    pub duration: Duration,
    /// Cross-node trace id ([`crate::TraceContext`]); 0 = untraced.
    pub trace_id: u64,
    /// Name of the node that emitted the span; empty = unattributed.
    pub node: String,
}

/// Receives finished spans and emitted audit events.
///
/// Implementations must be cheap and non-blocking: collectors run inline
/// on validation hot paths.
pub trait Collector: Send + Sync {
    /// Called when a span closes.
    fn span_finished(&self, record: SpanRecord);

    /// Called for every emitted audit event (default: ignore).
    fn audit_event(&self, event: &AuditEvent) {
        let _ = event;
    }

    /// Called when the commit pipeline starts merging a new block
    /// (default: ignore). Lets collectors scope per-block state — the
    /// flight recorder uses it to dedup repeated dump triggers within
    /// one block.
    fn block_boundary(&self) {}
}

/// A collector that discards everything (for overhead measurement and
/// telemetry-disabled-but-wired configurations).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopCollector;

impl Collector for NoopCollector {
    fn span_finished(&self, _record: SpanRecord) {}
}

/// Thread-safe in-memory span store; the default collector.
///
/// Retention is bounded: once `capacity` records are held, each new
/// span evicts the oldest one (counted in [`TraceSink::evicted`] and,
/// when wired by [`crate::Telemetry`], mirrored into the
/// `fabric_trace_spans_evicted_total` counter). Consumers that need
/// every span — the workload scorer resolving [`crate::TxTimeline`]s
/// under sustained load — should [`TraceSink::drain`] incrementally
/// instead of letting a million-tx sweep pile up in memory.
#[derive(Debug)]
pub struct TraceSink {
    spans: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    evicted: AtomicU64,
    eviction_counter: OnceLock<Counter>,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// Default retention cap used by [`crate::Telemetry::new`]: deep
    /// enough for any single-block forensic window, shallow enough that
    /// an unconsumed sweep stays tens of megabytes, not unbounded.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates an empty sink with the default retention cap.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates an empty sink retaining at most `capacity` records
    /// (clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            spans: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            evicted: AtomicU64::new(0),
            eviction_counter: OnceLock::new(),
        }
    }

    /// Retention cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records evicted to honor the cap since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Mirrors evictions into a registry-exported counter (first call
    /// wins; later calls are ignored). [`crate::Telemetry`] wires this
    /// to `fabric_trace_spans_evicted_total`.
    pub fn set_eviction_counter(&self, counter: Counter) {
        let _ = self.eviction_counter.set(counter);
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// True when no span has finished yet.
    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }

    /// Clones out all retained records in completion order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.spans.lock().iter().cloned().collect()
    }

    /// Removes and returns all retained records in completion order.
    ///
    /// This is the incremental-consumption hook: a scorer that drains
    /// every logical tick sees each span exactly once and keeps the
    /// sink's retention (and the eviction counter) at zero no matter
    /// how long the load run is.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.spans.lock().drain(..).collect()
    }

    /// Drops all retained records.
    pub fn clear(&self) {
        self.spans.lock().clear();
    }

    /// Renders the retained spans as an indented tree, one root per
    /// top-level span, with durations and percent-of-root shares —
    /// a text-mode flamegraph.
    pub fn render_tree(&self) -> String {
        let mut records = self.records();
        records.sort_by_key(|r| r.start);
        let mut out = String::new();
        let roots: Vec<&SpanRecord> = records.iter().filter(|r| r.parent.is_none()).collect();
        for root in roots {
            render_node(&mut out, &records, root, root.duration, 0);
        }
        out
    }
}

fn render_node(
    out: &mut String,
    records: &[SpanRecord],
    node: &SpanRecord,
    root_duration: Duration,
    depth: usize,
) {
    let indent = "  ".repeat(depth);
    let mut line = format!("{indent}{}", node.name);
    if !node.fields.is_empty() {
        line.push_str(" [");
        for (i, (k, v)) in node.fields.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            let _ = write!(line, "{k}={v}");
        }
        line.push(']');
    }
    let pad = 48usize.saturating_sub(line.len()).max(1);
    let share = if root_duration.as_nanos() == 0 || depth == 0 {
        String::new()
    } else {
        format!(
            "  ({:.1}%)",
            100.0 * node.duration.as_secs_f64() / root_duration.as_secs_f64()
        )
    };
    let _ = writeln!(
        out,
        "{line} {} {:>10.3?}{share}",
        ".".repeat(pad),
        node.duration
    );
    for child in records.iter().filter(|r| r.parent == Some(node.id)) {
        render_node(out, records, child, root_duration, depth + 1);
    }
}

impl Collector for TraceSink {
    fn span_finished(&self, record: SpanRecord) {
        let mut spans = self.spans.lock();
        if spans.len() >= self.capacity {
            spans.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
            if let Some(counter) = self.eviction_counter.get() {
                counter.inc();
            }
        }
        spans.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_retains_records() {
        let sink = TraceSink::new();
        assert!(sink.is_empty());
        sink.span_finished(SpanRecord {
            id: 1,
            parent: None,
            name: "root".into(),
            fields: vec![("k".into(), "v".into())],
            start: Duration::ZERO,
            duration: Duration::from_millis(10),
            trace_id: 0,
            node: String::new(),
        });
        sink.span_finished(SpanRecord {
            id: 2,
            parent: Some(1),
            name: "child".into(),
            fields: vec![],
            start: Duration::from_millis(1),
            duration: Duration::from_millis(5),
            trace_id: 0,
            node: String::new(),
        });
        assert_eq!(sink.len(), 2);
        let tree = sink.render_tree();
        assert!(tree.contains("root [k=v]"), "{tree}");
        assert!(tree.contains("  child"), "{tree}");
        assert!(tree.contains("(50.0%)"), "{tree}");
    }

    fn span(id: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: None,
            name: format!("s{id}"),
            fields: vec![],
            start: Duration::from_millis(id),
            duration: Duration::from_millis(1),
            trace_id: 0,
            node: String::new(),
        }
    }

    #[test]
    fn bounded_sink_evicts_oldest_and_counts_evictions() {
        let sink = TraceSink::with_capacity(3);
        assert_eq!(sink.capacity(), 3);
        for i in 1..=5 {
            sink.span_finished(span(i));
        }
        assert_eq!(sink.len(), 3, "retention cap holds under overflow");
        assert_eq!(sink.evicted(), 2);
        let ids: Vec<u64> = sink.records().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 4, 5], "oldest records are the ones evicted");
    }

    #[test]
    fn drain_consumes_each_record_exactly_once() {
        let sink = TraceSink::with_capacity(8);
        sink.span_finished(span(1));
        sink.span_finished(span(2));
        let first: Vec<u64> = sink.drain().iter().map(|r| r.id).collect();
        assert_eq!(first, vec![1, 2]);
        assert!(sink.is_empty());
        sink.span_finished(span(3));
        let second: Vec<u64> = sink.drain().iter().map(|r| r.id).collect();
        assert_eq!(second, vec![3], "a second drain sees only new records");
        assert_eq!(
            sink.evicted(),
            0,
            "incremental drains never trip the retention cap"
        );
    }

    #[test]
    fn eviction_counter_mirrors_into_exported_metric() {
        let registry = crate::MetricsRegistry::new();
        let counter = registry.counter("fabric_trace_spans_evicted_total", "evictions", &[]);
        let sink = TraceSink::with_capacity(1);
        sink.set_eviction_counter(counter.clone());
        sink.span_finished(span(1));
        assert_eq!(counter.get(), 0, "filling to the cap is not an eviction");
        sink.span_finished(span(2));
        sink.span_finished(span(3));
        assert_eq!(sink.evicted(), 2);
        assert_eq!(counter.get(), 2, "metric mirrors the sink's counter");
    }
}
