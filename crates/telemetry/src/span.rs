//! Structured tracing: spans with monotonic timing and key-value fields.
//!
//! A [`SpanGuard`] measures the region between its creation (via
//! [`crate::Telemetry::span`] or [`SpanGuard::child`]) and its drop, then
//! hands the finished [`SpanRecord`] to the telemetry's [`Collector`].
//! The in-memory [`TraceSink`] collector retains records and renders a
//! flamegraph-style text tree ([`TraceSink::render_tree`]).

use crate::audit::AuditEvent;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::time::Duration;

/// A finished span as delivered to a [`Collector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within one [`crate::Telemetry`] instance.
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name, e.g. `peer.process_block`.
    pub name: String,
    /// Key-value annotations attached while the span was open.
    pub fields: Vec<(String, String)>,
    /// Start offset from the telemetry instance's epoch (monotonic).
    pub start: Duration,
    /// Wall time between span open and close.
    pub duration: Duration,
    /// Cross-node trace id ([`crate::TraceContext`]); 0 = untraced.
    pub trace_id: u64,
    /// Name of the node that emitted the span; empty = unattributed.
    pub node: String,
}

/// Receives finished spans and emitted audit events.
///
/// Implementations must be cheap and non-blocking: collectors run inline
/// on validation hot paths.
pub trait Collector: Send + Sync {
    /// Called when a span closes.
    fn span_finished(&self, record: SpanRecord);

    /// Called for every emitted audit event (default: ignore).
    fn audit_event(&self, event: &AuditEvent) {
        let _ = event;
    }

    /// Called when the commit pipeline starts merging a new block
    /// (default: ignore). Lets collectors scope per-block state — the
    /// flight recorder uses it to dedup repeated dump triggers within
    /// one block.
    fn block_boundary(&self) {}
}

/// A collector that discards everything (for overhead measurement and
/// telemetry-disabled-but-wired configurations).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopCollector;

impl Collector for NoopCollector {
    fn span_finished(&self, _record: SpanRecord) {}
}

/// Thread-safe in-memory span store; the default collector.
#[derive(Debug, Default)]
pub struct TraceSink {
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// True when no span has finished yet.
    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }

    /// Clones out all retained records in completion order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.spans.lock().clone()
    }

    /// Drops all retained records.
    pub fn clear(&self) {
        self.spans.lock().clear();
    }

    /// Renders the retained spans as an indented tree, one root per
    /// top-level span, with durations and percent-of-root shares —
    /// a text-mode flamegraph.
    pub fn render_tree(&self) -> String {
        let mut records = self.records();
        records.sort_by_key(|r| r.start);
        let mut out = String::new();
        let roots: Vec<&SpanRecord> = records.iter().filter(|r| r.parent.is_none()).collect();
        for root in roots {
            render_node(&mut out, &records, root, root.duration, 0);
        }
        out
    }
}

fn render_node(
    out: &mut String,
    records: &[SpanRecord],
    node: &SpanRecord,
    root_duration: Duration,
    depth: usize,
) {
    let indent = "  ".repeat(depth);
    let mut line = format!("{indent}{}", node.name);
    if !node.fields.is_empty() {
        line.push_str(" [");
        for (i, (k, v)) in node.fields.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            let _ = write!(line, "{k}={v}");
        }
        line.push(']');
    }
    let pad = 48usize.saturating_sub(line.len()).max(1);
    let share = if root_duration.as_nanos() == 0 || depth == 0 {
        String::new()
    } else {
        format!(
            "  ({:.1}%)",
            100.0 * node.duration.as_secs_f64() / root_duration.as_secs_f64()
        )
    };
    let _ = writeln!(
        out,
        "{line} {} {:>10.3?}{share}",
        ".".repeat(pad),
        node.duration
    );
    for child in records.iter().filter(|r| r.parent == Some(node.id)) {
        render_node(out, records, child, root_duration, depth + 1);
    }
}

impl Collector for TraceSink {
    fn span_finished(&self, record: SpanRecord) {
        self.spans.lock().push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_retains_records() {
        let sink = TraceSink::new();
        assert!(sink.is_empty());
        sink.span_finished(SpanRecord {
            id: 1,
            parent: None,
            name: "root".into(),
            fields: vec![("k".into(), "v".into())],
            start: Duration::ZERO,
            duration: Duration::from_millis(10),
            trace_id: 0,
            node: String::new(),
        });
        sink.span_finished(SpanRecord {
            id: 2,
            parent: Some(1),
            name: "child".into(),
            fields: vec![],
            start: Duration::from_millis(1),
            duration: Duration::from_millis(5),
            trace_id: 0,
            node: String::new(),
        });
        assert_eq!(sink.len(), 2);
        let tree = sink.render_tree();
        assert!(tree.contains("root [k=v]"), "{tree}");
        assert!(tree.contains("  child"), "{tree}");
        assert!(tree.contains("(50.0%)"), "{tree}");
    }
}
