//! Observability for the Fabric PDC model: tracing spans, a metrics
//! registry, and a typed security-audit event stream.
//!
//! One [`Telemetry`] handle bundles the three surfaces and is shared
//! (cheap `Arc` clone) by every node in a network — attach it with
//! `NetworkBuilder::with_telemetry` and all peers and the orderer report
//! into the same registry:
//!
//! * **Spans** ([`Telemetry::span`]) time pipeline stages with monotonic
//!   clocks and land in a pluggable [`Collector`] (default: the
//!   in-memory [`TraceSink`], which renders a flamegraph-style tree).
//! * **Metrics** ([`Telemetry::metrics`]) are counters, gauges, and
//!   fixed-bucket histograms with Prometheus-text and JSON exporters.
//! * **Audit events** ([`Telemetry::emit`]) are typed records of the
//!   paper's attack signals — see [`AuditEvent`] for the mapping onto
//!   Use Cases 1–3 and the New Features.
//!
//! On top of the span stream sit the per-request tools: a
//! [`TraceContext`] propagated across nodes keys every span of one
//! transaction into a single causal tree (deterministic trace ids derived
//! from tx ids), a [`TxTimeline`] assembles those spans into the five
//! derived phase latencies (endorse / order / replicate / validate /
//! commit), a [`FlightRecorder`] keeps a bounded ring of recent
//! spans+events and dumps it when an attack signal fires, and
//! [`render_chrome_trace`] exports any span set for Perfetto /
//! `chrome://tracing`.
//!
//! # Examples
//!
//! ```
//! use fabric_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! let requests = telemetry
//!     .metrics()
//!     .counter("requests_total", "Total requests", &[("kind", "demo")]);
//! {
//!     let mut span = telemetry.span("handle_request");
//!     span.field("kind", "demo");
//!     requests.inc();
//! } // span records on drop
//! assert_eq!(requests.get(), 1);
//! assert_eq!(telemetry.trace().expect("in-memory sink").len(), 1);
//! assert!(telemetry.metrics().render_prometheus().contains("requests_total"));
//! ```

mod audit;
mod export;
mod metrics;
mod recorder;
mod span;
mod timeline;
mod trace;

pub use audit::{AuditEvent, AuditLog};
pub use export::{render_chrome_trace, render_spans_jsonl};
pub use metrics::{
    Counter, CounterWindow, Gauge, Histogram, HistogramSnapshot, HistogramWindow, MetricSample,
    MetricValue, MetricsRegistry, DURATION_SECONDS_BUCKETS, TICK_BUCKETS,
};
pub use recorder::{FlightDump, FlightEntry, FlightRecorder};
pub use span::{Collector, NoopCollector, SpanRecord, TraceSink};
pub use timeline::{TxTimeline, PHASES, PHASE_SECONDS_BUCKETS};
pub use trace::TraceContext;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A shared handle to one telemetry pipeline: metrics registry, span
/// collector, and audit log. Clones share state.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

struct Inner {
    metrics: MetricsRegistry,
    audit: AuditLog,
    /// Retained only when the collector is the default in-memory sink,
    /// so [`Telemetry::trace`] can render reports.
    sink: Option<Arc<TraceSink>>,
    /// Retained when spans route through a flight recorder, so
    /// [`Telemetry::flight_recorder`] can read dumps back.
    recorder: Option<Arc<FlightRecorder>>,
    collector: Arc<dyn Collector>,
    /// False for [`Telemetry::noop`]: spans skip allocation, id
    /// assignment, and collector dispatch entirely (timing via
    /// [`SpanGuard::elapsed`] still works).
    enabled: bool,
    epoch: Instant,
    next_span_id: AtomicU64,
    /// Per-kind `fabric_audit_events_total` handles, resolved once —
    /// [`Telemetry::emit`] sits on the sequential commit path.
    audit_counters: [OnceLock<Counter>; 6],
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Creates a telemetry pipeline collecting spans into an in-memory
    /// [`TraceSink`].
    pub fn new() -> Self {
        let sink = Arc::new(TraceSink::new());
        let mut t = Self::with_collector(sink.clone());
        Arc::get_mut(&mut t.inner).expect("freshly created").sink = Some(sink);
        t.export_sink_evictions();
        t
    }

    /// Creates a telemetry pipeline that discards spans (metrics and the
    /// audit log still work). Used to measure instrumentation overhead.
    pub fn noop() -> Self {
        let mut t = Self::with_collector(Arc::new(NoopCollector));
        Arc::get_mut(&mut t.inner).expect("freshly created").enabled = false;
        t
    }

    /// Creates a telemetry pipeline whose spans and audit events route
    /// through a [`FlightRecorder`] ring of `capacity` recent entries
    /// (backed by an in-memory [`TraceSink`], so [`Telemetry::trace`]
    /// still works). The recorder snapshots the ring automatically when
    /// one of the paper's attack signals fires — see
    /// [`FlightRecorder::dumps`].
    pub fn with_flight_recorder(capacity: usize) -> Self {
        let sink = Arc::new(TraceSink::new());
        let recorder = Arc::new(FlightRecorder::new(capacity, sink.clone()));
        let mut t = Self::with_collector(recorder.clone());
        let inner = Arc::get_mut(&mut t.inner).expect("freshly created");
        inner.sink = Some(sink);
        inner.recorder = Some(recorder);
        t.export_sink_evictions();
        t
    }

    /// Creates a telemetry pipeline with a custom span/audit collector.
    pub fn with_collector(collector: Arc<dyn Collector>) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                metrics: MetricsRegistry::new(),
                audit: AuditLog::new(),
                sink: None,
                recorder: None,
                collector,
                enabled: true,
                epoch: Instant::now(),
                next_span_id: AtomicU64::new(1),
                audit_counters: Default::default(),
            }),
        }
    }

    /// Mirrors the in-memory sink's retention evictions into the
    /// registry-exported `fabric_trace_spans_evicted_total` counter, so
    /// dashboards can see when a sustained load run outpaces trace
    /// consumption.
    fn export_sink_evictions(&self) {
        if let Some(sink) = self.inner.sink.as_deref() {
            sink.set_eviction_counter(self.inner.metrics.counter(
                "fabric_trace_spans_evicted_total",
                "Trace spans evicted to honor the sink's retention cap",
                &[],
            ));
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The shared audit-event log.
    pub fn audit(&self) -> &AuditLog {
        &self.inner.audit
    }

    /// The in-memory trace sink, when the default collector is in use.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.inner.sink.as_deref()
    }

    /// The flight recorder, when one was configured via
    /// [`Telemetry::with_flight_recorder`].
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.inner.recorder.as_deref()
    }

    /// False for [`Telemetry::noop`]: span guards become zero-cost
    /// timers. Callers can gate optional per-tx spans on this.
    pub fn tracing_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// True when `other` is a clone of this handle (same registry, audit
    /// log, and collector). Lets wiring code detect two *different*
    /// pipelines being attached to one network by mistake.
    pub fn same_pipeline(&self, other: &Telemetry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Marks a block boundary on the commit path: forwarded to the
    /// collector so per-block scoping (e.g. the flight recorder's
    /// trigger dedup) resets. Called by peers at the start of each
    /// block's sequential merge stage.
    pub fn block_boundary(&self) {
        self.inner.collector.block_boundary();
    }

    /// Opens a root span; it records to the collector when dropped.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        self.open_span(name, None)
    }

    /// Emits an audit event: appended to the [`AuditLog`], forwarded to
    /// the collector, and counted in `fabric_audit_events_total`.
    pub fn emit(&self, event: AuditEvent) {
        self.inner.audit_counters[audit_kind_index(&event)]
            .get_or_init(|| {
                self.inner.metrics.counter(
                    "fabric_audit_events_total",
                    "Security-audit events by kind",
                    &[("kind", event.kind())],
                )
            })
            .inc();
        self.inner.collector.audit_event(&event);
        self.inner.audit.record(event);
    }

    fn open_span(&self, name: impl Into<String>, parent: Option<u64>) -> SpanGuard {
        let enabled = self.inner.enabled;
        SpanGuard {
            telemetry: self.clone(),
            enabled,
            id: if enabled {
                self.inner.next_span_id.fetch_add(1, Ordering::Relaxed)
            } else {
                0
            },
            parent,
            trace_id: 0,
            node: String::new(),
            name: if enabled { name.into() } else { String::new() },
            fields: Vec::new(),
            start: Instant::now(),
        }
    }
}

/// Maps an audit-event kind to its slot in `Inner::audit_counters`.
fn audit_kind_index(event: &AuditEvent) -> usize {
    match event {
        AuditEvent::EndorsementByNonMember { .. } => 0,
        AuditEvent::PolicyFallbackToChaincodeLevel { .. } => 1,
        AuditEvent::PlaintextPayloadInTx { .. } => 2,
        AuditEvent::MvccConflict { .. } => 3,
        AuditEvent::SbeReCheck { .. } => 4,
        AuditEvent::DefenseRejected { .. } => 5,
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("spans", &self.trace().map(TraceSink::len))
            .field("audit_events", &self.inner.audit.len())
            .finish_non_exhaustive()
    }
}

/// An open span; records a [`SpanRecord`] to the collector on drop.
///
/// When the owning telemetry is [`Telemetry::noop`] the guard is inert:
/// it keeps a start [`Instant`] so [`SpanGuard::elapsed`] still times the
/// region, but skips name/field allocation, id assignment, and the
/// collector call.
#[derive(Debug)]
pub struct SpanGuard {
    telemetry: Telemetry,
    enabled: bool,
    id: u64,
    parent: Option<u64>,
    trace_id: u64,
    node: String,
    name: String,
    fields: Vec<(String, String)>,
    start: Instant,
}

impl SpanGuard {
    /// This span's id within its telemetry instance (0 when tracing is
    /// disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ties the span into a cross-node trace. When the span has no local
    /// parent, the context's remote parent span is adopted, nesting this
    /// node's subtree under the upstream hop.
    pub fn trace(&mut self, ctx: TraceContext) {
        if !ctx.is_active() {
            return;
        }
        self.trace_id = ctx.trace_id;
        if self.parent.is_none() && ctx.parent_span != 0 {
            self.parent = Some(ctx.parent_span);
        }
    }

    /// Attributes the span to a named node (peer/orderer/client).
    pub fn node(&mut self, node: impl Into<String>) {
        if self.enabled {
            self.node = node.into();
        }
    }

    /// The context to hand to a downstream hop: same trace, parented at
    /// this span.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span: self.id,
        }
    }

    /// Attaches a key-value field to the span.
    pub fn field(&mut self, key: impl Into<String>, value: impl ToString) {
        if self.enabled {
            self.fields.push((key.into(), value.to_string()));
        }
    }

    /// Opens a child span of this one (same trace id and node).
    pub fn child(&self, name: impl Into<String>) -> SpanGuard {
        let mut child = self.telemetry.open_span(name, Some(self.id));
        child.trace_id = self.trace_id;
        if child.enabled {
            child.node = self.node.clone();
        }
        child
    }

    /// Time since the span was opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.enabled {
            return;
        }
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            fields: std::mem::take(&mut self.fields),
            start: self
                .start
                .saturating_duration_since(self.telemetry.inner.epoch),
            duration: self.start.elapsed(),
            trace_id: self.trace_id,
            node: std::mem::take(&mut self.node),
        };
        self.telemetry.inner.collector.span_finished(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::TxId;

    #[test]
    fn spans_nest_and_record() {
        let t = Telemetry::new();
        {
            let mut root = t.span("root");
            root.field("n", 3);
            let child = root.child("child");
            child.finish();
        }
        let records = t.trace().expect("sink").records();
        assert_eq!(records.len(), 2);
        let child = records.iter().find(|r| r.name == "child").expect("child");
        let root = records.iter().find(|r| r.name == "root").expect("root");
        assert_eq!(child.parent, Some(root.id));
        assert!(root.duration >= child.duration);
        assert_eq!(root.fields, vec![("n".to_string(), "3".to_string())]);
    }

    #[test]
    fn noop_telemetry_still_counts_and_audits() {
        let t = Telemetry::noop();
        assert!(t.trace().is_none());
        assert!(!t.tracing_enabled());
        t.span("ignored").finish();
        t.emit(AuditEvent::MvccConflict {
            tx_id: TxId::new("tx1"),
            chaincode: fabric_types::ChaincodeId::new("cc"),
        });
        assert_eq!(t.audit().len(), 1);
        assert_eq!(t.audit().counts_by_kind()["mvcc_conflict"], 1);
        assert!(t
            .metrics()
            .render_prometheus()
            .contains("fabric_audit_events_total{kind=\"mvcc_conflict\"} 1"));
    }

    #[test]
    fn noop_spans_still_time_but_record_nothing() {
        let t = Telemetry::noop();
        let span = t.span("timer");
        std::thread::sleep(Duration::from_millis(1));
        assert!(span.elapsed() >= Duration::from_millis(1));
        assert_eq!(span.id(), 0);
        span.finish();
        assert!(t.trace().is_none());
    }

    #[test]
    fn trace_context_threads_through_spans() {
        let t = Telemetry::new();
        let ctx = TraceContext::for_tx("tx-42");
        {
            let mut remote_parent = t.span("upstream");
            remote_parent.trace(ctx);
            remote_parent.node("client0.org1");
            let downstream_ctx = remote_parent.context();
            // A span on "another node": no local parent, adopts the
            // remote one through the propagated context.
            let mut local_root = t.span("downstream");
            local_root.trace(downstream_ctx);
            local_root.node("peer0.org1");
            let child = local_root.child("downstream.child");
            assert_eq!(child.context().trace_id, ctx.trace_id);
            child.finish();
        }
        let records = t.trace().expect("sink").records();
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.trace_id == ctx.trace_id));
        let upstream = records.iter().find(|r| r.name == "upstream").unwrap();
        let downstream = records.iter().find(|r| r.name == "downstream").unwrap();
        let child = records
            .iter()
            .find(|r| r.name == "downstream.child")
            .unwrap();
        assert_eq!(downstream.parent, Some(upstream.id));
        assert_eq!(child.parent, Some(downstream.id));
        assert_eq!(child.node, "peer0.org1");
    }

    #[test]
    fn audit_counter_cache_matches_registry() {
        let t = Telemetry::new();
        for _ in 0..3 {
            t.emit(AuditEvent::DefenseRejected {
                tx_id: TxId::new("txd"),
                code: fabric_types::TxValidationCode::BadPayload,
            });
        }
        assert!(t
            .metrics()
            .render_prometheus()
            .contains("fabric_audit_events_total{kind=\"defense_rejected\"} 3"));
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::new();
        let c = t.clone();
        t.metrics().counter("shared_total", "shared", &[]).inc();
        let view = c.metrics().counter("shared_total", "shared", &[]);
        assert_eq!(view.get(), 1);
    }
}
