//! Observability for the Fabric PDC model: tracing spans, a metrics
//! registry, and a typed security-audit event stream.
//!
//! One [`Telemetry`] handle bundles the three surfaces and is shared
//! (cheap `Arc` clone) by every node in a network — attach it with
//! `NetworkBuilder::with_telemetry` and all peers and the orderer report
//! into the same registry:
//!
//! * **Spans** ([`Telemetry::span`]) time pipeline stages with monotonic
//!   clocks and land in a pluggable [`Collector`] (default: the
//!   in-memory [`TraceSink`], which renders a flamegraph-style tree).
//! * **Metrics** ([`Telemetry::metrics`]) are counters, gauges, and
//!   fixed-bucket histograms with Prometheus-text and JSON exporters.
//! * **Audit events** ([`Telemetry::emit`]) are typed records of the
//!   paper's attack signals — see [`AuditEvent`] for the mapping onto
//!   Use Cases 1–3 and the New Features.
//!
//! # Examples
//!
//! ```
//! use fabric_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! let requests = telemetry
//!     .metrics()
//!     .counter("requests_total", "Total requests", &[("kind", "demo")]);
//! {
//!     let mut span = telemetry.span("handle_request");
//!     span.field("kind", "demo");
//!     requests.inc();
//! } // span records on drop
//! assert_eq!(requests.get(), 1);
//! assert_eq!(telemetry.trace().expect("in-memory sink").len(), 1);
//! assert!(telemetry.metrics().render_prometheus().contains("requests_total"));
//! ```

mod audit;
mod metrics;
mod span;

pub use audit::{AuditEvent, AuditLog};
pub use metrics::{
    Counter, Gauge, Histogram, MetricSample, MetricValue, MetricsRegistry,
    DURATION_SECONDS_BUCKETS, TICK_BUCKETS,
};
pub use span::{Collector, NoopCollector, SpanRecord, TraceSink};

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared handle to one telemetry pipeline: metrics registry, span
/// collector, and audit log. Clones share state.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

struct Inner {
    metrics: MetricsRegistry,
    audit: AuditLog,
    /// Retained only when the collector is the default in-memory sink,
    /// so [`Telemetry::trace`] can render reports.
    sink: Option<Arc<TraceSink>>,
    collector: Arc<dyn Collector>,
    epoch: Instant,
    next_span_id: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Creates a telemetry pipeline collecting spans into an in-memory
    /// [`TraceSink`].
    pub fn new() -> Self {
        let sink = Arc::new(TraceSink::new());
        let mut t = Self::with_collector(sink.clone());
        Arc::get_mut(&mut t.inner).expect("freshly created").sink = Some(sink);
        t
    }

    /// Creates a telemetry pipeline that discards spans (metrics and the
    /// audit log still work). Used to measure instrumentation overhead.
    pub fn noop() -> Self {
        Self::with_collector(Arc::new(NoopCollector))
    }

    /// Creates a telemetry pipeline with a custom span/audit collector.
    pub fn with_collector(collector: Arc<dyn Collector>) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                metrics: MetricsRegistry::new(),
                audit: AuditLog::new(),
                sink: None,
                collector,
                epoch: Instant::now(),
                next_span_id: AtomicU64::new(1),
            }),
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The shared audit-event log.
    pub fn audit(&self) -> &AuditLog {
        &self.inner.audit
    }

    /// The in-memory trace sink, when the default collector is in use.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.inner.sink.as_deref()
    }

    /// Opens a root span; it records to the collector when dropped.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        self.open_span(name.into(), None)
    }

    /// Emits an audit event: appended to the [`AuditLog`], forwarded to
    /// the collector, and counted in `fabric_audit_events_total`.
    pub fn emit(&self, event: AuditEvent) {
        self.inner
            .metrics
            .counter(
                "fabric_audit_events_total",
                "Security-audit events by kind",
                &[("kind", event.kind())],
            )
            .inc();
        self.inner.collector.audit_event(&event);
        self.inner.audit.record(event);
    }

    fn open_span(&self, name: String, parent: Option<u64>) -> SpanGuard {
        SpanGuard {
            telemetry: self.clone(),
            id: self.inner.next_span_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name,
            fields: Vec::new(),
            start_offset: self.inner.epoch.elapsed(),
            start: Instant::now(),
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("spans", &self.trace().map(TraceSink::len))
            .field("audit_events", &self.inner.audit.len())
            .finish_non_exhaustive()
    }
}

/// An open span; records a [`SpanRecord`] to the collector on drop.
#[derive(Debug)]
pub struct SpanGuard {
    telemetry: Telemetry,
    id: u64,
    parent: Option<u64>,
    name: String,
    fields: Vec<(String, String)>,
    start_offset: Duration,
    start: Instant,
}

impl SpanGuard {
    /// Attaches a key-value field to the span.
    pub fn field(&mut self, key: impl Into<String>, value: impl ToString) {
        self.fields.push((key.into(), value.to_string()));
    }

    /// Opens a child span of this one.
    pub fn child(&self, name: impl Into<String>) -> SpanGuard {
        self.telemetry.open_span(name.into(), Some(self.id))
    }

    /// Time since the span was opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            fields: std::mem::take(&mut self.fields),
            start: self.start_offset,
            duration: self.start.elapsed(),
        };
        self.telemetry.inner.collector.span_finished(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::TxId;

    #[test]
    fn spans_nest_and_record() {
        let t = Telemetry::new();
        {
            let mut root = t.span("root");
            root.field("n", 3);
            let child = root.child("child");
            child.finish();
        }
        let records = t.trace().expect("sink").records();
        assert_eq!(records.len(), 2);
        let child = records.iter().find(|r| r.name == "child").expect("child");
        let root = records.iter().find(|r| r.name == "root").expect("root");
        assert_eq!(child.parent, Some(root.id));
        assert!(root.duration >= child.duration);
        assert_eq!(root.fields, vec![("n".to_string(), "3".to_string())]);
    }

    #[test]
    fn noop_telemetry_still_counts_and_audits() {
        let t = Telemetry::noop();
        assert!(t.trace().is_none());
        t.span("ignored").finish();
        t.emit(AuditEvent::MvccConflict {
            tx_id: TxId::new("tx1"),
            chaincode: fabric_types::ChaincodeId::new("cc"),
        });
        assert_eq!(t.audit().len(), 1);
        assert_eq!(t.audit().counts_by_kind()["mvcc_conflict"], 1);
        assert!(t
            .metrics()
            .render_prometheus()
            .contains("fabric_audit_events_total{kind=\"mvcc_conflict\"} 1"));
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::new();
        let c = t.clone();
        t.metrics().counter("shared_total", "shared", &[]).inc();
        let view = c.metrics().counter("shared_total", "shared", &[]);
        assert_eq!(view.get(), 1);
    }
}
