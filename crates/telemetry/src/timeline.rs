//! Per-transaction lifecycle timelines assembled from cross-node spans.
//!
//! [`TxTimeline::collect`] filters a span set down to one transaction's
//! trace (via the deterministic [`crate::TraceContext`] id) and derives
//! the five lifecycle phase latencies:
//!
//! | phase       | span name       | emitted by                         |
//! |-------------|-----------------|------------------------------------|
//! | `endorse`   | `peer.endorse`  | each endorsing peer                |
//! | `order`     | `orderer.order` | ordering service (queue → batch)   |
//! | `replicate` | `raft.replicate`| raft (propose → quorum commit)     |
//! | `validate`  | `peer.validate` | each committing peer (stateless)   |
//! | `commit`    | `peer.commit`   | each committing peer (stateful)    |
//!
//! A phase that several nodes perform concurrently (endorse, validate,
//! commit) reports the slowest node — the latency the transaction
//! actually paid.

use crate::metrics::MetricsRegistry;
use crate::span::SpanRecord;
use crate::trace::TraceContext;
use std::fmt::Write as _;
use std::time::Duration;

/// The five lifecycle phases, in causal order.
pub const PHASES: [&str; 5] = ["endorse", "order", "replicate", "validate", "commit"];

/// Histogram buckets (upper bounds, seconds) for phase latencies. Finer
/// than [`crate::DURATION_SECONDS_BUCKETS`]: in-process phases run in
/// single-digit microseconds, which the commit-latency buckets (25µs
/// floor) would collapse into one bin and flatten every percentile.
pub const PHASE_SECONDS_BUCKETS: &[f64] = &[
    0.000_001,
    0.000_002_5,
    0.000_005,
    0.000_01,
    0.000_025,
    0.000_05,
    0.000_1,
    0.000_25,
    0.000_5,
    0.001,
    0.002_5,
    0.01,
    0.1,
    1.0,
];

/// Span name from which each phase latency derives, indexed like
/// [`PHASES`].
const PHASE_SPANS: [&str; 5] = [
    "peer.endorse",
    "orderer.order",
    "raft.replicate",
    "peer.validate",
    "peer.commit",
];

/// One transaction's cross-node lifecycle: every span carrying its trace
/// id, plus the derived phase latencies.
#[derive(Debug, Clone)]
pub struct TxTimeline {
    /// Trace id shared by all collected spans.
    pub trace_id: u64,
    /// The transaction id the trace id was derived from.
    pub tx_id: String,
    /// All spans of the trace, sorted by start offset.
    pub spans: Vec<SpanRecord>,
}

impl TxTimeline {
    /// Collects the timeline of `tx_id` out of `records` (normally
    /// `telemetry.trace().unwrap().records()`).
    pub fn collect(records: &[SpanRecord], tx_id: &str) -> TxTimeline {
        let trace_id = TraceContext::for_tx(tx_id).trace_id;
        let mut spans: Vec<SpanRecord> = records
            .iter()
            .filter(|r| r.trace_id == trace_id)
            .cloned()
            .collect();
        spans.sort_by_key(|r| r.start);
        TxTimeline {
            trace_id,
            tx_id: tx_id.to_string(),
            spans,
        }
    }

    /// Latency of one phase (a [`PHASES`] name), or `None` when no span
    /// of that phase was collected. Phases performed by several nodes
    /// report the slowest node.
    pub fn phase(&self, phase: &str) -> Option<Duration> {
        let idx = PHASES.iter().position(|p| *p == phase)?;
        self.spans
            .iter()
            .filter(|s| s.name == PHASE_SPANS[idx])
            .map(|s| s.duration)
            .max()
    }

    /// All five phases in causal order with their latencies.
    pub fn phases(&self) -> [(&'static str, Option<Duration>); 5] {
        let mut out = [("", None); 5];
        for (i, phase) in PHASES.iter().enumerate() {
            out[i] = (*phase, self.phase(phase));
        }
        out
    }

    /// True when every one of the five phases has at least one span.
    pub fn complete(&self) -> bool {
        PHASES.iter().all(|p| self.phase(p).is_some())
    }

    /// Distinct emitting nodes, in first-span order.
    pub fn nodes(&self) -> Vec<&str> {
        let mut nodes = Vec::new();
        for span in &self.spans {
            if !span.node.is_empty() && !nodes.contains(&span.node.as_str()) {
                nodes.push(span.node.as_str());
            }
        }
        nodes
    }

    /// Observes each present phase latency into
    /// `fabric_tx_phase_seconds{phase=...}` so percentile summaries fall
    /// out of [`crate::Histogram::quantile`].
    pub fn record_phase_metrics(&self, registry: &MetricsRegistry) {
        for (phase, latency) in self.phases() {
            if let Some(latency) = latency {
                registry
                    .histogram(
                        "fabric_tx_phase_seconds",
                        "Per-transaction lifecycle phase latency",
                        &[("phase", phase)],
                        PHASE_SECONDS_BUCKETS,
                    )
                    .observe(latency.as_secs_f64());
            }
        }
    }

    /// Renders the timeline: phase table first, then every span with its
    /// node, in start order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "tx {} (trace {:#018x})", self.tx_id, self.trace_id);
        for (phase, latency) in self.phases() {
            match latency {
                Some(d) => {
                    let _ = writeln!(out, "  phase={phase} {:.3}ms", d.as_secs_f64() * 1e3);
                }
                None => {
                    let _ = writeln!(out, "  phase={phase} (missing)");
                }
            }
        }
        for span in &self.spans {
            let node = if span.node.is_empty() {
                "-"
            } else {
                span.node.as_str()
            };
            let _ = writeln!(
                out,
                "  span {:<18} node={:<14} start={:>10.3?} dur={:>10.3?}",
                span.name, node, span.start, span.duration
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, node: &str, trace_id: u64, start_ms: u64, dur_ms: u64) -> SpanRecord {
        SpanRecord {
            id: start_ms,
            parent: None,
            name: name.into(),
            fields: vec![],
            start: Duration::from_millis(start_ms),
            duration: Duration::from_millis(dur_ms),
            trace_id,
            node: node.into(),
        }
    }

    fn full_trace(trace_id: u64) -> Vec<SpanRecord> {
        vec![
            span("peer.endorse", "peer0.org1", trace_id, 1, 3),
            span("peer.endorse", "peer0.org2", trace_id, 1, 5),
            span("orderer.order", "orderer", trace_id, 6, 10),
            span("raft.replicate", "raft0", trace_id, 16, 4),
            span("peer.validate", "peer0.org1", trace_id, 20, 2),
            span("peer.commit", "peer0.org1", trace_id, 22, 1),
        ]
    }

    #[test]
    fn collects_only_matching_trace_and_derives_phases() {
        let tid = TraceContext::for_tx("tx-a").trace_id;
        let mut records = full_trace(tid);
        records.push(span("peer.endorse", "peer0.org1", 999, 0, 50));
        let tl = TxTimeline::collect(&records, "tx-a");
        assert_eq!(tl.spans.len(), 6);
        assert!(tl.complete());
        // endorse takes the slowest endorser.
        assert_eq!(tl.phase("endorse"), Some(Duration::from_millis(5)));
        assert_eq!(tl.phase("order"), Some(Duration::from_millis(10)));
        assert_eq!(
            tl.nodes(),
            vec!["peer0.org1", "peer0.org2", "orderer", "raft0"]
        );
        let rendered = tl.render();
        for phase in PHASES {
            assert!(rendered.contains(&format!("phase={phase}")), "{rendered}");
        }
    }

    #[test]
    fn incomplete_timeline_reports_missing_phase() {
        let tid = TraceContext::for_tx("tx-b").trace_id;
        let records = vec![span("peer.endorse", "p", tid, 0, 1)];
        let tl = TxTimeline::collect(&records, "tx-b");
        assert!(!tl.complete());
        assert_eq!(tl.phase("commit"), None);
        assert!(tl.render().contains("phase=commit (missing)"));
    }

    #[test]
    fn phase_metrics_land_in_registry() {
        let tid = TraceContext::for_tx("tx-c").trace_id;
        let tl = TxTimeline::collect(&full_trace(tid), "tx-c");
        let registry = MetricsRegistry::new();
        tl.record_phase_metrics(&registry);
        let h = registry
            .find_histogram("fabric_tx_phase_seconds", &[("phase", "order")])
            .expect("order histogram");
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 0.010).abs() < 1e-9);
    }
}
