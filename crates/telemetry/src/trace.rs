//! Cross-node trace-context propagation.
//!
//! A [`TraceContext`] ties spans emitted on different nodes into one
//! causal tree per transaction. Trace ids are derived deterministically
//! from the transaction id (FNV-1a 64), so every hop that knows the tx id
//! — endorser, orderer, raft follower, committing peer — can re-derive
//! the same trace id without any wire-format change and without a `rand`
//! dependency.

/// Identifies the trace a span belongs to and the span it is causally
/// parented under.
///
/// A zero `trace_id` means "not traced"; [`TraceContext::default`]
/// produces that inactive context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Deterministic trace id (FNV-1a 64 of the tx id); 0 = inactive.
    pub trace_id: u64,
    /// Span id of the causal parent on the emitting side; 0 = no remote
    /// parent (the span is a root of its node-local subtree).
    pub parent_span: u64,
}

impl TraceContext {
    /// Derives the trace context for a transaction id.
    ///
    /// Deterministic across nodes and runs: FNV-1a 64 over the id bytes,
    /// nudged away from zero so the context is always active.
    pub fn for_tx(tx_id: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tx_id.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1_0000_0000_01b3);
        }
        TraceContext {
            trace_id: if hash == 0 { 1 } else { hash },
            parent_span: 0,
        }
    }

    /// Returns this context re-parented under `span_id` (for handing to a
    /// downstream hop whose spans should nest under `span_id`).
    pub fn with_parent(mut self, span_id: u64) -> Self {
        self.parent_span = span_id;
        self
    }

    /// True when the context carries a real trace id.
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_active() {
        let a = TraceContext::for_tx("tx-abc");
        let b = TraceContext::for_tx("tx-abc");
        assert_eq!(a, b);
        assert!(a.is_active());
        assert_ne!(a.trace_id, TraceContext::for_tx("tx-abd").trace_id);
    }

    #[test]
    fn default_is_inactive_and_with_parent_sets_parent() {
        let ctx = TraceContext::default();
        assert!(!ctx.is_active());
        let child = TraceContext::for_tx("t").with_parent(7);
        assert_eq!(child.parent_span, 7);
        assert_eq!(child.trace_id, TraceContext::for_tx("t").trace_id);
    }
}
