//! Span exporters: Chrome-trace/Perfetto JSON and JSON-lines.
//!
//! [`render_chrome_trace`] emits the Trace Event Format understood by
//! `chrome://tracing`, Perfetto's legacy importer, and Speedscope: a
//! `{"traceEvents": [...]}` object of complete (`"ph": "X"`) events with
//! microsecond timestamps. Nodes map to processes (`pid` + a
//! `process_name` metadata event) and traces map to threads within the
//! node, so one transaction reads as one lane per node in the UI.

use crate::metrics::json_str;
use crate::span::SpanRecord;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders spans as Chrome-trace JSON (Trace Event Format).
///
/// * Each span becomes a complete event: `ph:"X"` with `ts`/`dur` in
///   microseconds from the telemetry epoch.
/// * `pid` identifies the emitting node (assigned in first-appearance
///   order; a `process_name` metadata event carries the node name).
/// * `tid` identifies the trace within the node, keeping ids small —
///   the full 64-bit trace id rides in `args.trace` as hex.
pub fn render_chrome_trace(records: &[SpanRecord]) -> String {
    let mut pids: HashMap<&str, u64> = HashMap::new();
    let mut tids: HashMap<(u64, u64), u64> = HashMap::new();
    let mut events: Vec<String> = Vec::with_capacity(records.len() + 4);

    for record in records {
        let node = if record.node.is_empty() {
            "(unattributed)"
        } else {
            record.node.as_str()
        };
        let next_pid = pids.len() as u64 + 1;
        let pid = *pids.entry(node).or_insert_with(|| {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{next_pid},\"tid\":0,\
                 \"args\":{{\"name\":{}}}}}",
                json_str(node)
            ));
            next_pid
        });
        let next_tid = tids.len() as u64 + 1;
        let tid = *tids.entry((pid, record.trace_id)).or_insert(next_tid);

        let mut args = String::new();
        let _ = write!(args, "{{\"span\":{}", record.id);
        if record.trace_id != 0 {
            let _ = write!(args, ",\"trace\":\"{:#018x}\"", record.trace_id);
        }
        if let Some(parent) = record.parent {
            let _ = write!(args, ",\"parent\":{parent}");
        }
        for (k, v) in &record.fields {
            let _ = write!(args, ",{}:{}", json_str(k), json_str(v));
        }
        args.push('}');

        events.push(format!(
            "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\
             \"args\":{args}}}",
            json_str(&record.name),
            record.start.as_micros(),
            record.duration.as_micros(),
        ));
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, event) in events.iter().enumerate() {
        out.push_str(event);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Renders spans as JSON lines, one object per record, in input order —
/// the grep/jq-friendly dump format.
pub fn render_spans_jsonl(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for record in records {
        let _ = write!(
            out,
            "{{\"id\":{},\"name\":{},\"start_us\":{},\"dur_us\":{}",
            record.id,
            json_str(&record.name),
            record.start.as_micros(),
            record.duration.as_micros(),
        );
        if let Some(parent) = record.parent {
            let _ = write!(out, ",\"parent\":{parent}");
        }
        if record.trace_id != 0 {
            let _ = write!(out, ",\"trace\":\"{:#018x}\"", record.trace_id);
        }
        if !record.node.is_empty() {
            let _ = write!(out, ",\"node\":{}", json_str(&record.node));
        }
        if !record.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in record.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(k), json_str(v));
            }
            out.push('}');
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn record(id: u64, name: &str, node: &str, trace_id: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: (id > 1).then(|| id - 1),
            name: name.into(),
            fields: vec![("k".into(), "v\"q".into())],
            start: Duration::from_micros(10 * id),
            duration: Duration::from_micros(5),
            trace_id,
            node: node.into(),
        }
    }

    #[test]
    fn chrome_trace_has_events_and_process_names() {
        let records = vec![
            record(1, "peer.endorse", "peer0.org1", 7),
            record(2, "peer.commit", "peer0.org2", 7),
        ];
        let json = render_chrome_trace(&records);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"peer0.org1\""));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":5"));
        assert!(json.contains("\"parent\":1"));
        assert!(json.contains("\"k\":\"v\\\"q\""), "fields escaped: {json}");
        // Two nodes -> two pids, same trace -> one tid lane per node.
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"pid\":2"));
    }

    #[test]
    fn jsonl_emits_one_line_per_span() {
        let records = vec![
            record(1, "a", "n1", 3),
            SpanRecord {
                id: 9,
                parent: None,
                name: "bare".into(),
                fields: vec![],
                start: Duration::ZERO,
                duration: Duration::ZERO,
                trace_id: 0,
                node: String::new(),
            },
        ];
        let out = render_spans_jsonl(&records);
        assert_eq!(out.lines().count(), 2);
        assert!(out.lines().next().unwrap().contains("\"trace\":"));
        let bare = out.lines().nth(1).unwrap();
        assert!(!bare.contains("trace"));
        assert!(!bare.contains("node"));
        assert!(!bare.contains("fields"));
    }
}
