//! Metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Metric series are identified by `(name, sorted labels)`. Handles
//! ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed clones
//! that update atomically without touching the registry lock, so hot
//! paths pay one atomic op per update. Registration
//! ([`MetricsRegistry::counter`] etc.) is get-or-create and is the only
//! operation that locks.
//!
//! Two exporters render a consistent point-in-time view:
//! [`MetricsRegistry::render_prometheus`] (text exposition format) and
//! [`MetricsRegistry::render_json`] (a JSON snapshot for tooling).

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Histogram buckets (upper bounds, seconds) sized for block-commit and
/// endorsement latencies: tens of microseconds up to seconds.
pub const DURATION_SECONDS_BUCKETS: &[f64] = &[
    0.000_025, 0.000_1, 0.000_25, 0.001, 0.002_5, 0.01, 0.025, 0.1, 0.25, 1.0, 2.5,
];

/// Histogram buckets (upper bounds) for tick-denominated latencies such
/// as the orderer's batch-cut age.
pub const TICK_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Increments by `n`.
    pub fn inc_by(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Increase since a previously observed value (a "mark").
    ///
    /// Counters are monotonic, so the delta saturates at zero: a mark
    /// taken from a different counter (or a stale/corrupt mark larger
    /// than the current value) can never produce a bogus huge delta via
    /// unsigned wraparound.
    pub fn delta_since(&self, mark: u64) -> u64 {
        self.get().saturating_sub(mark)
    }

    /// Events per second since a previously observed value.
    ///
    /// Returns `0.0` when `elapsed` is zero (or negative through float
    /// rounding) rather than dividing by zero.
    pub fn rate_since(&self, mark: u64, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.delta_since(mark) as f64 / secs
    }

    /// A windowed-read cursor over this counter: each
    /// [`CounterWindow::take_delta`] returns the increase since the
    /// previous call.
    pub fn window(&self) -> CounterWindow {
        CounterWindow {
            counter: self.clone(),
            mark: self.get(),
        }
    }
}

/// A cursor for windowed delta reads of a [`Counter`].
///
/// Created by [`Counter::window`]; remembers the last observed value so
/// repeated [`CounterWindow::take_delta`] calls partition the counter's
/// growth into non-overlapping windows.
#[derive(Debug, Clone)]
pub struct CounterWindow {
    counter: Counter,
    mark: u64,
}

impl CounterWindow {
    /// Increase since the previous `take_delta` (or since the window was
    /// created) and advances the mark.
    pub fn take_delta(&mut self) -> u64 {
        let now = self.counter.get();
        let delta = now.saturating_sub(self.mark);
        self.mark = now;
        delta
    }

    /// The mark the next delta will be measured from.
    pub fn mark(&self) -> u64 {
        self.mark
    }
}

/// A gauge: a value that can move up and down.
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Finite upper bounds; observations above the last bound land in the
    /// implicit `+Inf` slot at `counts[bounds.len()]`.
    bounds: Arc<[f64]>,
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram (Prometheus semantics: `le` is inclusive).
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let slot = self
            .core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.core.bounds.len());
        self.core.counts[slot].fetch_add(1, Ordering::Relaxed);
        let mut current = self.core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.core.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.core
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Cumulative `(le, count)` pairs, ending with the `+Inf` total.
    fn cumulative(&self) -> (Vec<(f64, u64)>, u64) {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.core.bounds.len());
        for (i, &b) in self.core.bounds.iter().enumerate() {
            acc += self.core.counts[i].load(Ordering::Relaxed);
            out.push((b, acc));
        }
        acc += self.core.counts[self.core.bounds.len()].load(Ordering::Relaxed);
        (out, acc)
    }

    /// Estimates the `q`-quantile (clamped to `0.0..=1.0`) from the
    /// fixed buckets, interpolating linearly within the bucket that
    /// contains the target rank (the Prometheus `histogram_quantile`
    /// estimator).
    ///
    /// Returns `None` when the histogram is empty. Ranks that fall in
    /// the `+Inf` overflow bucket clamp to the largest finite bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let (cumulative, total) = self.cumulative();
        quantile_from_cumulative(&cumulative, total, q)
    }

    /// Point-in-time copy of the bucket state, for interval math.
    ///
    /// Snapshots are reset-free: the live histogram keeps accumulating,
    /// and [`Histogram::snapshot_delta`] subtracts two snapshots to get
    /// the observations of just the interval between them — so a scorer
    /// can compute per-window quantiles without racing live writers or
    /// destroying the cumulative series other readers depend on.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let (buckets, total) = self.cumulative();
        HistogramSnapshot {
            buckets,
            total,
            sum: self.sum(),
        }
    }

    /// The histogram's growth since `since` was snapshotted, as a
    /// snapshot of its own (per-bucket saturating subtraction — bucket
    /// counts are monotonic, so a stale or foreign mark can never
    /// produce a wraparound-huge window).
    pub fn snapshot_delta(&self, since: &HistogramSnapshot) -> HistogramSnapshot {
        self.snapshot().delta_since(since)
    }

    /// A windowed-read cursor over this histogram: each
    /// [`HistogramWindow::take_delta`] returns the interval snapshot
    /// since the previous call, mirroring [`Counter::window`].
    pub fn window(&self) -> HistogramWindow {
        HistogramWindow {
            mark: self.snapshot(),
            histogram: self.clone(),
        }
    }
}

/// An immutable interval or point-in-time view of a [`Histogram`]'s
/// buckets, carrying enough state to answer quantile/count/sum queries
/// without touching the live series.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Cumulative `(le, count)` pairs per finite bound.
    buckets: Vec<(f64, u64)>,
    /// Total observations including the `+Inf` slot.
    total: u64,
    /// Sum of observations.
    sum: f64,
}

impl HistogramSnapshot {
    /// Observations covered by this snapshot.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of the covered observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// True when the snapshot covers no observations (e.g. the delta of
    /// an idle window).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of the covered observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum / self.total as f64)
        }
    }

    /// Same estimator as [`Histogram::quantile`], over just the
    /// observations this snapshot covers. `None` when the snapshot is
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_cumulative(&self.buckets, self.total, q)
    }

    /// Subtracts an earlier snapshot of the *same series*, yielding the
    /// interval between the two. Counts subtract saturating per bucket;
    /// the sum clamps at zero.
    ///
    /// # Panics
    /// If the snapshots have different bucket layouts (they came from
    /// different histogram families).
    pub fn delta_since(&self, since: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(
            self.buckets.len(),
            since.buckets.len(),
            "snapshot delta across different bucket layouts"
        );
        let buckets = self
            .buckets
            .iter()
            .zip(&since.buckets)
            .map(|(&(le, now), &(_, then))| (le, now.saturating_sub(then)))
            .collect();
        HistogramSnapshot {
            buckets,
            total: self.total.saturating_sub(since.total),
            sum: (self.sum - since.sum).max(0.0),
        }
    }
}

/// A cursor for windowed interval reads of a [`Histogram`].
///
/// Created by [`Histogram::window`]; remembers the last snapshot so
/// repeated [`HistogramWindow::take_delta`] calls partition the
/// histogram's growth into non-overlapping intervals.
#[derive(Debug, Clone)]
pub struct HistogramWindow {
    histogram: Histogram,
    mark: HistogramSnapshot,
}

impl HistogramWindow {
    /// Observations since the previous `take_delta` (or since the window
    /// was created) and advances the mark.
    pub fn take_delta(&mut self) -> HistogramSnapshot {
        let now = self.histogram.snapshot();
        let delta = now.delta_since(&self.mark);
        self.mark = now;
        delta
    }
}

/// Shared quantile estimator over cumulative `(le, count)` buckets (the
/// Prometheus `histogram_quantile` linear interpolation).
fn quantile_from_cumulative(cumulative: &[(f64, u64)], total: u64, q: f64) -> Option<f64> {
    if total == 0 {
        return None;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let mut prev_bound = 0.0;
    let mut prev_count = 0u64;
    for &(bound, count) in cumulative {
        if count as f64 >= rank && count > prev_count {
            let in_bucket = (count - prev_count) as f64;
            let fraction = ((rank - prev_count as f64) / in_bucket).clamp(0.0, 1.0);
            return Some(prev_bound + (bound - prev_bound) * fraction);
        }
        prev_bound = bound;
        prev_count = count;
    }
    cumulative.last().map(|&(bound, _)| bound)
}

/// The value of one metric series in a [`MetricSample`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram: cumulative `(le, count)` buckets, sum, and total count.
    Histogram {
        /// Cumulative counts per finite upper bound.
        buckets: Vec<(f64, u64)>,
        /// Sum of observations.
        sum: f64,
        /// Total observations (the `+Inf` cumulative count).
        count: u64,
    },
}

/// One series in a registry snapshot.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric family name.
    pub name: String,
    /// Family help text.
    pub help: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Point-in-time value.
    pub value: MetricValue,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    buckets: Option<Arc<[f64]>>,
}

#[derive(Debug)]
enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

type SeriesKey = (String, Vec<(String, String)>);

/// A thread-safe registry of metric families and their label series.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    families: BTreeMap<String, Family>,
    series: BTreeMap<SeriesKey, Series>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates a counter series.
    ///
    /// # Panics
    /// If `name` was previously registered with a different metric kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let mut inner = self.inner.lock();
        inner.ensure_family(name, help, Kind::Counter, None);
        let series = inner
            .series
            .entry(series_key(name, labels))
            .or_insert_with(|| Series::Counter(Arc::new(AtomicU64::new(0))));
        match series {
            Series::Counter(cell) => Counter { cell: cell.clone() },
            _ => unreachable!("family kind already checked"),
        }
    }

    /// Gets or creates a gauge series.
    ///
    /// # Panics
    /// If `name` was previously registered with a different metric kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut inner = self.inner.lock();
        inner.ensure_family(name, help, Kind::Gauge, None);
        let series = inner
            .series
            .entry(series_key(name, labels))
            .or_insert_with(|| Series::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
        match series {
            Series::Gauge(bits) => Gauge { bits: bits.clone() },
            _ => unreachable!("family kind already checked"),
        }
    }

    /// Gets or creates a fixed-bucket histogram series. `buckets` are the
    /// finite upper bounds and must be sorted ascending; the `+Inf`
    /// bucket is implicit. Bounds are fixed by the first registration.
    ///
    /// # Panics
    /// If `name` was previously registered with a different kind, or
    /// `buckets` is empty or unsorted.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[f64],
    ) -> Histogram {
        assert!(!buckets.is_empty(), "histogram {name} needs buckets");
        assert!(
            buckets.windows(2).all(|w| w[0] < w[1]),
            "histogram {name} buckets must be sorted ascending"
        );
        let mut inner = self.inner.lock();
        inner.ensure_family(name, help, Kind::Histogram, Some(buckets));
        let bounds = inner
            .families
            .get(name)
            .and_then(|f| f.buckets.clone())
            .expect("histogram family has buckets");
        let series = inner
            .series
            .entry(series_key(name, labels))
            .or_insert_with(|| {
                let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
                Series::Histogram(Arc::new(HistogramCore {
                    bounds,
                    counts,
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                }))
            });
        match series {
            Series::Histogram(core) => Histogram { core: core.clone() },
            _ => unreachable!("family kind already checked"),
        }
    }

    /// Looks up an existing histogram series without creating it.
    pub fn find_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        let inner = self.inner.lock();
        match inner.series.get(&series_key(name, labels)) {
            Some(Series::Histogram(core)) => Some(Histogram { core: core.clone() }),
            _ => None,
        }
    }

    /// Point-in-time snapshot of every series, sorted by name then labels.
    pub fn samples(&self) -> Vec<MetricSample> {
        let inner = self.inner.lock();
        inner
            .series
            .iter()
            .map(|((name, labels), series)| {
                let family = &inner.families[name];
                let value = match series {
                    Series::Counter(cell) => MetricValue::Counter(cell.load(Ordering::Relaxed)),
                    Series::Gauge(bits) => {
                        MetricValue::Gauge(f64::from_bits(bits.load(Ordering::Relaxed)))
                    }
                    Series::Histogram(core) => {
                        let h = Histogram { core: core.clone() };
                        let (buckets, count) = h.cumulative();
                        MetricValue::Histogram {
                            buckets,
                            sum: h.sum(),
                            count,
                        }
                    }
                };
                MetricSample {
                    name: name.clone(),
                    help: family.help.clone(),
                    labels: labels.clone(),
                    value,
                }
            })
            .collect()
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<String> = None;
        for sample in self.samples() {
            if last_family.as_deref() != Some(&sample.name) {
                let kind = {
                    let inner = self.inner.lock();
                    inner.families[&sample.name].kind
                };
                let _ = writeln!(out, "# HELP {} {}", sample.name, sample.help);
                let _ = writeln!(out, "# TYPE {} {}", sample.name, kind.as_str());
                last_family = Some(sample.name.clone());
            }
            match &sample.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {v}",
                        sample.name,
                        label_set(&sample.labels, None)
                    );
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        sample.name,
                        label_set(&sample.labels, None),
                        fmt_f64(*v)
                    );
                }
                MetricValue::Histogram {
                    buckets,
                    sum,
                    count,
                } => {
                    for (le, c) in buckets {
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {c}",
                            sample.name,
                            label_set(&sample.labels, Some(&fmt_f64(*le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {count}",
                        sample.name,
                        label_set(&sample.labels, Some("+Inf"))
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        sample.name,
                        label_set(&sample.labels, None),
                        fmt_f64(*sum)
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {count}",
                        sample.name,
                        label_set(&sample.labels, None)
                    );
                }
            }
        }
        out
    }

    /// Renders the registry as a JSON snapshot.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": [\n");
        let samples = self.samples();
        for (i, sample) in samples.iter().enumerate() {
            let sep = if i + 1 == samples.len() { "" } else { "," };
            let mut labels = String::from("{");
            for (j, (k, v)) in sample.labels.iter().enumerate() {
                if j > 0 {
                    labels.push_str(", ");
                }
                let _ = write!(labels, "{}: {}", json_str(k), json_str(v));
            }
            labels.push('}');
            let body = match &sample.value {
                MetricValue::Counter(v) => format!("\"type\": \"counter\", \"value\": {v}"),
                MetricValue::Gauge(v) => {
                    format!("\"type\": \"gauge\", \"value\": {}", fmt_f64(*v))
                }
                MetricValue::Histogram {
                    buckets,
                    sum,
                    count,
                } => {
                    let mut b = String::from("[");
                    for (j, (le, c)) in buckets.iter().enumerate() {
                        if j > 0 {
                            b.push_str(", ");
                        }
                        let _ = write!(b, "{{\"le\": {}, \"count\": {c}}}", fmt_f64(*le));
                    }
                    if !buckets.is_empty() {
                        b.push_str(", ");
                    }
                    let _ = write!(b, "{{\"le\": \"+Inf\", \"count\": {count}}}");
                    b.push(']');
                    format!(
                        "\"type\": \"histogram\", \"sum\": {}, \"count\": {count}, \"buckets\": {b}",
                        fmt_f64(*sum)
                    )
                }
            };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"labels\": {labels}, {body}}}{sep}",
                json_str(&sample.name)
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl RegistryInner {
    fn ensure_family(&mut self, name: &str, help: &str, kind: Kind, buckets: Option<&[f64]>) {
        match self.families.get(name) {
            Some(existing) => assert!(
                existing.kind == kind,
                "metric {name} already registered as {}, requested {}",
                existing.kind.as_str(),
                kind.as_str()
            ),
            None => {
                self.families.insert(
                    name.to_string(),
                    Family {
                        help: help.to_string(),
                        kind,
                        buckets: buckets.map(Arc::from),
                    },
                );
            }
        }
    }
}

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

/// Renders a `{k="v",...}` label set, optionally appending an `le` label
/// (for histogram buckets). Empty label sets render as nothing.
fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Escapes a label value per the Prometheus text format: backslash,
/// double-quote, and line feed.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats an `f64` without scientific notation surprises: integral
/// values render bare (`1`), fractional values keep full precision.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_delta_since_is_wraparound_free() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("c", "", &[]);
        c.inc_by(10);
        let mark = c.get();
        c.inc_by(5);
        assert_eq!(c.delta_since(mark), 5);
        // A mark ahead of the counter (wrong counter, stale snapshot)
        // saturates to zero instead of wrapping to ~u64::MAX.
        assert_eq!(c.delta_since(mark + 100), 0);
        assert_eq!(c.delta_since(u64::MAX), 0);
    }

    #[test]
    fn counter_rate_since_divides_by_elapsed_and_guards_zero() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("c", "", &[]);
        c.inc_by(8);
        assert_eq!(c.rate_since(0, Duration::from_secs(2)), 4.0);
        assert_eq!(c.rate_since(0, Duration::ZERO), 0.0);
        assert_eq!(c.rate_since(u64::MAX, Duration::from_secs(1)), 0.0);
    }

    #[test]
    fn counter_window_partitions_growth_into_disjoint_deltas() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("c", "", &[]);
        c.inc_by(3);
        let mut w = c.window();
        assert_eq!(w.take_delta(), 0, "window starts at the current value");
        c.inc_by(4);
        assert_eq!(w.take_delta(), 4);
        assert_eq!(w.take_delta(), 0, "same instant twice: nothing new");
        c.inc();
        c.inc();
        assert_eq!(w.take_delta(), 2);
        assert_eq!(w.mark(), c.get());
    }

    #[test]
    fn empty_registry_renders_empty_exports() {
        let registry = MetricsRegistry::new();
        assert_eq!(registry.render_prometheus(), "");
        assert_eq!(registry.render_json(), "{\n  \"metrics\": [\n  ]\n}\n");
        assert!(registry.samples().is_empty());
    }

    #[test]
    fn bucket_upper_bounds_are_inclusive() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h", "bounds", &[], &[1.0, 2.0]);
        // Prometheus `le` semantics: an observation equal to a bound lands
        // in that bound's bucket, not the next one up.
        h.observe(1.0);
        h.observe(2.0);
        h.observe(2.000_001);
        let (buckets, count) = h.cumulative();
        assert_eq!(buckets, vec![(1.0, 1), (2.0, 2)]);
        assert_eq!(count, 3, "above-last-bound observations land in +Inf");
        assert_eq!(h.sum(), 1.0 + 2.0 + 2.000_001);
    }

    #[test]
    fn observations_below_first_bound_count_in_first_bucket() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h", "bounds", &[], &[0.5]);
        h.observe(0.0);
        h.observe(-1.0);
        let (buckets, count) = h.cumulative();
        assert_eq!(buckets, vec![(0.5, 2)]);
        assert_eq!(count, 2);
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let registry = MetricsRegistry::new();
        registry
            .counter("c", "escape", &[("path", "a\\b\"c\nd")])
            .inc();
        let text = registry.render_prometheus();
        assert!(
            text.contains(r#"c{path="a\\b\"c\nd"} 1"#),
            "backslash, quote, and newline must be escaped: {text:?}"
        );
        // The rendered line must stay a single line.
        assert!(text
            .lines()
            .any(|l| l.starts_with("c{") && l.ends_with(" 1")));
    }

    #[test]
    fn json_export_escapes_label_values() {
        let registry = MetricsRegistry::new();
        registry.counter("c", "escape", &[("k", "v\"\\\n")]).inc();
        let json = registry.render_json();
        assert!(json.contains(r#""k": "v\"\\\n""#), "got: {json:?}");
    }

    #[test]
    fn histogram_renders_cumulative_buckets_and_inf() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat", "latency", &[("stage", "s")], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = registry.render_prometheus();
        for line in [
            "lat_bucket{stage=\"s\",le=\"0.1\"} 1",
            "lat_bucket{stage=\"s\",le=\"1\"} 2",
            "lat_bucket{stage=\"s\",le=\"+Inf\"} 3",
            "lat_count{stage=\"s\"} 3",
        ] {
            assert!(text.contains(line), "missing {line:?} in {text}");
        }
    }

    #[test]
    fn label_order_does_not_split_series() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("c", "", &[("x", "1"), ("y", "2")]);
        let b = registry.counter("c", "", &[("y", "2"), ("x", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "label order is normalized into one series");
        assert_eq!(registry.samples().len(), 1);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 1_000;
        let registry = MetricsRegistry::new();
        let counter = registry.counter("c", "contended", &[]);
        let gauge = registry.gauge("g", "contended", &[]);
        let histogram = registry.histogram("h", "contended", &[], &[0.5]);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let counter = counter.clone();
                let gauge = gauge.clone();
                let histogram = histogram.clone();
                scope.spawn(move || {
                    for _ in 0..PER_THREAD {
                        counter.inc();
                        gauge.add(1.0);
                        histogram.observe(1.0);
                    }
                });
            }
        });
        let total = (THREADS * PER_THREAD) as u64;
        assert_eq!(counter.get(), total);
        assert_eq!(gauge.get(), total as f64);
        assert_eq!(histogram.count(), total);
        assert_eq!(histogram.sum(), total as f64);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let registry = MetricsRegistry::new();
        registry.counter("m", "", &[]);
        registry.gauge("m", "", &[]);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h", "empty", &[], &[1.0, 2.0]);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h", "interp", &[], &[1.0, 2.0, 4.0]);
        // 2 observations in (0,1], 2 in (1,2], none in (2,4].
        for v in [0.2, 0.8, 1.5, 1.9] {
            h.observe(v);
        }
        // Median rank 2.0 sits exactly at the top of the first bucket.
        assert_eq!(h.quantile(0.5), Some(1.0));
        // Rank 3.0 is halfway through the second bucket: 1.0 + 0.5*(2-1).
        assert_eq!(h.quantile(0.75), Some(1.5));
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(2.0));
    }

    #[test]
    fn quantile_in_single_bucket_scales_linearly() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h", "single", &[], &[10.0]);
        for _ in 0..4 {
            h.observe(3.0);
        }
        // All mass in one bucket: interpolation spans (0, 10].
        assert_eq!(h.quantile(0.5), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn snapshot_delta_isolates_the_interval() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h", "windowed", &[], &[1.0, 2.0, 4.0]);
        // Warm-up observations land below the first bound …
        for _ in 0..10 {
            h.observe(0.5);
        }
        let mark = h.snapshot();
        // … while the window under test is entirely in (1, 2].
        for _ in 0..4 {
            h.observe(1.5);
        }
        let win = h.snapshot_delta(&mark);
        assert_eq!(win.count(), 4);
        assert_eq!(win.sum(), 6.0);
        assert_eq!(win.mean(), Some(1.5));
        // The interval quantile sees only the window's bucket: the
        // median interpolates inside (1, 2], unpolluted by the ten
        // warm-up observations the live quantile would count.
        assert_eq!(win.quantile(0.5), Some(1.5));
        // Live median rank 7 of 14 interpolates inside the warm-up
        // bucket (0, 1]: 7/10 of the way up.
        assert_eq!(h.quantile(0.5), Some(0.7), "live series still cumulative");
    }

    #[test]
    fn empty_window_snapshot_has_no_quantile() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h", "idle", &[], &[1.0, 2.0]);
        h.observe(0.5);
        let mark = h.snapshot();
        // No observations between the marks: the idle-window delta must
        // report empty rather than resurrecting pre-window data.
        let win = h.snapshot_delta(&mark);
        assert!(win.is_empty());
        assert_eq!(win.count(), 0);
        assert_eq!(win.sum(), 0.0);
        assert_eq!(win.quantile(0.5), None);
        assert_eq!(win.mean(), None);
    }

    #[test]
    fn single_bucket_window_interpolates_from_zero() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h", "single", &[], &[10.0]);
        h.observe(3.0);
        let mark = h.snapshot();
        for _ in 0..4 {
            h.observe(7.0);
        }
        // One finite bucket: the window's interpolation spans (0, 10]
        // exactly like the live estimator's single-bucket case.
        let win = h.snapshot_delta(&mark);
        assert_eq!(win.count(), 4);
        assert_eq!(win.quantile(0.5), Some(5.0));
        assert_eq!(win.quantile(1.0), Some(10.0));
    }

    #[test]
    fn histogram_window_partitions_growth_into_disjoint_intervals() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h", "cursor", &[], &[1.0, 2.0]);
        h.observe(0.5);
        let mut w = h.window();
        assert!(
            w.take_delta().is_empty(),
            "window starts at the current state"
        );
        h.observe(1.5);
        h.observe(1.5);
        let first = w.take_delta();
        assert_eq!(first.count(), 2);
        assert_eq!(first.quantile(0.5), Some(1.5));
        assert!(w.take_delta().is_empty(), "same instant twice: nothing new");
        h.observe(0.2);
        assert_eq!(w.take_delta().count(), 1);
    }

    #[test]
    fn stale_snapshot_mark_saturates_instead_of_wrapping() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h", "stale", &[], &[1.0]);
        h.observe(0.5);
        let big_mark = h.snapshot();
        let other = registry.histogram("h2", "fresh", &[], &[1.0]);
        // A mark from a busier series than the one being windowed must
        // clamp to an empty window, not wrap to ~u64::MAX observations.
        let win = other.snapshot_delta(&big_mark);
        assert!(win.is_empty());
        assert_eq!(win.sum(), 0.0);
    }

    #[test]
    fn quantile_clamps_overflow_bucket_to_last_finite_bound() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h", "overflow", &[], &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(100.0);
        h.observe(200.0);
        // Ranks beyond the finite buckets clamp to the largest bound.
        assert_eq!(h.quantile(0.9), Some(2.0));
        assert_eq!(h.quantile(1.0), Some(2.0));
        // But ranks inside finite buckets still interpolate.
        assert!((h.quantile(0.1).unwrap() - 0.3).abs() < 1e-12);
    }
}
