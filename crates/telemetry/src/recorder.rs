//! Flight recorder: a bounded ring of recent spans and audit events,
//! snapshotted automatically when an attack signal fires.
//!
//! The [`FlightRecorder`] wraps another [`Collector`] (normally the
//! in-memory [`crate::TraceSink`]) and mirrors everything that flows
//! through it into a fixed-capacity ring buffer. When one of the paper's
//! attack signals is emitted — [`AuditEvent::DefenseRejected`],
//! [`AuditEvent::EndorsementByNonMember`], or
//! [`AuditEvent::MvccConflict`] — the ring is snapshotted into a
//! [`FlightDump`]: "what happened in the moments before this fired",
//! without retaining an unbounded history.
//!
//! Writes are wait-free on the ring index (one `fetch_add`) plus one
//! uncontended per-slot lock, so the recorder is safe to leave attached
//! on validation hot paths.

use crate::audit::AuditEvent;
use crate::span::{Collector, SpanRecord};
use fabric_types::TxId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One entry in the flight-recorder ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightEntry {
    /// A finished span.
    Span(SpanRecord),
    /// An emitted audit event.
    Audit(AuditEvent),
}

/// A snapshot of the ring taken when a trigger event fired.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// The audit event that triggered the dump (also the newest ring
    /// entry at snapshot time).
    pub trigger: AuditEvent,
    /// Ring contents, oldest first.
    pub entries: Vec<FlightEntry>,
}

impl FlightDump {
    /// The dump's audit events as `(kind, tx_id)` pairs, oldest first.
    ///
    /// Span timings differ run to run, but audit events are emitted in
    /// block order by the sequential merge stage — this signature is
    /// deterministic and lets tests compare dumps across the
    /// parallel-validation knob.
    pub fn audit_signature(&self) -> Vec<(&'static str, TxId)> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                FlightEntry::Audit(ev) => Some((ev.kind(), ev.tx_id().clone())),
                FlightEntry::Span(_) => None,
            })
            .collect()
    }
}

/// Bounded ring buffer of recent [`FlightEntry`]s with automatic dumps
/// on attack signals. Create via [`crate::Telemetry::with_flight_recorder`]
/// or wrap any collector with [`FlightRecorder::new`].
pub struct FlightRecorder {
    inner: Arc<dyn Collector>,
    ring: Box<[Mutex<Option<FlightEntry>>]>,
    /// Next write position (monotonic; slot = head % capacity).
    head: AtomicUsize,
    dumps: Mutex<Vec<FlightDump>>,
    /// Bitmask of trigger kinds that already dumped since the last
    /// [`Collector::block_boundary`]: a block with a hundred MVCC aborts
    /// produces one MVCC dump, not a hundred near-identical snapshots.
    dumped_kinds: AtomicUsize,
}

impl FlightRecorder {
    /// Wraps `inner`, keeping the most recent `capacity` entries
    /// (clamped to at least 1).
    pub fn new(capacity: usize, inner: Arc<dyn Collector>) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner,
            ring: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            dumps: Mutex::new(Vec::new()),
            dumped_kinds: AtomicUsize::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    fn push(&self, entry: FlightEntry) {
        let slot = self.head.fetch_add(1, Ordering::Relaxed) % self.ring.len();
        *self.ring[slot].lock() = Some(entry);
    }

    /// Snapshots the ring, oldest entry first.
    pub fn recent(&self) -> Vec<FlightEntry> {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.ring.len();
        let mut out = Vec::new();
        for i in 0..cap {
            // Slot (head + i) % cap holds the (cap - i)-th most recent
            // entry once the ring has wrapped; before wrapping the None
            // slots are simply skipped.
            if let Some(entry) = self.ring[(head + i) % cap].lock().clone() {
                out.push(entry);
            }
        }
        out
    }

    /// All dumps captured so far, in trigger order.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.dumps.lock().clone()
    }

    /// Discards captured dumps (the ring itself keeps rolling).
    pub fn clear_dumps(&self) {
        self.dumps.lock().clear();
    }

    /// Snapshots the ring into a dump with `trigger` as the stated cause
    /// and records it alongside the automatic dumps.
    ///
    /// This is the hook for external watchers (the monitor's alert
    /// engine): when an alert fires, it captures the ring with the audit
    /// event that tripped the detector, so the alert carries the same
    /// forensic context an automatic dump would. Explicit captures
    /// bypass the per-block trigger dedup.
    pub fn capture(&self, trigger: AuditEvent) -> FlightDump {
        let dump = FlightDump {
            trigger,
            entries: self.recent(),
        };
        self.dumps.lock().push(dump.clone());
        dump
    }

    /// True when `event` is one of the paper's dump-triggering attack
    /// signals.
    fn is_trigger(event: &AuditEvent) -> bool {
        matches!(
            event,
            AuditEvent::DefenseRejected { .. }
                | AuditEvent::EndorsementByNonMember { .. }
                | AuditEvent::MvccConflict { .. }
        )
    }

    /// Per-kind bit in `dumped_kinds` for a trigger event.
    fn trigger_bit(event: &AuditEvent) -> usize {
        match event {
            AuditEvent::DefenseRejected { .. } => 1,
            AuditEvent::EndorsementByNonMember { .. } => 2,
            AuditEvent::MvccConflict { .. } => 4,
            _ => 0,
        }
    }
}

impl Collector for FlightRecorder {
    fn span_finished(&self, record: SpanRecord) {
        self.push(FlightEntry::Span(record.clone()));
        self.inner.span_finished(record);
    }

    fn audit_event(&self, event: &AuditEvent) {
        self.push(FlightEntry::Audit(event.clone()));
        if Self::is_trigger(event) {
            // One dump per trigger kind per block: the first conflict in
            // a storm captures the context, the rest would snapshot the
            // same ring again. The bit test is fetch_or, so even racing
            // emitters agree on a single winner.
            let bit = Self::trigger_bit(event);
            let seen = self.dumped_kinds.fetch_or(bit, Ordering::Relaxed);
            if seen & bit == 0 {
                let dump = FlightDump {
                    trigger: event.clone(),
                    entries: self.recent(),
                };
                self.dumps.lock().push(dump);
            }
        }
        self.inner.audit_event(event);
    }

    fn block_boundary(&self) {
        self.dumped_kinds.store(0, Ordering::Relaxed);
        self.inner.block_boundary();
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.ring.len())
            .field("written", &self.head.load(Ordering::Relaxed))
            .field("dumps", &self.dumps.lock().len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::NoopCollector;
    use fabric_types::ChaincodeId;
    use std::time::Duration;

    fn span(id: u64, name: &str) -> SpanRecord {
        SpanRecord {
            id,
            parent: None,
            name: name.into(),
            fields: vec![],
            start: Duration::from_millis(id),
            duration: Duration::from_millis(1),
            trace_id: 0,
            node: String::new(),
        }
    }

    fn conflict(n: u64) -> AuditEvent {
        AuditEvent::MvccConflict {
            tx_id: TxId::new(format!("tx{n}")),
            chaincode: ChaincodeId::new("cc"),
        }
    }

    #[test]
    fn ring_keeps_most_recent_entries_in_order() {
        let rec = FlightRecorder::new(3, Arc::new(NoopCollector));
        for i in 1..=5 {
            rec.span_finished(span(i, "s"));
        }
        let names: Vec<u64> = rec
            .recent()
            .iter()
            .map(|e| match e {
                FlightEntry::Span(s) => s.id,
                FlightEntry::Audit(_) => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec![3, 4, 5]);
    }

    #[test]
    fn trigger_event_captures_dump_including_itself() {
        let rec = FlightRecorder::new(8, Arc::new(NoopCollector));
        rec.span_finished(span(1, "before"));
        rec.audit_event(&conflict(7));
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].trigger, conflict(7));
        assert_eq!(
            dumps[0].audit_signature(),
            vec![("mvcc_conflict", TxId::new("tx7"))]
        );
        assert!(matches!(dumps[0].entries[0], FlightEntry::Span(_)));
        rec.clear_dumps();
        assert!(rec.dumps().is_empty());
    }

    #[test]
    fn dump_on_full_ring_retains_the_triggering_event() {
        // A ring that has already wrapped must still include the trigger
        // itself in the snapshot (it is the newest entry, and the push
        // evicting the oldest slot happens before the snapshot).
        let rec = FlightRecorder::new(2, Arc::new(NoopCollector));
        for i in 1..=5 {
            rec.span_finished(span(i, "s"));
        }
        rec.audit_event(&conflict(9));
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].trigger, conflict(9));
        assert_eq!(
            dumps[0].audit_signature(),
            vec![("mvcc_conflict", TxId::new("tx9"))],
            "the trigger survives in the snapshot even on a full ring"
        );
        assert_eq!(
            dumps[0].entries.last(),
            Some(&FlightEntry::Audit(conflict(9))),
            "trigger is the newest snapshot entry"
        );
    }

    #[test]
    fn capacity_one_ring_dump_is_exactly_the_trigger() {
        let rec = FlightRecorder::new(1, Arc::new(NoopCollector));
        rec.span_finished(span(1, "evicted"));
        rec.audit_event(&conflict(3));
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].entries, vec![FlightEntry::Audit(conflict(3))]);
    }

    #[test]
    fn repeated_triggers_within_one_block_dedup_to_one_dump() {
        let rec = FlightRecorder::new(8, Arc::new(NoopCollector));
        rec.audit_event(&conflict(1));
        rec.audit_event(&conflict(2));
        rec.audit_event(&conflict(3));
        assert_eq!(
            rec.dumps().len(),
            1,
            "an abort storm inside one block captures context once"
        );
        // A different trigger kind in the same block still dumps: its
        // snapshot carries evidence the earlier one could not (events
        // emitted after the first trigger).
        rec.audit_event(&AuditEvent::DefenseRejected {
            tx_id: TxId::new("txd"),
            code: fabric_types::TxValidationCode::BadPayload,
        });
        assert_eq!(rec.dumps().len(), 2);
        // The next block boundary re-arms every kind.
        rec.block_boundary();
        rec.audit_event(&conflict(4));
        assert_eq!(rec.dumps().len(), 3);
        assert_eq!(rec.dumps()[2].trigger, conflict(4));
    }

    #[test]
    fn explicit_capture_records_a_dump_and_bypasses_dedup() {
        let rec = FlightRecorder::new(8, Arc::new(NoopCollector));
        rec.audit_event(&conflict(1));
        assert_eq!(rec.dumps().len(), 1);
        let dump = rec.capture(conflict(1));
        assert_eq!(dump.trigger, conflict(1));
        assert_eq!(
            dump.audit_signature(),
            vec![("mvcc_conflict", TxId::new("tx1"))]
        );
        assert_eq!(
            rec.dumps().len(),
            2,
            "capture is recorded alongside auto dumps"
        );
    }

    #[test]
    fn non_trigger_events_do_not_dump() {
        let rec = FlightRecorder::new(4, Arc::new(NoopCollector));
        rec.audit_event(&AuditEvent::PlaintextPayloadInTx {
            tx_id: TxId::new("txp"),
            chaincode: ChaincodeId::new("cc"),
            payload_bytes: 9,
        });
        assert!(rec.dumps().is_empty());
        assert_eq!(rec.recent().len(), 1);
    }
}
