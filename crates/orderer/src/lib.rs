//! The ordering service: Raft-backed block cutting.
//!
//! Orderers bundle transactions into blocks *blindly* — they never inspect
//! or validate transaction contents (paper §II-A2); all semantic checks
//! happen at peers in the validation phase. This is why fabricated
//! transactions sail through ordering in the paper's attacks.
//!
//! [`OrderingService`] models a Raft ordering cluster plus the block
//! cutter: transactions are queued, batches are cut on
//! `max_message_count` or `batch_timeout_ticks`, replicated through
//! [`fabric_raft`], and emitted as signed [`Block`]s in Raft commit order.
//!
//! # Examples
//!
//! ```
//! use fabric_orderer::{BatchConfig, OrderingService};
//!
//! let mut orderer = OrderingService::new(3, 7, BatchConfig::default());
//! // (transactions would be submitted here)
//! orderer.run_until_ready(100);
//! assert!(orderer.take_blocks().is_empty());
//! ```

use fabric_crypto::{Hash256, Keypair};
use fabric_raft::{Cluster, NodeId, RaftConfig};
use fabric_telemetry::{SpanGuard, Telemetry, TraceContext, TICK_BUCKETS};
use fabric_types::{Block, Identity, Role, Transaction, TxId};
use fabric_wire::{Decode, Encode};
use std::collections::{HashMap, VecDeque};

/// Block-cutting parameters (Fabric's `BatchSize`/`BatchTimeout`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Cut a block when this many transactions are pending.
    pub max_message_count: usize,
    /// Cut a non-empty batch after this many ticks regardless of size.
    pub batch_timeout_ticks: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_message_count: 10,
            batch_timeout_ticks: 5,
        }
    }
}

/// A Raft-replicated ordering service for one channel.
#[derive(Debug)]
pub struct OrderingService {
    config: BatchConfig,
    raft: Cluster,
    observer: NodeId,
    delivered_cursor: usize,
    pending: VecDeque<Transaction>,
    pending_age: u64,
    next_number: u64,
    prev_hash: Hash256,
    identity: Identity,
    keypair: Keypair,
    ready: VecDeque<Block>,
    telemetry: Option<Telemetry>,
    /// Open `orderer.order` spans (queue wait: submit → batch cut), keyed
    /// by tx id. Populated only when span tracing is enabled.
    order_spans: HashMap<TxId, SpanGuard>,
}

impl OrderingService {
    /// Creates an ordering cluster of `orderer_count` Raft nodes.
    pub fn new(orderer_count: usize, seed: u64, config: BatchConfig) -> Self {
        let keypair = Keypair::generate_from_seed(seed ^ ORDERER_SEED_MIX);
        let identity = Identity::new("OrdererMSP", Role::Orderer, keypair.public_key());
        OrderingService {
            config,
            raft: Cluster::with_config(orderer_count, seed, RaftConfig::default()),
            observer: 1,
            delivered_cursor: 0,
            pending: VecDeque::new(),
            pending_age: 0,
            next_number: 0,
            prev_hash: Hash256::default(),
            identity,
            keypair,
            ready: VecDeque::new(),
            telemetry: None,
            order_spans: HashMap::new(),
        }
    }

    /// The ordering service's signing identity.
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    /// Attaches a shared telemetry pipeline: batch-cut latency, ordered
    /// block height, and Raft transport statistics are then reported.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.raft.set_telemetry(telemetry.clone());
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry pipeline, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Queues a transaction for ordering. Contents are not inspected
    /// (only the tx id is read, to key the tracing span).
    pub fn submit(&mut self, tx: Transaction) {
        if let Some(t) = self.telemetry.as_ref().filter(|t| t.tracing_enabled()) {
            let mut span = t.span("orderer.order");
            span.trace(TraceContext::for_tx(tx.tx_id.as_str()));
            span.node("orderer");
            self.order_spans.insert(tx.tx_id.clone(), span);
        }
        self.pending.push_back(tx);
    }

    /// Number of transactions waiting to be cut into a block.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Blocks cut so far — the chain height every peer should converge
    /// to (monitors score committed-height lag against this).
    pub fn ordered_height(&self) -> u64 {
        self.next_number
    }

    /// Runs ticks until the Raft cluster has a leader (start-up helper).
    pub fn run_until_ready(&mut self, max_ticks: usize) -> bool {
        self.raft.run_until_leader(max_ticks).is_some()
    }

    /// Advances one tick: Raft timers/messages, batch timeout, block
    /// cutting, and collection of committed batches into signed blocks.
    pub fn tick(&mut self) {
        self.raft.tick();

        if !self.pending.is_empty() {
            self.pending_age += 1;
        }
        let cut_by_size = self.pending.len() >= self.config.max_message_count;
        let cut_by_timeout =
            !self.pending.is_empty() && self.pending_age >= self.config.batch_timeout_ticks;
        if cut_by_size || cut_by_timeout {
            self.try_cut_batch();
        }
        self.collect_committed();
    }

    /// Runs `n` ticks.
    pub fn run_ticks(&mut self, n: usize) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Drains blocks that finished ordering, in commit order.
    pub fn take_blocks(&mut self) -> Vec<Block> {
        self.ready.drain(..).collect()
    }

    /// Crashes a Raft orderer node (fault injection).
    pub fn crash_orderer(&mut self, node: NodeId) {
        self.raft.crash(node);
        if self.observer == node {
            self.observer = *self
                .raft
                .node_ids()
                .first()
                .expect("at least one orderer remains");
            // The new observer exposes the full committed history; skip what
            // we already delivered.
        }
    }

    fn try_cut_batch(&mut self) {
        let Some(leader) = self.raft.leader() else {
            return; // No leader yet; retry next tick.
        };
        let batch_size = self.pending.len().min(self.config.max_message_count);
        let batch: Vec<Transaction> = self.pending.drain(..batch_size).collect();
        let encoded = batch.to_wire();
        let tracing = !self.order_spans.is_empty();
        let traces: Vec<TraceContext> = if tracing {
            batch
                .iter()
                .map(|tx| TraceContext::for_tx(tx.tx_id.as_str()))
                .collect()
        } else {
            Vec::new()
        };
        if self
            .raft
            .propose_with_trace(leader, encoded, &traces)
            .is_err()
        {
            // Leadership changed between `leader()` and `propose`; requeue
            // (any order spans stay open — the txs are still queued).
            for tx in batch.into_iter().rev() {
                self.pending.push_front(tx);
            }
            return;
        }
        if tracing {
            for tx in &batch {
                // Dropping the guard records the queue-wait span.
                self.order_spans.remove(&tx.tx_id);
            }
        }
        if let Some(t) = &self.telemetry {
            t.metrics()
                .histogram(
                    "fabric_orderer_batch_cut_age_ticks",
                    "Ticks a batch's oldest transaction waited before the cut",
                    &[],
                    TICK_BUCKETS,
                )
                .observe(self.pending_age as f64);
            t.metrics()
                .counter(
                    "fabric_orderer_txs_ordered_total",
                    "Transactions proposed into Raft batches",
                    &[],
                )
                .inc_by(batch.len() as u64);
        }
        self.pending_age = 0;
    }

    fn collect_committed(&mut self) {
        // Only the entries past the delivery cursor are visited, so a tick
        // is O(new entries) rather than O(committed history).
        let newly = self
            .raft
            .committed_since(self.observer, self.delivered_cursor);
        let newly_count = newly.len();
        self.delivered_cursor += newly_count;
        for raw in newly {
            let Ok(batch) = Vec::<Transaction>::from_wire(raw) else {
                // Unreachable in practice: we only propose valid encodings.
                continue;
            };
            let mut block = Block::new(self.next_number, self.prev_hash, batch);
            block.metadata.orderer = Some(self.identity.clone());
            block.metadata.orderer_signature = Some(self.keypair.sign(&block.header.to_wire()));
            self.next_number += 1;
            self.prev_hash = block.hash();
            if let Some(t) = &self.telemetry {
                t.metrics()
                    .counter(
                        "fabric_orderer_blocks_cut_total",
                        "Blocks emitted by the ordering service",
                        &[],
                    )
                    .inc();
            }
            self.ready.push_back(block);
        }
        if newly_count > 0 {
            if let Some(t) = &self.telemetry {
                t.metrics()
                    .gauge(
                        "fabric_orderer_block_height",
                        "Blocks ordered so far (next block number)",
                        &[],
                    )
                    .set(self.next_number as f64);
                let stats = self.raft.stats();
                t.metrics()
                    .gauge(
                        "fabric_raft_term",
                        "Highest Raft term observed in the ordering cluster",
                        &[],
                    )
                    .set(stats.term as f64);
                t.metrics()
                    .gauge(
                        "fabric_raft_messages_delivered",
                        "Raft messages delivered since cluster creation",
                        &[],
                    )
                    .set(stats.messages_delivered as f64);
                t.metrics()
                    .gauge(
                        "fabric_raft_messages_dropped",
                        "Raft messages lost to faults since cluster creation",
                        &[],
                    )
                    .set(stats.messages_dropped as f64);
            }
        }
    }
}

/// Distinguishes orderer keypair seeds from peer/client seeds.
const ORDERER_SEED_MIX: u64 = 0xDEAD_BEEF_0BAD_F00D;

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::sha256;
    use fabric_types::{
        ChaincodeId, ChannelId, PayloadCommitment, ProposalResponsePayload, Response, TxId, TxRwSet,
    };

    fn dummy_tx(n: u64) -> Transaction {
        let kp = Keypair::generate_from_seed(9000 + n);
        let creator = Identity::new("Org1MSP", Role::Client, kp.public_key());
        let payload = ProposalResponsePayload {
            proposal_hash: sha256(&n.to_be_bytes()),
            response: Response::ok(vec![]),
            results: TxRwSet::new(),
            event: None,
        };
        let tx_id = TxId::new(format!("tx{n}"));
        let client_signature = kp.sign(&Transaction::client_signed_bytes(&tx_id, &payload, &[]));
        Transaction {
            tx_id,
            channel: ChannelId::new("ch1"),
            chaincode: ChaincodeId::new("cc"),
            creator,
            payload,
            commitment: PayloadCommitment::Plain,
            endorsements: vec![],
            client_signature,
            memo: Default::default(),
        }
    }

    #[test]
    fn cuts_block_on_batch_size() {
        let mut o = OrderingService::new(
            3,
            1,
            BatchConfig {
                max_message_count: 3,
                batch_timeout_ticks: 1000,
            },
        );
        assert!(o.run_until_ready(1000));
        for n in 0..3 {
            o.submit(dummy_tx(n));
        }
        o.run_ticks(50);
        let blocks = o.take_blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].transactions.len(), 3);
        assert_eq!(blocks[0].header.number, 0);
        assert!(blocks[0].metadata.orderer_signature.is_some());
    }

    #[test]
    fn cuts_partial_block_on_timeout() {
        let mut o = OrderingService::new(
            3,
            2,
            BatchConfig {
                max_message_count: 100,
                batch_timeout_ticks: 4,
            },
        );
        assert!(o.run_until_ready(1000));
        o.submit(dummy_tx(0));
        o.run_ticks(50);
        let blocks = o.take_blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].transactions.len(), 1);
    }

    #[test]
    fn blocks_chain_in_order() {
        let mut o = OrderingService::new(
            3,
            3,
            BatchConfig {
                max_message_count: 2,
                batch_timeout_ticks: 3,
            },
        );
        assert!(o.run_until_ready(1000));
        for n in 0..6 {
            o.submit(dummy_tx(n));
        }
        o.run_ticks(80);
        let blocks = o.take_blocks();
        assert_eq!(blocks.len(), 3);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.header.number, i as u64);
            assert!(b.data_hash_is_consistent());
            if i > 0 {
                assert!(b.chains_onto(&blocks[i - 1]));
            }
        }
        // Transactions preserved in submission order.
        let ids: Vec<String> = blocks
            .iter()
            .flat_map(|b| b.transactions.iter().map(|t| t.tx_id.to_string()))
            .collect();
        assert_eq!(ids, vec!["tx0", "tx1", "tx2", "tx3", "tx4", "tx5"]);
    }

    #[test]
    fn survives_orderer_crash() {
        let mut o = OrderingService::new(
            5,
            4,
            BatchConfig {
                max_message_count: 1,
                batch_timeout_ticks: 2,
            },
        );
        assert!(o.run_until_ready(1000));
        o.submit(dummy_tx(0));
        o.run_ticks(50);
        assert_eq!(o.take_blocks().len(), 1);

        // Crash the observer (node 1) and a second node; 3 of 5 remain.
        o.crash_orderer(1);
        o.crash_orderer(2);
        assert!(o.run_until_ready(2000));
        o.submit(dummy_tx(1));
        o.run_ticks(200);
        let blocks = o.take_blocks();
        // The new observer replays history; block numbering stays chained.
        assert!(blocks
            .iter()
            .any(|b| b.transactions.iter().any(|t| t.tx_id == TxId::new("tx1"))));
    }

    #[test]
    fn orderer_never_rejects_content() {
        // Orderers bundle blindly: a transaction with no endorsements and
        // an arbitrary payload is ordered without complaint.
        let mut o = OrderingService::new(3, 5, BatchConfig::default());
        assert!(o.run_until_ready(1000));
        o.submit(dummy_tx(42));
        o.run_ticks(50);
        assert_eq!(o.take_blocks().len(), 1);
    }
}
