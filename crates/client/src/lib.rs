//! The client SDK: proposal creation, response checking, and transaction
//! assembly (Fig. 2, steps 1 and 6/11).
//!
//! An honest client:
//!
//! 1. builds a [`Proposal`] and sends it to the endorsers required by the
//!    endorsement policy;
//! 2. checks that all proposal responses returned **identical results**;
//! 3. assembles a [`Transaction`] from the agreed payload and the collected
//!    endorsements and submits it for ordering.
//!
//! Under New Feature 2 ([`DefenseConfig::hashed_payload_commitment`]) the
//! client additionally re-hashes the chaincode response payload, verifies
//! the endorsers' signatures over the hashed form, and assembles the
//! transaction from `(PR_Hash, Sign(PR_Hash))` — it keeps the plaintext for
//! itself, so committed blocks never carry the private value (§IV-C2).
//!
//! Malicious clients (see the attacks crate) skip the consistency checks
//! and choose endorsers adversarially; nothing in the protocol forces them
//! to behave.

use fabric_crypto::Keypair;
use fabric_telemetry::{Telemetry, TraceContext};
use fabric_types::{
    ChaincodeId, ChannelId, DefenseConfig, Endorsement, Identity, OrgId, PayloadCommitment,
    Proposal, ProposalResponse, Role, Transaction,
};
use std::collections::BTreeMap;
use std::fmt;

/// Errors assembling a transaction from proposal responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// No proposal responses were supplied.
    NoResponses,
    /// An endorsement signature failed to verify.
    InvalidEndorsement {
        /// The offending endorser (display form).
        endorser: String,
    },
    /// Endorsers returned different results — the client must abort
    /// (Fig. 2: "client checks if all the returned results are the same").
    InconsistentResponses,
    /// Responses mix commitment schemes (some plain, some hashed).
    MixedCommitments,
    /// The client expected New Feature 2 signatures but an endorser signed
    /// the plaintext form (e.g. an unpatched peer).
    ExpectedHashedCommitment,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::NoResponses => write!(f, "no proposal responses collected"),
            ClientError::InvalidEndorsement { endorser } => {
                write!(f, "endorsement by {endorser} failed verification")
            }
            ClientError::InconsistentResponses => {
                write!(f, "endorsers returned inconsistent results")
            }
            ClientError::MixedCommitments => {
                write!(f, "responses mix payload commitment schemes")
            }
            ClientError::ExpectedHashedCommitment => {
                write!(f, "expected hashed-payload signatures (new feature 2)")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A client application identity bound to one organization.
#[derive(Debug, Clone)]
pub struct Client {
    identity: Identity,
    keypair: Keypair,
    nonce: u64,
    defense: DefenseConfig,
    telemetry: Option<Telemetry>,
}

impl Client {
    /// Creates a client for `org`.
    pub fn new(org: impl Into<OrgId>, keypair: Keypair, defense: DefenseConfig) -> Self {
        let identity = Identity::new(org, Role::Client, keypair.public_key());
        Client {
            identity,
            keypair,
            nonce: 0,
            defense,
            telemetry: None,
        }
    }

    /// Attaches a shared telemetry pipeline; transaction assembly then
    /// records a `client.assemble` span in the transaction's trace.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// The client's identity.
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    /// Builds a proposal with a fresh nonce (and thus a fresh tx ID).
    pub fn create_proposal(
        &mut self,
        channel: impl Into<ChannelId>,
        chaincode: impl Into<ChaincodeId>,
        function: impl Into<String>,
        args: Vec<Vec<u8>>,
        transient: BTreeMap<String, Vec<u8>>,
    ) -> Proposal {
        self.nonce += 1;
        Proposal::new(
            channel,
            chaincode,
            function,
            args,
            transient,
            self.identity.clone(),
            self.nonce,
        )
    }

    /// Checks responses for consistency and assembles the transaction.
    ///
    /// Returns the transaction plus the plaintext chaincode response
    /// payload (what the caller asked the chaincode for; under Feature 2
    /// this plaintext never enters the transaction).
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; any failed verification or disagreement between
    /// endorsers aborts assembly.
    pub fn assemble_transaction(
        &self,
        proposal: &Proposal,
        responses: &[ProposalResponse],
    ) -> Result<(Transaction, Vec<u8>), ClientError> {
        let _span = self
            .telemetry
            .as_ref()
            .filter(|t| t.tracing_enabled())
            .map(|t| {
                let mut s = t.span("client.assemble");
                s.trace(TraceContext::for_tx(proposal.tx_id.as_str()));
                s.node(format!("client.{}", self.identity.org));
                s.field("endorsements", responses.len());
                s
            });
        let first = responses.first().ok_or(ClientError::NoResponses)?;

        for r in responses {
            if r.commitment != first.commitment {
                return Err(ClientError::MixedCommitments);
            }
            if r.payload != first.payload {
                return Err(ClientError::InconsistentResponses);
            }
            if !r.verify() {
                return Err(ClientError::InvalidEndorsement {
                    endorser: r.endorsement.endorser.to_string(),
                });
            }
        }
        if self.defense.hashed_payload_commitment
            && first.commitment != PayloadCommitment::HashedPayload
        {
            return Err(ClientError::ExpectedHashedCommitment);
        }

        let plaintext = first.payload.response.payload.clone();
        // Under Feature 2 the transaction carries the hashed payload form
        // the endorsers actually signed; otherwise the plaintext form.
        let tx_payload = match first.commitment {
            PayloadCommitment::Plain => first.payload.clone(),
            PayloadCommitment::HashedPayload => first.payload.to_hashed_payload_form(),
        };
        let endorsements: Vec<Endorsement> =
            responses.iter().map(|r| r.endorsement.clone()).collect();
        let client_signature = self.keypair.sign(&Transaction::client_signed_bytes(
            &proposal.tx_id,
            &tx_payload,
            &endorsements,
        ));
        let tx = Transaction {
            tx_id: proposal.tx_id.clone(),
            channel: proposal.channel.clone(),
            chaincode: proposal.chaincode.clone(),
            creator: self.identity.clone(),
            payload: tx_payload,
            commitment: first.commitment,
            endorsements,
            client_signature,
            memo: Default::default(),
        };
        Ok((tx, plaintext))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::{sha256, Signature};
    use fabric_types::{ProposalResponsePayload, Response, TxRwSet};

    fn endorser(seed: u64) -> (Keypair, Identity) {
        let kp = Keypair::generate_from_seed(seed);
        let id = Identity::new("Org1MSP", Role::Peer, kp.public_key());
        (kp, id)
    }

    fn response_for(
        proposal: &Proposal,
        payload_bytes: &[u8],
        commitment: PayloadCommitment,
        seed: u64,
    ) -> ProposalResponse {
        let (kp, id) = endorser(seed);
        let payload = ProposalResponsePayload {
            proposal_hash: proposal.hash(),
            response: Response::ok(payload_bytes.to_vec()),
            results: TxRwSet::new(),
            event: None,
        };
        let signature = kp.sign(&payload.signed_bytes(commitment));
        ProposalResponse {
            payload,
            commitment,
            endorsement: Endorsement {
                endorser: id,
                signature,
            },
        }
    }

    fn client(defense: DefenseConfig) -> Client {
        Client::new("Org1MSP", Keypair::generate_from_seed(100), defense)
    }

    #[test]
    fn nonces_increment_per_proposal() {
        let mut c = client(DefenseConfig::original());
        let p1 = c.create_proposal("ch1", "cc", "f", vec![], BTreeMap::new());
        let p2 = c.create_proposal("ch1", "cc", "f", vec![], BTreeMap::new());
        assert_ne!(p1.tx_id, p2.tx_id);
    }

    #[test]
    fn assembles_plain_transaction() {
        let mut c = client(DefenseConfig::original());
        let p = c.create_proposal("ch1", "cc", "f", vec![], BTreeMap::new());
        let responses = vec![
            response_for(&p, b"value", PayloadCommitment::Plain, 201),
            response_for(&p, b"value", PayloadCommitment::Plain, 202),
        ];
        let (tx, plaintext) = c.assemble_transaction(&p, &responses).unwrap();
        assert_eq!(plaintext, b"value");
        // Plaintext is embedded in the transaction — the leakage vector.
        assert_eq!(tx.payload.response.payload, b"value");
        assert!(tx.verify_client_signature());
        assert!(tx.verify_endorsement_signatures());
    }

    #[test]
    fn feature2_transaction_contains_only_hash() {
        let mut c = client(DefenseConfig::feature2());
        let p = c.create_proposal("ch1", "cc", "f", vec![], BTreeMap::new());
        let responses = vec![
            response_for(&p, b"secret", PayloadCommitment::HashedPayload, 203),
            response_for(&p, b"secret", PayloadCommitment::HashedPayload, 204),
        ];
        let (tx, plaintext) = c.assemble_transaction(&p, &responses).unwrap();
        // The client got the plaintext...
        assert_eq!(plaintext, b"secret");
        // ...but the transaction carries only the SHA-256.
        assert_eq!(tx.payload.response.payload, sha256(b"secret").0.to_vec());
        assert!(tx.verify_endorsement_signatures());
        assert!(tx.verify_client_signature());
    }

    #[test]
    fn inconsistent_responses_abort() {
        let mut c = client(DefenseConfig::original());
        let p = c.create_proposal("ch1", "cc", "f", vec![], BTreeMap::new());
        let responses = vec![
            response_for(&p, b"a", PayloadCommitment::Plain, 205),
            response_for(&p, b"b", PayloadCommitment::Plain, 206),
        ];
        assert_eq!(
            c.assemble_transaction(&p, &responses),
            Err(ClientError::InconsistentResponses)
        );
    }

    #[test]
    fn bad_signature_aborts() {
        let mut c = client(DefenseConfig::original());
        let p = c.create_proposal("ch1", "cc", "f", vec![], BTreeMap::new());
        let mut r = response_for(&p, b"v", PayloadCommitment::Plain, 207);
        r.endorsement.signature = Signature::from_bytes([0u8; 32]);
        assert!(matches!(
            c.assemble_transaction(&p, &[r]),
            Err(ClientError::InvalidEndorsement { .. })
        ));
    }

    #[test]
    fn feature2_client_rejects_plain_signatures() {
        let mut c = client(DefenseConfig::feature2());
        let p = c.create_proposal("ch1", "cc", "f", vec![], BTreeMap::new());
        let r = response_for(&p, b"v", PayloadCommitment::Plain, 208);
        assert_eq!(
            c.assemble_transaction(&p, &[r]),
            Err(ClientError::ExpectedHashedCommitment)
        );
    }

    #[test]
    fn mixed_commitments_abort() {
        let mut c = client(DefenseConfig::original());
        let p = c.create_proposal("ch1", "cc", "f", vec![], BTreeMap::new());
        let responses = vec![
            response_for(&p, b"v", PayloadCommitment::Plain, 209),
            response_for(&p, b"v", PayloadCommitment::HashedPayload, 210),
        ];
        assert_eq!(
            c.assemble_transaction(&p, &responses),
            Err(ClientError::MixedCommitments)
        );
    }

    #[test]
    fn empty_responses_abort() {
        let c = client(DefenseConfig::original());
        let kp = Keypair::generate_from_seed(211);
        let p = Proposal::new(
            "ch1",
            "cc",
            "f",
            vec![],
            BTreeMap::new(),
            Identity::new("Org1MSP", Role::Client, kp.public_key()),
            1,
        );
        assert_eq!(
            c.assemble_transaction(&p, &[]),
            Err(ClientError::NoResponses)
        );
    }
}
