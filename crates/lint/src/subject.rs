//! The linter's structured input model.
//!
//! A [`LintSubject`] captures everything the rules need about one
//! chaincode deployment: channel membership, the chaincode-level
//! endorsement policy, each collection's configuration, and any known
//! private-data payload leaks. Facts are `Option` where a source may not
//! know them (a scanned JSON file omits fields; a live
//! [`ChaincodeDefinition`] knows everything) — rules stay silent on
//! unknowns rather than guessing.
//!
//! [`ChaincodeDefinition`]: fabric_chaincode::ChaincodeDefinition

use fabric_chaincode::ChaincodeDefinition;
use fabric_policy::SignaturePolicy;
use fabric_types::{CollectionConfig, OrgId};
use std::fmt;

/// Which chaincode path leaked private data into the response payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LeakChannel {
    /// A read-style function returns `GetPrivateData` results (Listing 1).
    ReadPayload,
    /// A write-style function returns the value it passed to
    /// `PutPrivateData` (Listing 2).
    WritePayload,
}

impl fmt::Display for LeakChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeakChannel::ReadPayload => f.write_str("read"),
            LeakChannel::WritePayload => f.write_str("write"),
        }
    }
}

/// One known private-data payload leak.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LeakFact {
    /// Artifact the leaking function lives in (source file or chaincode
    /// pseudo-URI).
    pub uri: String,
    /// The leaking function's name.
    pub function: String,
    /// Leak direction.
    pub channel: LeakChannel,
}

/// What is known about one collection's configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CollectionFacts {
    /// Collection name.
    pub name: String,
    /// Artifact defining the collection.
    pub uri: String,
    /// Organizations matching the membership `Policy`.
    pub member_orgs: Vec<OrgId>,
    /// The collection-level `EndorsementPolicy` expression; `None` means
    /// the chaincode-level policy governs PDC writes.
    pub endorsement_policy: Option<String>,
    /// `RequiredPeerCount`, when known.
    pub required_peer_count: Option<u32>,
    /// `MaxPeerCount`, when known.
    pub max_peer_count: Option<u32>,
    /// `BlockToLive`, when known.
    pub block_to_live: Option<u64>,
    /// `MemberOnlyRead`, when known.
    pub member_only_read: Option<bool>,
    /// `MemberOnlyWrite`, when known.
    pub member_only_write: Option<bool>,
}

impl CollectionFacts {
    /// Facts from a live, fully-specified [`CollectionConfig`].
    pub fn from_config(config: &CollectionConfig, uri: impl Into<String>) -> Self {
        let member_orgs = SignaturePolicy::parse(&config.member_policy)
            .map(|p| p.organizations())
            .unwrap_or_default();
        CollectionFacts {
            name: config.name.as_str().to_string(),
            uri: uri.into(),
            member_orgs,
            endorsement_policy: config.endorsement_policy.clone(),
            required_peer_count: Some(config.required_peer_count),
            max_peer_count: Some(config.max_peer_count),
            block_to_live: Some(config.block_to_live),
            member_only_read: Some(config.member_only_read),
            member_only_write: Some(config.member_only_write),
        }
    }
}

/// One unit of linting: a chaincode deployment or a scanned project.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintSubject {
    /// Subject name (project directory or chaincode ID).
    pub name: String,
    /// Root artifact URI used for subject-level findings.
    pub uri: String,
    /// All organizations on the channel. Empty means unknown — rules that
    /// reason about non-members stay silent.
    pub channel_orgs: Vec<OrgId>,
    /// The chaincode-level endorsement policy expression, when known.
    pub chaincode_policy: Option<String>,
    /// Collections defined for this chaincode.
    pub collections: Vec<CollectionFacts>,
    /// Known private-data payload leaks (from static scanning or the
    /// dynamic [`probe`](crate::probe)).
    pub leaks: Vec<LeakFact>,
    /// Whether the network this subject was lifted from has a telemetry
    /// collector attached. `None` (the default, and what scans produce)
    /// means unknown and keeps PDC010 silent; `Some(false)` marks a live
    /// network whose PDC misuse signals go unaudited.
    pub telemetry_attached: Option<bool>,
    /// Whether the network's telemetry pipeline includes a flight
    /// recorder. `None` (the default) means unknown and keeps PDC011
    /// silent; `Some(false)` marks a live network where attack signals
    /// trigger no forensic dump.
    pub flight_recorder: Option<bool>,
    /// Whether this chaincode has been through `fabric-flow` information-
    /// flow analysis. `None` (the default) means unknown and keeps PDC018
    /// silent; `Some(false)` marks a deployment knowingly running
    /// un-analyzed chaincode.
    pub flow_analyzed: Option<bool>,
    /// Whether the network's telemetry pipeline feeds a streaming
    /// monitor (`fabric-monitor`). `None` (the default) means unknown and
    /// keeps PDC020 silent; `Some(false)` marks a live network that
    /// records audit events nobody evaluates online.
    pub monitor_attached: Option<bool>,
    /// Number of commit lanes the hosting consortium schedules its
    /// channels onto. `None` (the default) means unknown and keeps PDC019
    /// silent.
    pub commit_lanes: Option<usize>,
    /// Number of channels the hosting consortium operates. `None` (the
    /// default) means unknown and keeps PDC019 silent.
    pub consortium_channels: Option<usize>,
}

impl LintSubject {
    /// Builds a subject from a live chaincode definition, as agreed on the
    /// channel. `channel_orgs` lists every organization on the channel so
    /// the policy rules can reason about collection non-members.
    pub fn from_definition(definition: &ChaincodeDefinition, channel_orgs: &[OrgId]) -> Self {
        let uri = format!("network:{}", definition.id.as_str());
        LintSubject {
            name: definition.id.as_str().to_string(),
            uri: uri.clone(),
            channel_orgs: channel_orgs.to_vec(),
            chaincode_policy: Some(definition.endorsement_policy.clone()),
            collections: definition
                .collections
                .iter()
                .map(|c| CollectionFacts::from_config(c, uri.clone()))
                .collect(),
            leaks: Vec::new(),
            telemetry_attached: None,
            flight_recorder: None,
            flow_analyzed: None,
            monitor_attached: None,
            commit_lanes: None,
            consortium_channels: None,
        }
    }

    /// Records whether the subject's network has a telemetry collector
    /// (feeds rule PDC010). Typically
    /// `subject.with_telemetry_attached(net.telemetry().is_some())`.
    pub fn with_telemetry_attached(mut self, attached: bool) -> Self {
        self.telemetry_attached = Some(attached);
        self
    }

    /// Records whether the subject's network keeps a flight recorder in
    /// its telemetry pipeline (feeds rule PDC011). Typically
    /// `subject.with_flight_recorder(net.telemetry().is_some_and(|t|
    /// t.flight_recorder().is_some()))`.
    pub fn with_flight_recorder(mut self, attached: bool) -> Self {
        self.flight_recorder = Some(attached);
        self
    }

    /// Records whether the subject's network drives a streaming monitor
    /// over its telemetry (feeds rule PDC020). Typically
    /// `subject.with_monitor_attached(net.monitor().is_some())`.
    pub fn with_monitor_attached(mut self, attached: bool) -> Self {
        self.monitor_attached = Some(attached);
        self
    }

    /// Records whether this chaincode has been information-flow analyzed
    /// (feeds rule PDC018). Typically set to `true` after running the
    /// `fabric-flow` analyzer over the deployed [`Chaincode`] instance,
    /// `false` for deployments knowingly skipping it.
    ///
    /// [`Chaincode`]: fabric_chaincode::Chaincode
    pub fn with_flow_analyzed(mut self, analyzed: bool) -> Self {
        self.flow_analyzed = Some(analyzed);
        self
    }

    /// Records how the hosting consortium schedules commits (feeds rule
    /// PDC019): the number of per-channel commit lanes and the number of
    /// channels. Typically `subject.with_commit_scheduling(
    /// consortium.commit_lanes(), consortium.channel_names().len())`.
    pub fn with_commit_scheduling(mut self, lanes: usize, channels: usize) -> Self {
        self.commit_lanes = Some(lanes);
        self.consortium_channels = Some(channels);
        self
    }

    /// The channel organizations that are *not* members of `collection`.
    pub fn non_members(&self, collection: &CollectionFacts) -> Vec<OrgId> {
        self.channel_orgs
            .iter()
            .filter(|o| !collection.member_orgs.contains(o))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orgs(names: &[&str]) -> Vec<OrgId> {
        names.iter().map(|n| OrgId::new(*n)).collect()
    }

    #[test]
    fn from_definition_captures_all_facts() {
        let def = ChaincodeDefinition::new("trade")
            .with_endorsement_policy("ANY Endorsement")
            .with_collection(
                CollectionConfig::membership_of("sellerCollection", &orgs(&["Org1MSP"]))
                    .with_endorsement_policy("OR('Org1MSP.peer')")
                    .with_block_to_live(50),
            );
        let subject = LintSubject::from_definition(&def, &orgs(&["Org1MSP", "Org2MSP", "Org3MSP"]));
        assert_eq!(subject.name, "trade");
        assert_eq!(subject.uri, "network:trade");
        assert_eq!(subject.chaincode_policy.as_deref(), Some("ANY Endorsement"));
        let c = &subject.collections[0];
        assert_eq!(c.member_orgs, orgs(&["Org1MSP"]));
        assert_eq!(c.endorsement_policy.as_deref(), Some("OR('Org1MSP.peer')"));
        assert_eq!(c.block_to_live, Some(50));
        assert_eq!(c.member_only_read, Some(true));
        assert_eq!(c.member_only_write, Some(true));
        assert_eq!(subject.non_members(c), orgs(&["Org2MSP", "Org3MSP"]));
    }

    #[test]
    fn unparsable_membership_policy_yields_no_member_orgs() {
        let facts = CollectionFacts::from_config(
            &CollectionConfig::new("c", "NOT A POLICY (("),
            "network:cc",
        );
        assert!(facts.member_orgs.is_empty());
    }
}
