//! Dynamic payload-leak probing.
//!
//! The static scanner (`fabric-analyzer`) finds Listing 1/2 patterns in
//! source text; this module finds them in *running* chaincode. It invokes
//! a [`Chaincode`] through the stub API with a sentinel private value and
//! reports a [`LeakFact`] whenever the sentinel comes back through the
//! response payload — the channel Use Case 3 shows is recorded in the
//! public block.
//!
//! Write probes pass the sentinel both as the second argument and in the
//! `value` transient entry, so both the vulnerable (args-based) and fixed
//! (transient-based) calling conventions execute; only the vulnerable one
//! echoes the sentinel back. Read probes pre-seed the sentinel into every
//! collection's world state and then invoke the read function.

use crate::subject::{LeakChannel, LeakFact};
use fabric_chaincode::{Chaincode, ChaincodeDefinition, ChaincodeStub};
use fabric_ledger::WorldState;
use fabric_policy::SignaturePolicy;
use fabric_types::{CollectionName, Identity, Proposal, Role, Version};
use std::collections::{BTreeMap, HashSet};

/// The sentinel planted as the private value. Long and high-entropy enough
/// that an honest payload (a key echo, an error string, JSON scaffolding)
/// will not contain it by accident.
pub const SENTINEL: &[u8] = b"__pdc_lint_sentinel_7f3a9c51e0b2__";

/// Key used for probe reads/writes.
const PROBE_KEY: &str = "__pdc_lint_probe_key__";

/// One probe invocation: which function to call and through which channel
/// the sentinel could leak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeSpec {
    /// Function to invoke.
    pub function: String,
    /// Leak direction this probe tests.
    pub channel: LeakChannel,
}

impl ProbeSpec {
    /// A write probe: invokes `function(key, sentinel)` with the sentinel
    /// also in the `value` transient entry. A Listing 2 chaincode echoes
    /// the sentinel back in the payload.
    pub fn write(function: impl Into<String>) -> Self {
        ProbeSpec {
            function: function.into(),
            channel: LeakChannel::WritePayload,
        }
    }

    /// A read probe: pre-seeds the sentinel as private data under the
    /// probe key in every collection, then invokes `function(key)`. A
    /// Listing 1 chaincode returns it in the payload.
    pub fn read(function: impl Into<String>) -> Self {
        ProbeSpec {
            function: function.into(),
            channel: LeakChannel::ReadPayload,
        }
    }
}

/// The default probe set for key/value chaincodes following the sacc
/// convention (`set`/`get`).
pub fn sacc_probes() -> Vec<ProbeSpec> {
    vec![ProbeSpec::write("set"), ProbeSpec::read("get")]
}

/// Runs every probe against `chaincode` (deployed as `definition`) and
/// returns the leaks observed. `uri` labels the resulting facts (use the
/// subject's artifact URI). Probes run at a fully-member peer with a
/// member-org client so membership guards (`MemberOnlyRead`) pass and the
/// payload path itself is what is under test. Probes whose invocation
/// errors are counted as silent — an unknown function cannot leak.
pub fn probe_leaks(
    chaincode: &dyn Chaincode,
    definition: &ChaincodeDefinition,
    uri: impl Into<String>,
    probes: &[ProbeSpec],
) -> Vec<LeakFact> {
    let uri = uri.into();
    let memberships: HashSet<CollectionName> = definition
        .collections
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let creator = probe_identity(definition);

    let mut leaks = Vec::new();
    for probe in probes {
        let mut state = WorldState::new();
        let args: Vec<Vec<u8>> = match probe.channel {
            LeakChannel::WritePayload => {
                vec![PROBE_KEY.as_bytes().to_vec(), SENTINEL.to_vec()]
            }
            LeakChannel::ReadPayload => {
                for c in &definition.collections {
                    state.put_private(
                        &definition.id,
                        &c.name,
                        PROBE_KEY,
                        SENTINEL.to_vec(),
                        Version::new(0, 0),
                    );
                }
                vec![PROBE_KEY.as_bytes().to_vec()]
            }
        };
        let transient: BTreeMap<String, Vec<u8>> = [("value".to_string(), SENTINEL.to_vec())]
            .into_iter()
            .collect();
        let proposal = Proposal::new(
            "probe-channel",
            definition.id.clone(),
            probe.function.clone(),
            args,
            transient,
            creator.clone(),
            1,
        );
        let mut stub = ChaincodeStub::new(&state, definition, &memberships, &proposal);
        if let Ok(payload) = chaincode.invoke(&mut stub) {
            if contains_sentinel(&payload) {
                leaks.push(LeakFact {
                    uri: uri.clone(),
                    function: probe.function.clone(),
                    channel: probe.channel,
                });
            }
        }
    }
    leaks.sort();
    leaks
}

/// A client identity belonging to some collection member org, so
/// `MemberOnlyRead` guards admit the probe. Falls back to `Org1MSP` when
/// the definition has no parsable membership policy.
fn probe_identity(definition: &ChaincodeDefinition) -> Identity {
    let org = definition
        .collections
        .iter()
        .find_map(|c| {
            SignaturePolicy::parse(&c.member_policy)
                .ok()
                .and_then(|p| p.organizations().into_iter().next())
        })
        .unwrap_or_else(|| "Org1MSP".into());
    let keypair = fabric_crypto::Keypair::generate_from_seed(0x11d7);
    Identity::new(org, Role::Client, keypair.public_key())
}

fn contains_sentinel(payload: &[u8]) -> bool {
    payload.len() >= SENTINEL.len() && payload.windows(SENTINEL.len()).any(|w| w == SENTINEL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_chaincode::samples::{SaccPrivate, SaccPrivateFixed};
    use fabric_types::CollectionConfig;

    fn demo_definition() -> ChaincodeDefinition {
        ChaincodeDefinition::new("sacc")
            .with_collection(CollectionConfig::membership_of("demo", &["Org1MSP".into()]))
    }

    #[test]
    fn vulnerable_sacc_leaks_on_both_probes() {
        let leaks = probe_leaks(
            &SaccPrivate::default(),
            &demo_definition(),
            "network:sacc",
            &sacc_probes(),
        );
        let channels: Vec<LeakChannel> = leaks.iter().map(|l| l.channel).collect();
        assert_eq!(
            channels,
            vec![LeakChannel::ReadPayload, LeakChannel::WritePayload]
        );
        assert!(leaks.iter().all(|l| l.uri == "network:sacc"));
    }

    #[test]
    fn fixed_sacc_write_is_silent_but_read_still_leaks() {
        // The fix removes the Listing 2 write echo; `get` still returns
        // the private value (leaky when submitted as a transaction).
        let leaks = probe_leaks(
            &SaccPrivateFixed::default(),
            &demo_definition(),
            "network:sacc",
            &sacc_probes(),
        );
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].channel, LeakChannel::ReadPayload);
        assert_eq!(leaks[0].function, "get");
    }

    #[test]
    fn unknown_functions_do_not_leak() {
        let leaks = probe_leaks(
            &SaccPrivate::default(),
            &demo_definition(),
            "network:sacc",
            &[ProbeSpec::write("no-such-function")],
        );
        assert!(leaks.is_empty());
    }

    #[test]
    fn sentinel_matching_is_substring_based() {
        assert!(contains_sentinel(
            &[b"prefix".as_slice(), SENTINEL, b"suffix"].concat()
        ));
        assert!(!contains_sentinel(b"the probe key came back"));
    }
}
