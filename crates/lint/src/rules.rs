//! The rule registry and engine.
//!
//! Each rule has a stable ID (`PDC001`…) and checks one misconfiguration
//! class from the paper. Rules only fire on facts they *know*: a fact
//! recorded as `None` (unknown) never produces a finding, so scanning a
//! sparse corpus config cannot produce false positives on omitted fields.

use crate::subject::{CollectionFacts, LeakChannel, LintSubject};
use crate::{Finding, Location, Rule, Severity};
use fabric_policy::{ImplicitMetaRule, Policy, SignaturePolicy};
use fabric_types::OrgId;

/// `BlockToLive` values at or below this are flagged as purge hazards.
const SHORT_BTL_THRESHOLD: u64 = 10;

/// The rule registry, in ID order. IDs are stable: rules are never
/// renumbered, and retired rules would leave gaps.
const RULES: &[Rule] = &[
    Rule {
        id: "PDC001",
        name: "no-collection-endorsement-policy",
        severity: Severity::Warning,
        use_case: Some(2),
        description: "collection omits EndorsementPolicy, so the chaincode-level policy \
                      validates PDC transactions",
    },
    Rule {
        id: "PDC002",
        name: "member-only-read-disabled",
        severity: Severity::Warning,
        use_case: None,
        description: "MemberOnlyRead is disabled: non-member clients can read private data \
                      through chaincode at member peers",
    },
    Rule {
        id: "PDC003",
        name: "member-only-write-disabled",
        severity: Severity::Warning,
        use_case: None,
        description: "MemberOnlyWrite is disabled: non-member clients can submit private \
                      writes through member peers",
    },
    Rule {
        id: "PDC004",
        name: "dissemination-hazard",
        severity: Severity::Warning,
        use_case: None,
        description: "RequiredPeerCount is 0 (private data may exist on the endorsing peer \
                      only) or exceeds MaxPeerCount (endorsement always fails)",
    },
    Rule {
        id: "PDC005",
        name: "short-block-to-live",
        severity: Severity::Note,
        use_case: None,
        description: "BlockToLive is short: private data is purged after very few blocks",
    },
    Rule {
        id: "PDC006",
        name: "policy-satisfiable-by-non-members",
        severity: Severity::Error,
        use_case: Some(1),
        description: "the endorsement policy governing this collection can be satisfied by \
                      collection non-members, enabling fake PDC results injection",
    },
    Rule {
        id: "PDC007",
        name: "degenerate-n-of-m",
        severity: Severity::Warning,
        use_case: Some(1),
        description: "the endorsement policy contains a degenerate OutOf threshold \
                      (0-of-M is vacuous; 1-of-many is a single point of compromise)",
    },
    Rule {
        id: "PDC008",
        name: "unsatisfiable-policy",
        severity: Severity::Error,
        use_case: None,
        description: "the endorsement policy can never be satisfied (threshold exceeds \
                      branches, or it names no organization present on the channel)",
    },
    Rule {
        id: "PDC009",
        name: "private-data-in-response-payload",
        severity: Severity::Error,
        use_case: Some(3),
        description: "a chaincode function returns private data through the response \
                      payload, which is stored in the public block",
    },
    Rule {
        id: "PDC010",
        name: "no-telemetry-collector",
        severity: Severity::Warning,
        use_case: None,
        description: "the network runs without a telemetry collector, so PDC misuse \
                      (non-member endorsements, policy fallback, plaintext payloads) \
                      leaves no security-audit trail",
    },
    Rule {
        id: "PDC011",
        name: "no-flight-recorder",
        severity: Severity::Note,
        use_case: None,
        description: "the network's telemetry pipeline has no flight recorder, so attack \
                      signals (defense rejections, non-member endorsements, MVCC \
                      conflicts) trigger no forensic context dump",
    },
    Rule {
        id: "PDC012",
        name: "private-to-public-state-flow",
        severity: Severity::Error,
        use_case: None,
        description: "a chaincode function writes private-collection data into public world \
                      state, replicating the plaintext to every peer on the channel",
    },
    Rule {
        id: "PDC013",
        name: "private-to-event-flow",
        severity: Severity::Error,
        use_case: None,
        description: "a chaincode function emits private-collection data in a chaincode \
                      event, delivering the plaintext to every block listener",
    },
    Rule {
        id: "PDC014",
        name: "private-response-to-non-member",
        severity: Severity::Error,
        use_case: Some(3),
        description: "a chaincode function returns private-collection data in the proposal \
                      response to a client from a non-member organization",
    },
    Rule {
        id: "PDC015",
        name: "cross-collection-downgrade",
        severity: Severity::Error,
        use_case: None,
        description: "a chaincode function copies data from a stricter collection into one \
                      with a laxer member set, granting non-entitled organizations the \
                      plaintext",
    },
    Rule {
        id: "PDC016",
        name: "guessable-hash-commitment",
        severity: Severity::Warning,
        use_case: None,
        description: "a chaincode function commits a low-entropy private value whose \
                      on-chain hash (PR_Hash) any non-member peer can recover by brute \
                      force",
    },
    Rule {
        id: "PDC017",
        name: "endorsement-nondeterminism",
        severity: Severity::Warning,
        use_case: None,
        description: "a chaincode function produces divergent simulation results across \
                      endorsing peers or repeated runs, so honest endorsements mismatch \
                      and the transaction path is hijackable",
    },
    Rule {
        id: "PDC018",
        name: "chaincode-not-flow-analyzed",
        severity: Severity::Note,
        use_case: None,
        description: "the deployed chaincode has not been through information-flow \
                      analysis; private-data leakage through its code paths is unchecked",
    },
    Rule {
        id: "PDC019",
        name: "single-commit-lane-multi-channel",
        severity: Severity::Note,
        use_case: None,
        description: "the consortium operates multiple channels but commits them on a \
                      single lane; channels are ledger-independent, so per-channel commit \
                      lanes would multiply aggregate throughput",
    },
    Rule {
        id: "PDC020",
        name: "telemetry-without-monitor",
        severity: Severity::Note,
        use_case: None,
        description: "the network records security-audit telemetry but drives no \
                      streaming monitor over it, so attack-rate spikes and node \
                      degradation raise no online alert",
    },
];

/// All registered rules, in stable ID order.
pub fn rules() -> &'static [Rule] {
    RULES
}

/// Looks up a rule by ID.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

fn finding(
    id: &'static str,
    subject: &LintSubject,
    location: Location,
    message: String,
) -> Finding {
    let meta = rule(id).expect("registered rule");
    Finding {
        rule_id: meta.id,
        severity: meta.severity,
        subject: subject.name.clone(),
        location,
        message,
    }
}

/// Lints one subject, returning findings sorted by
/// [`Finding::sort_key`] with exact duplicates collapsed.
pub fn lint_subject(subject: &LintSubject) -> Vec<Finding> {
    let mut findings = Vec::new();
    for collection in &subject.collections {
        check_collection_config(subject, collection, &mut findings);
        check_effective_policy(subject, collection, &mut findings);
    }
    check_chaincode_policy_ast(subject, &mut findings);
    check_leaks(subject, &mut findings);
    check_observability(subject, &mut findings);
    sort_and_dedup(&mut findings);
    findings
}

/// Lints many subjects, returning one merged, deterministically ordered
/// finding list.
pub fn lint_subjects<'a>(subjects: impl IntoIterator<Item = &'a LintSubject>) -> Vec<Finding> {
    let mut findings: Vec<Finding> = subjects.into_iter().flat_map(lint_subject).collect();
    sort_and_dedup(&mut findings);
    findings
}

/// Canonical finding order: sorted by [`Finding::sort_key`], exact
/// duplicates collapsed. Dedup matters for flow findings, where one leak
/// is rediscovered by every (input, identity) combination that reaches
/// it; byte-identical reports across runs depend on this normalization.
pub fn sort_and_dedup(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    findings.dedup();
}

/// PDC001–PDC005: per-collection configuration checks.
fn check_collection_config(subject: &LintSubject, c: &CollectionFacts, out: &mut Vec<Finding>) {
    let loc = || Location::in_collection(&c.uri, &c.name);
    if c.endorsement_policy.is_none() {
        out.push(finding(
            "PDC001",
            subject,
            loc(),
            format!(
                "collection '{}' defines no EndorsementPolicy; PDC writes fall back to the \
                 chaincode-level policy{}",
                c.name,
                subject
                    .chaincode_policy
                    .as_deref()
                    .map(|p| format!(" ({p})"))
                    .unwrap_or_default()
            ),
        ));
    }
    if c.member_only_read == Some(false) {
        out.push(finding(
            "PDC002",
            subject,
            loc(),
            format!(
                "collection '{}' sets MemberOnlyRead=false; any client on the channel can \
                 read its private data through chaincode",
                c.name
            ),
        ));
    }
    if c.member_only_write == Some(false) {
        out.push(finding(
            "PDC003",
            subject,
            loc(),
            format!(
                "collection '{}' sets MemberOnlyWrite=false; any client on the channel can \
                 write its private data through chaincode",
                c.name
            ),
        ));
    }
    if c.required_peer_count == Some(0) {
        out.push(finding(
            "PDC004",
            subject,
            loc(),
            format!(
                "collection '{}' sets RequiredPeerCount=0; the endorsing peer may sign \
                 without disseminating, so private data can be lost with that single peer",
                c.name
            ),
        ));
    }
    if let (Some(required), Some(max)) = (c.required_peer_count, c.max_peer_count) {
        if required > max {
            out.push(finding(
                "PDC004",
                subject,
                loc(),
                format!(
                    "collection '{}' requires dissemination to {required} peers but caps \
                     MaxPeerCount at {max}; endorsement can never succeed",
                    c.name
                ),
            ));
        }
    }
    if let Some(btl) = c.block_to_live {
        if (1..=SHORT_BTL_THRESHOLD).contains(&btl) {
            out.push(finding(
                "PDC005",
                subject,
                loc(),
                format!(
                    "collection '{}' purges private data after only {btl} block(s) \
                     (BlockToLive={btl})",
                    c.name
                ),
            ));
        }
    }
}

/// PDC006 (+ PDC007/PDC008 on collection-level policies): analysis of the
/// policy that effectively governs the collection's PDC transactions.
fn check_effective_policy(subject: &LintSubject, c: &CollectionFacts, out: &mut Vec<Finding>) {
    let loc = || Location::in_collection(&c.uri, &c.name);

    // AST checks on the collection's own policy expression.
    if let Some(expr) = &c.endorsement_policy {
        check_policy_ast(
            subject,
            expr,
            &format!("collection '{}'", c.name),
            loc(),
            out,
        );
    }

    // Reachability by non-members needs the channel org list and the
    // member list; stay silent when either is unknown.
    if subject.channel_orgs.is_empty() || c.member_orgs.is_empty() {
        return;
    }
    let non_members = subject.non_members(c);
    let (source, expr) = match (&c.endorsement_policy, &subject.chaincode_policy) {
        (Some(expr), _) => ("collection-level", expr),
        (None, Some(expr)) => ("chaincode-level", expr),
        (None, None) => return,
    };
    let Ok(policy) = Policy::parse(expr) else {
        return; // PDC008 reports unparsable expressions separately.
    };
    if policy_reachable_by(&policy, &non_members, subject.channel_orgs.len()) {
        out.push(finding(
            "PDC006",
            subject,
            loc(),
            format!(
                "the {source} endorsement policy ({expr}) for collection '{}' can be \
                 satisfied by non-members {} — forged private writes and fabricated reads \
                 validate without any member's endorsement",
                c.name,
                org_list(&non_members),
            ),
        ));
    }
}

/// Whether `policy` can be satisfied using only `orgs` (out of a channel
/// of `channel_size` organizations).
fn policy_reachable_by(policy: &Policy, orgs: &[OrgId], channel_size: usize) -> bool {
    match policy {
        Policy::Signature(p) => p.satisfiable_within(orgs),
        Policy::ImplicitMeta(meta) => match meta.rule {
            ImplicitMetaRule::Any => !orgs.is_empty(),
            ImplicitMetaRule::All => orgs.len() == channel_size,
            ImplicitMetaRule::Majority => orgs.len() > channel_size / 2,
        },
    }
}

/// PDC007/PDC008 on the chaincode-level policy expression.
fn check_chaincode_policy_ast(subject: &LintSubject, out: &mut Vec<Finding>) {
    if let Some(expr) = &subject.chaincode_policy {
        check_policy_ast(
            subject,
            expr,
            "the chaincode-level policy",
            Location::artifact(&subject.uri),
            out,
        );
    }
}

/// Shared AST checks for one endorsement policy expression: degenerate
/// `OutOf` thresholds (PDC007) and unsatisfiability (PDC008).
fn check_policy_ast(
    subject: &LintSubject,
    expr: &str,
    context: &str,
    location: Location,
    out: &mut Vec<Finding>,
) {
    // ImplicitMeta expressions have no signature AST to inspect.
    let Ok(policy) = Policy::parse(expr) else {
        out.push(finding(
            "PDC008",
            subject,
            location,
            format!("{context} endorsement policy ({expr}) does not parse"),
        ));
        return;
    };
    let Policy::Signature(sig) = policy else {
        return;
    };

    for (n, m) in out_of_thresholds(&sig) {
        if n == 0 {
            let mut f = finding(
                "PDC007",
                subject,
                location.clone(),
                format!(
                    "{context} endorsement policy ({expr}) contains OutOf(0, …): satisfied \
                     by the empty endorsement set — every transaction validates"
                ),
            );
            // Vacuous policies are as bad as no policy: escalate.
            f.severity = Severity::Error;
            out.push(f);
        } else if n == 1 && m >= 3 {
            out.push(finding(
                "PDC007",
                subject,
                location.clone(),
                format!(
                    "{context} endorsement policy ({expr}) contains OutOf(1, {m}): any \
                     single organization of {m} suffices — one compromised org forges \
                     endorsements"
                ),
            ));
        }
    }

    if sig.is_unsatisfiable() {
        out.push(finding(
            "PDC008",
            subject,
            location.clone(),
            format!("{context} endorsement policy ({expr}) can never be satisfied"),
        ));
    } else if !subject.channel_orgs.is_empty() && !sig.satisfiable_within(&subject.channel_orgs) {
        out.push(finding(
            "PDC008",
            subject,
            location,
            format!(
                "{context} endorsement policy ({expr}) cannot be satisfied by the channel \
                 organizations {}",
                org_list(&subject.channel_orgs)
            ),
        ));
    }
}

/// All `(n, m)` threshold pairs of `OutOf` nodes in the policy tree.
fn out_of_thresholds(policy: &SignaturePolicy) -> Vec<(u32, usize)> {
    let mut out = Vec::new();
    collect_out_of(policy, &mut out);
    out
}

fn collect_out_of(policy: &SignaturePolicy, out: &mut Vec<(u32, usize)>) {
    match policy {
        SignaturePolicy::Principal(_) => {}
        SignaturePolicy::And(children) | SignaturePolicy::Or(children) => {
            for c in children {
                collect_out_of(c, out);
            }
        }
        SignaturePolicy::OutOf(n, children) => {
            out.push((*n, children.len()));
            for c in children {
                collect_out_of(c, out);
            }
        }
    }
}

/// PDC010/PDC011: a live network known to run without a telemetry
/// collector or without a flight recorder. `None` (scanned configs, plain
/// definitions) stays silent — only a subject built from a running
/// network knows these facts.
fn check_observability(subject: &LintSubject, out: &mut Vec<Finding>) {
    if subject.telemetry_attached == Some(false) {
        out.push(finding(
            "PDC010",
            subject,
            Location::artifact(&subject.uri),
            "no telemetry collector is attached to this network: non-member \
             endorsements, chaincode-level policy fallbacks, and plaintext \
             payload commits will go unaudited"
                .to_string(),
        ));
    }
    if subject.flight_recorder == Some(false) {
        out.push(finding(
            "PDC011",
            subject,
            Location::artifact(&subject.uri),
            "the network's telemetry pipeline keeps no flight recorder: when an \
             attack signal fires there will be no dump of the surrounding spans \
             and audit events to investigate"
                .to_string(),
        ));
    }
    // PDC020 is conditioned on telemetry being present: without a
    // collector there is nothing to monitor, and PDC010 already covers
    // that more fundamental gap.
    if subject.telemetry_attached == Some(true) && subject.monitor_attached == Some(false) {
        out.push(finding(
            "PDC020",
            subject,
            Location::artifact(&subject.uri),
            "the network collects audit telemetry but no monitor evaluates it \
             online: a burst of non-member endorsements or plaintext payload \
             commits would be recorded yet raise no alert"
                .to_string(),
        ));
    }
    if subject.flow_analyzed == Some(false) {
        out.push(finding(
            "PDC018",
            subject,
            Location::artifact(&subject.uri),
            "this chaincode has not been information-flow analyzed: whether its \
             code paths route private data into public state, events, or \
             non-member responses is unknown (run `analyze lint --flow`)"
                .to_string(),
        ));
    }
    if let (Some(lanes), Some(channels)) = (subject.commit_lanes, subject.consortium_channels) {
        if lanes == 1 && channels > 1 {
            out.push(finding(
                "PDC019",
                subject,
                Location::artifact(&subject.uri),
                format!(
                    "the consortium runs {channels} channels on a single commit lane; \
                     channels share no ledger state, so sharding commits across \
                     per-channel lanes scales aggregate throughput with cores"
                ),
            ));
        }
    }
}

/// PDC009: known payload leaks.
fn check_leaks(subject: &LintSubject, out: &mut Vec<Finding>) {
    for leak in &subject.leaks {
        let direction = match leak.channel {
            LeakChannel::ReadPayload => "returns GetPrivateData results (Listing 1)",
            LeakChannel::WritePayload => {
                "returns the value it wrote with PutPrivateData (Listing 2)"
            }
        };
        out.push(finding(
            "PDC009",
            subject,
            Location::artifact(&leak.uri),
            format!(
                "function '{}' {direction}; the payload is recorded in the public block, \
                 visible to every ordering and committing node",
                leak.function
            ),
        ));
    }
}

fn org_list(orgs: &[OrgId]) -> String {
    let names: Vec<&str> = orgs.iter().map(OrgId::as_str).collect();
    format!("{{{}}}", names.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subject::LeakFact;

    fn orgs(names: &[&str]) -> Vec<OrgId> {
        names.iter().map(|n| OrgId::new(*n)).collect()
    }

    /// A defended baseline subject no rule should fire on.
    fn clean_subject() -> LintSubject {
        LintSubject {
            name: "clean".into(),
            uri: "network:clean".into(),
            channel_orgs: orgs(&["Org1MSP", "Org2MSP", "Org3MSP"]),
            chaincode_policy: Some("MAJORITY Endorsement".into()),
            collections: vec![CollectionFacts {
                name: "pdc".into(),
                uri: "network:clean".into(),
                member_orgs: orgs(&["Org1MSP", "Org2MSP"]),
                endorsement_policy: Some("AND('Org1MSP.peer','Org2MSP.peer')".into()),
                required_peer_count: Some(1),
                max_peer_count: Some(2),
                block_to_live: Some(0),
                member_only_read: Some(true),
                member_only_write: Some(true),
            }],
            leaks: Vec::new(),
            telemetry_attached: None,
            flight_recorder: None,
            flow_analyzed: None,
            monitor_attached: None,
            commit_lanes: None,
            consortium_channels: None,
        }
    }

    fn ids(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule_id).collect()
    }

    fn fires(subject: &LintSubject, id: &str) -> bool {
        lint_subject(subject).iter().any(|f| f.rule_id == id)
    }

    #[test]
    fn pdc010_fires_only_on_known_missing_collector() {
        // Unknown (scans, plain definitions): silent.
        assert!(!fires(&clean_subject(), "PDC010"));
        // Known attached: silent.
        let attached = clean_subject().with_telemetry_attached(true);
        assert!(!fires(&attached, "PDC010"));
        // Known missing: warns.
        let missing = clean_subject().with_telemetry_attached(false);
        let findings = lint_subject(&missing);
        let f = findings
            .iter()
            .find(|f| f.rule_id == "PDC010")
            .expect("PDC010 fires on a collector-less network");
        assert_eq!(f.severity, Severity::Warning);
    }

    #[test]
    fn pdc011_fires_only_on_known_missing_flight_recorder() {
        // Unknown (scans, plain definitions): silent.
        assert!(!fires(&clean_subject(), "PDC011"));
        // Known attached: silent.
        let attached = clean_subject().with_flight_recorder(true);
        assert!(!fires(&attached, "PDC011"));
        // Known missing: notes.
        let missing = clean_subject().with_flight_recorder(false);
        let findings = lint_subject(&missing);
        let f = findings
            .iter()
            .find(|f| f.rule_id == "PDC011")
            .expect("PDC011 fires on a recorder-less network");
        assert_eq!(f.severity, Severity::Note);
    }

    #[test]
    fn pdc018_fires_only_on_known_unanalyzed_chaincode() {
        // Unknown (scans, plain definitions): silent.
        assert!(!fires(&clean_subject(), "PDC018"));
        // Known analyzed: silent.
        let analyzed = clean_subject().with_flow_analyzed(true);
        assert!(!fires(&analyzed, "PDC018"));
        // Known unanalyzed: notes.
        let unanalyzed = clean_subject().with_flow_analyzed(false);
        let findings = lint_subject(&unanalyzed);
        let f = findings
            .iter()
            .find(|f| f.rule_id == "PDC018")
            .expect("PDC018 fires on unanalyzed chaincode");
        assert_eq!(f.severity, Severity::Note);
    }

    #[test]
    fn pdc020_fires_only_on_audited_but_unmonitored_networks() {
        // Unknown (scans, plain definitions): silent.
        assert!(!fires(&clean_subject(), "PDC020"));
        // Telemetry and monitor both known-attached: silent.
        let monitored = clean_subject()
            .with_telemetry_attached(true)
            .with_monitor_attached(true);
        assert!(!fires(&monitored, "PDC020"));
        // No telemetry at all: PDC010's territory, PDC020 stays silent.
        let unaudited = clean_subject()
            .with_telemetry_attached(false)
            .with_monitor_attached(false);
        assert!(!fires(&unaudited, "PDC020"));
        // Monitor known missing with telemetry unknown: silent (a scan
        // cannot know whether a live network evaluates its audit stream).
        assert!(!fires(
            &clean_subject().with_monitor_attached(false),
            "PDC020"
        ));
        // Telemetry attached, monitor known missing: notes.
        let unmonitored = clean_subject()
            .with_telemetry_attached(true)
            .with_monitor_attached(false);
        let findings = lint_subject(&unmonitored);
        let f = findings
            .iter()
            .find(|f| f.rule_id == "PDC020")
            .expect("PDC020 fires on a monitored-less audited network");
        assert_eq!(f.severity, Severity::Note);
    }

    #[test]
    fn pdc019_fires_only_on_known_single_lane_multi_channel() {
        // Unknown (scans, plain definitions): silent.
        assert!(!fires(&clean_subject(), "PDC019"));
        // Multiple lanes, or a single channel: silent.
        assert!(!fires(
            &clean_subject().with_commit_scheduling(4, 4),
            "PDC019"
        ));
        assert!(!fires(
            &clean_subject().with_commit_scheduling(1, 1),
            "PDC019"
        ));
        // One lane for several channels: notes.
        let starved = clean_subject().with_commit_scheduling(1, 3);
        let findings = lint_subject(&starved);
        let f = findings
            .iter()
            .find(|f| f.rule_id == "PDC019")
            .expect("PDC019 fires on a single-lane multi-channel consortium");
        assert_eq!(f.severity, Severity::Note);
    }

    #[test]
    fn identical_findings_are_deduplicated() {
        // Two identical subjects (same name) produce the same findings;
        // the merged report must collapse them — the flow analyzer's
        // (input × identity) matrix rediscovers each leak many times.
        let mut subject = clean_subject();
        subject.collections[0].endorsement_policy = None;
        let merged = lint_subjects([&subject, &subject]);
        assert_eq!(merged, lint_subject(&subject));
    }

    #[test]
    fn clean_subject_is_silent() {
        assert_eq!(ids(&lint_subject(&clean_subject())), Vec::<&str>::new());
    }

    // -- one positive + one negative fixture per rule ID --

    #[test]
    fn pdc001_fires_without_collection_policy_and_not_with() {
        let mut vulnerable = clean_subject();
        vulnerable.collections[0].endorsement_policy = None;
        assert!(fires(&vulnerable, "PDC001"));
        assert!(!fires(&clean_subject(), "PDC001"));
    }

    #[test]
    fn pdc002_fires_on_member_only_read_false_only() {
        let mut vulnerable = clean_subject();
        vulnerable.collections[0].member_only_read = Some(false);
        assert!(fires(&vulnerable, "PDC002"));
        assert!(!fires(&clean_subject(), "PDC002"));
        // Unknown stays silent.
        let mut unknown = clean_subject();
        unknown.collections[0].member_only_read = None;
        assert!(!fires(&unknown, "PDC002"));
    }

    #[test]
    fn pdc003_fires_on_member_only_write_false_only() {
        let mut vulnerable = clean_subject();
        vulnerable.collections[0].member_only_write = Some(false);
        assert!(fires(&vulnerable, "PDC003"));
        assert!(!fires(&clean_subject(), "PDC003"));
    }

    #[test]
    fn pdc004_fires_on_zero_required_peer_count_and_impossible_fanout() {
        let mut zero = clean_subject();
        zero.collections[0].required_peer_count = Some(0);
        assert!(fires(&zero, "PDC004"));

        let mut impossible = clean_subject();
        impossible.collections[0].required_peer_count = Some(5);
        impossible.collections[0].max_peer_count = Some(2);
        assert!(fires(&impossible, "PDC004"));

        assert!(!fires(&clean_subject(), "PDC004"));
    }

    #[test]
    fn pdc005_fires_on_short_btl_not_on_zero_or_long() {
        let mut short = clean_subject();
        short.collections[0].block_to_live = Some(3);
        assert!(fires(&short, "PDC005"));

        let mut long = clean_subject();
        long.collections[0].block_to_live = Some(1_000_000);
        assert!(!fires(&long, "PDC005"));
        assert!(!fires(&clean_subject(), "PDC005")); // 0 = keep forever
    }

    #[test]
    fn pdc006_fires_when_non_members_reach_the_policy() {
        // Use Case 1 shape: OutOf(2, five orgs), members = {1, 2};
        // non-members {3,4,5} can reach the threshold alone.
        let mut vulnerable = clean_subject();
        vulnerable.channel_orgs = orgs(&["Org1MSP", "Org2MSP", "Org3MSP", "Org4MSP", "Org5MSP"]);
        vulnerable.collections[0].endorsement_policy = Some(
            "OutOf(2,'Org1MSP.peer','Org2MSP.peer','Org3MSP.peer','Org4MSP.peer','Org5MSP.peer')"
                .into(),
        );
        assert!(fires(&vulnerable, "PDC006"));

        // Defended: policy requires both members.
        assert!(!fires(&clean_subject(), "PDC006"));
    }

    #[test]
    fn pdc006_covers_chaincode_level_fallback_use_case_2() {
        // Use Case 2 shape: no collection policy, chaincode-level ANY.
        let mut vulnerable = clean_subject();
        vulnerable.collections[0].endorsement_policy = None;
        vulnerable.chaincode_policy = Some("ANY Endorsement".into());
        assert!(fires(&vulnerable, "PDC006"));

        // Defended: collection policy pinned to members only.
        let mut defended = clean_subject();
        defended.chaincode_policy = Some("ANY Endorsement".into());
        assert!(!fires(&defended, "PDC006"));
    }

    #[test]
    fn pdc006_majority_depends_on_member_share() {
        // 3 channel orgs, 1 member: the 2 non-members are a majority.
        let mut vulnerable = clean_subject();
        vulnerable.collections[0].member_orgs = orgs(&["Org1MSP"]);
        vulnerable.collections[0].endorsement_policy = None;
        assert!(fires(&vulnerable, "PDC006"));

        // 3 channel orgs, 2 members: 1 non-member is not a majority.
        let mut defended = clean_subject();
        defended.collections[0].endorsement_policy = None;
        defended.chaincode_policy = Some("MAJORITY Endorsement".into());
        assert!(!fires(&defended, "PDC006"));
    }

    #[test]
    fn pdc007_fires_on_degenerate_thresholds() {
        let mut vacuous = clean_subject();
        vacuous.collections[0].endorsement_policy = Some("OutOf(0,'Org1MSP.peer')".into());
        let findings = lint_subject(&vacuous);
        let f = findings.iter().find(|f| f.rule_id == "PDC007").unwrap();
        assert_eq!(f.severity, Severity::Error, "0-of escalates to error");

        let mut weak = clean_subject();
        weak.collections[0].endorsement_policy =
            Some("OutOf(1,'Org1MSP.peer','Org2MSP.peer','Org3MSP.peer')".into());
        let findings = lint_subject(&weak);
        let f = findings.iter().find(|f| f.rule_id == "PDC007").unwrap();
        assert_eq!(f.severity, Severity::Warning);

        // 2-of-3 and plain AND are fine.
        assert!(!fires(&clean_subject(), "PDC007"));
        let mut ok = clean_subject();
        ok.collections[0].endorsement_policy =
            Some("OutOf(2,'Org1MSP.peer','Org2MSP.peer','Org3MSP.peer')".into());
        assert!(!fires(&ok, "PDC007"));
    }

    #[test]
    fn pdc008_fires_on_unsatisfiable_policies() {
        let mut impossible = clean_subject();
        impossible.collections[0].endorsement_policy =
            Some("OutOf(3,'Org1MSP.peer','Org2MSP.peer')".into());
        assert!(fires(&impossible, "PDC008"));

        let mut foreign = clean_subject();
        foreign.collections[0].endorsement_policy = Some("OR('Org9MSP.peer')".into());
        assert!(fires(&foreign, "PDC008"));

        let mut unparsable = clean_subject();
        unparsable.collections[0].endorsement_policy = Some("NOT A POLICY ((".into());
        assert!(fires(&unparsable, "PDC008"));

        assert!(!fires(&clean_subject(), "PDC008"));
    }

    #[test]
    fn pdc009_fires_per_leak() {
        let mut vulnerable = clean_subject();
        vulnerable.leaks.push(LeakFact {
            uri: "chaincode/cc.go".into(),
            function: "setPrivate".into(),
            channel: LeakChannel::WritePayload,
        });
        vulnerable.leaks.push(LeakFact {
            uri: "chaincode/cc.go".into(),
            function: "readPrivate".into(),
            channel: LeakChannel::ReadPayload,
        });
        let findings = lint_subject(&vulnerable);
        assert_eq!(findings.iter().filter(|f| f.rule_id == "PDC009").count(), 2);
        assert!(!fires(&clean_subject(), "PDC009"));
    }

    #[test]
    fn unknown_channel_orgs_suppress_policy_reachability() {
        let mut unknown = clean_subject();
        unknown.channel_orgs = Vec::new();
        unknown.collections[0].endorsement_policy = None;
        unknown.chaincode_policy = Some("ANY Endorsement".into());
        assert!(!fires(&unknown, "PDC006"));
    }

    #[test]
    fn findings_are_sorted_and_merge_deterministically() {
        let mut a = clean_subject();
        a.name = "b-project".into();
        a.collections[0].endorsement_policy = None;
        let mut b = clean_subject();
        b.name = "a-project".into();
        b.collections[0].member_only_read = Some(false);
        b.collections[0].required_peer_count = Some(0);

        let merged = lint_subjects([&a, &b]);
        let mut resorted = merged.clone();
        resorted.sort_by(|x, y| x.sort_key().cmp(&y.sort_key()));
        assert_eq!(merged, resorted);
        // Subjects sort before rules: all of a-project precedes b-project.
        let split = merged
            .iter()
            .position(|f| f.subject == "b-project")
            .unwrap();
        assert!(merged[..split].iter().all(|f| f.subject == "a-project"));
    }
}
