//! `fabric-lint` — a rule-based linter for private data collection (PDC)
//! misconfigurations.
//!
//! The paper shows that PDC privacy rests on configuration the platform
//! does not check: collections that omit the optional
//! `EndorsementPolicy` fall back to the chaincode-level policy (Use
//! Case 2), endorsement policies satisfiable by collection non-members
//! admit forged PDC results (Use Case 1), and chaincode that returns
//! private values through the response payload publishes them to every
//! ordering and committing node (Use Case 3, Listings 1–2; 91.67 % of
//! the GitHub corpus).
//!
//! This crate turns those findings into machine-checkable rules:
//!
//! * [`LintSubject`] is the structured input — one chaincode (or scanned
//!   project) with its channel organizations, chaincode-level policy,
//!   collection configurations, and any known payload leaks. Build one
//!   from a live [`ChaincodeDefinition`] with
//!   [`LintSubject::from_definition`], or from a corpus scan (see
//!   `fabric-analyzer`).
//! * [`lint_subject`] runs every registered rule and returns sorted
//!   [`Finding`]s; [`rules()`] is the stable registry (`PDC001`…).
//! * [`probe`] drives a *live* chaincode through the stub API with a
//!   sentinel value to detect payload leaks dynamically.
//! * [`render`] emits the findings as plain text, JSON, or SARIF 2.1.0.
//!
//! [`ChaincodeDefinition`]: fabric_chaincode::ChaincodeDefinition

pub mod probe;
pub mod render;
pub mod rules;
pub mod subject;

pub use rules::{lint_subject, lint_subjects, rule, rules, sort_and_dedup};
pub use subject::{CollectionFacts, LeakChannel, LeakFact, LintSubject};

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; worth reviewing.
    Note,
    /// Likely misconfiguration; exploitable under extra assumptions.
    Warning,
    /// Violates a paper-demonstrated attack precondition.
    Error,
}

impl Severity {
    /// The SARIF `level` string for this severity.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// Static metadata of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable identifier (`PDC001`…). Never reused or renumbered.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// Default severity of findings from this rule.
    pub severity: Severity,
    /// The paper use case the rule guards (1, 2, 3), if any.
    pub use_case: Option<u8>,
    /// One-line description.
    pub description: &'static str,
}

/// Where a finding points.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Location {
    /// Artifact URI: a file path for scanned projects, or a
    /// `network:<chaincode>` pseudo-URI for live definitions.
    pub uri: String,
    /// The collection the finding concerns, when applicable.
    pub collection: Option<String>,
}

impl Location {
    /// A location in an artifact with no collection context.
    pub fn artifact(uri: impl Into<String>) -> Self {
        Location {
            uri: uri.into(),
            collection: None,
        }
    }

    /// A location naming a collection inside an artifact.
    pub fn in_collection(uri: impl Into<String>, collection: impl Into<String>) -> Self {
        Location {
            uri: uri.into(),
            collection: Some(collection.into()),
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.collection {
            Some(c) => write!(f, "{}#{}", self.uri, c),
            None => f.write_str(&self.uri),
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (its stable ID).
    pub rule_id: &'static str,
    /// Severity of this particular finding (defaults to the rule's; a rule
    /// may escalate, e.g. a vacuous `0-of` policy).
    pub severity: Severity,
    /// The subject (project/chaincode name) the finding belongs to.
    pub subject: String,
    /// Where the problem is.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The stable sort key: subject, then rule, then location, then
    /// message. Reports sorted by this key are byte-identical no matter
    /// what order rules or scan workers produced the findings in.
    pub fn sort_key(&self) -> (&str, &str, &Location, &str) {
        (&self.subject, self.rule_id, &self.location, &self.message)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}: {} ({})",
            self.severity, self.rule_id, self.subject, self.message, self.location
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_seriousness() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.sarif_level(), "error");
    }

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let ids: Vec<&str> = rules().iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "rule IDs must be unique and ascending");
        assert!(ids.iter().all(|id| id.starts_with("PDC")));
    }

    #[test]
    fn every_paper_use_case_has_a_rule() {
        for uc in 1..=3u8 {
            assert!(
                rules().iter().any(|r| r.use_case == Some(uc)),
                "no rule covers use case {uc}"
            );
        }
    }

    #[test]
    fn finding_display_mentions_rule_and_location() {
        let f = Finding {
            rule_id: "PDC001",
            severity: Severity::Warning,
            subject: "proj".into(),
            location: Location::in_collection("collections.json", "c1"),
            message: "msg".into(),
        };
        let s = f.to_string();
        assert!(s.contains("PDC001") && s.contains("collections.json#c1"));
    }
}
