//! Finding renderers: plain text, JSON, and SARIF 2.1.0.
//!
//! All renderers are deterministic functions of the (sorted) finding
//! list, so two runs over the same corpus produce byte-identical
//! reports regardless of scan parallelism. The JSON and SARIF encoders
//! are hand-rolled — the workspace builds offline with no serializer
//! dependency.

use crate::{rules, Finding, Severity};
use std::fmt::Write as _;

/// Renders findings as one line each, followed by a summary line.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{f}");
    }
    let (errors, warnings, notes) = tally(findings);
    let _ = writeln!(
        out,
        "{} finding(s): {errors} error(s), {warnings} warning(s), {notes} note(s)",
        findings.len()
    );
    out
}

/// Renders findings as a JSON report:
/// `{"findings": [...], "summary": {...}}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": {}, \"severity\": {}, \"subject\": {}, \"uri\": {}, \
             \"collection\": {}, \"message\": {}}}",
            escape(f.rule_id),
            escape(&f.severity.to_string()),
            escape(&f.subject),
            escape(&f.location.uri),
            f.location
                .collection
                .as_deref()
                .map_or_else(|| "null".to_string(), escape),
            escape(&f.message),
        );
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    let (errors, warnings, notes) = tally(findings);
    let _ = write!(
        out,
        "],\n  \"summary\": {{\"errors\": {errors}, \"warnings\": {warnings}, \
         \"notes\": {notes}}}\n}}\n"
    );
    out
}

/// Renders findings as a SARIF 2.1.0 log with the full rule registry in
/// `tool.driver.rules`, so SARIF viewers can show rule metadata even for
/// rules that produced no results.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"fabric-lint\",\n          \
         \"informationUri\": \"https://github.com/hyperledger/fabric\",\n          \
         \"rules\": [",
    );
    for (i, r) in rules().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n            {{\"id\": {}, \"name\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"defaultConfiguration\": {{\"level\": {}}}{}}}",
            escape(r.id),
            escape(r.name),
            escape(r.description),
            escape(r.severity.sarif_level()),
            r.use_case
                .map(|uc| format!(", \"properties\": {{\"paperUseCase\": {uc}}}"))
                .unwrap_or_default(),
        );
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rule_index = rules()
            .iter()
            .position(|r| r.id == f.rule_id)
            .expect("finding from registered rule");
        let logical = f
            .location
            .collection
            .as_deref()
            .map(|c| {
                format!(
                    ", \"logicalLocations\": [{{\"name\": {}, \"kind\": \"collection\"}}]",
                    escape(c)
                )
            })
            .unwrap_or_default();
        let _ = write!(
            out,
            "\n        {{\"ruleId\": {}, \"ruleIndex\": {rule_index}, \"level\": {}, \
             \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": {}}}}}{logical}}}]}}",
            escape(f.rule_id),
            escape(f.severity.sarif_level()),
            escape(&format!("{}: {}", f.subject, f.message)),
            escape(&f.location.uri),
        );
    }
    if !findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn tally(findings: &[Finding]) -> (usize, usize, usize) {
    let count = |s| findings.iter().filter(|f| f.severity == s).count();
    (
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Note),
    )
}

/// JSON string literal with the mandatory escapes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Location;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule_id: "PDC001",
                severity: Severity::Warning,
                subject: "proj-a".into(),
                location: Location::in_collection("collections.json", "c1"),
                message: "no EndorsementPolicy".into(),
            },
            Finding {
                rule_id: "PDC009",
                severity: Severity::Error,
                subject: "proj-a".into(),
                location: Location::artifact("cc.go"),
                message: "leaks \"secret\" via payload".into(),
            },
        ]
    }

    #[test]
    fn text_has_one_line_per_finding_plus_summary() {
        let text = render_text(&sample());
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("2 finding(s): 1 error(s), 1 warning(s), 0 note(s)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = render_json(&sample());
        assert!(json.contains("leaks \\\"secret\\\" via payload"));
        assert!(json.contains("\"summary\": {\"errors\": 1, \"warnings\": 1, \"notes\": 0}"));
        assert!(json.contains("\"collection\": \"c1\""));
        assert!(json.contains("\"collection\": null"));
    }

    #[test]
    fn sarif_lists_every_rule_and_indexes_results() {
        let sarif = render_sarif(&sample());
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        for r in rules() {
            assert!(sarif.contains(&format!("\"id\": \"{}\"", r.id)), "{}", r.id);
        }
        assert!(sarif.contains("\"ruleId\": \"PDC001\", \"ruleIndex\": 0"));
        assert!(sarif.contains("\"paperUseCase\": 2"));
        assert!(sarif.contains("\"logicalLocations\": [{\"name\": \"c1\""));
    }

    #[test]
    fn empty_reports_are_well_formed() {
        assert!(render_json(&[]).contains("\"findings\": []"));
        assert!(render_sarif(&[]).contains("\"results\": []"));
        assert!(render_text(&[]).contains("0 finding(s)"));
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape("a\tb\nc"), "\"a\\tb\\nc\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }
}
