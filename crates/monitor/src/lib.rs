//! Streaming evaluation over the telemetry streams: who is healthy,
//! what is under attack, and what should page an operator.
//!
//! The paper's defenses only matter if someone notices an attack while
//! it is happening. [`fabric_telemetry`] emits the raw signals — typed
//! [`AuditEvent`]s for the Table II use cases, per-stage histograms,
//! flight-recorder dumps — and this crate is the thing that *watches*
//! them:
//!
//! * **Rate detectors** ([`DetectorSpec`]) — sliding-window counts and
//!   EWMA baselines over the audit stream, one named detector per
//!   attack class (`uc1_nonmember_endorsement_rate`,
//!   `uc3_plaintext_payload_rate`, `mvcc_abort_storm`, ...).
//! * **Health model** ([`NodeSample`] → [`NodeHealth`]) — scores commit
//!   lag, commit backlog, gossip anti-entropy staleness, and stage-p99
//!   inflation into `Healthy/Degraded/Critical` per node.
//! * **Alert engine** ([`Alert`], [`AlertTransition`]) — pending →
//!   firing → resolved with dedup keys and hysteresis; firing captures
//!   a [`FlightDump`] so every alert carries forensic context.
//! * **Renderers** — an aggregated text status table, JSON-lines alert
//!   export, and `fabric_alert_firing{rule=...}` gauges through the
//!   existing Prometheus exporter.
//!
//! The engine advances only on [`Monitor::observe_tick`] — normally
//! called once per network tick by `FabricNetwork::advance` — and takes
//! no wall-clock input on any alerting decision, so the transition log
//! is a pure function of the (block-ordered, scheduler-invariant) audit
//! sequence: parallel and sequential validation produce bit-identical
//! alert logs.
//!
//! # Example
//!
//! ```
//! use fabric_monitor::{Monitor, NodeSample};
//! use fabric_telemetry::{AuditEvent, Telemetry};
//! use fabric_types::{CollectionName, OrgId, TxId};
//!
//! let telemetry = Telemetry::with_flight_recorder(64);
//! let monitor = Monitor::new(&telemetry);
//! telemetry.emit(AuditEvent::EndorsementByNonMember {
//!     tx_id: TxId::new("tx1"),
//!     collection: CollectionName::new("PDC1"),
//!     endorser_org: OrgId::new("org3"),
//! });
//! monitor.observe_tick(&[NodeSample {
//!     node: "peer0.org1".into(),
//!     ..NodeSample::default()
//! }]);
//! assert_eq!(
//!     monitor.firing_rules(),
//!     vec!["uc1_nonmember_endorsement_rate".to_string()]
//! );
//! assert!(monitor.render_status().contains("FIRING uc1_nonmember_endorsement_rate"));
//! ```

mod alert;
mod detector;
mod health;
mod render;

pub use alert::{Alert, AlertPhase, AlertTransition};
pub use detector::{DetectorEval, DetectorMode, DetectorSpec};
pub use health::{HealthThresholds, HealthVerdict, NodeHealth, NodeSample};
pub use render::{render_alerts_jsonl, render_status};

use alert::{AlertBook, Condition};
use detector::DetectorState;
use fabric_telemetry::{AuditEvent, FlightDump, Gauge, Telemetry};
use health::HealthModel;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Detector / alert-rule names, one per Table II attack class.
pub const UC1_RULE: &str = "uc1_nonmember_endorsement_rate";
/// Use Case 2: collection policy silently falling back to chaincode level.
pub const UC2_RULE: &str = "uc2_policy_fallback_rate";
/// Use Case 3: plaintext private payload observable in a transaction.
pub const UC3_RULE: &str = "uc3_plaintext_payload_rate";
/// Defense-layer rejections (the defenses are being probed).
pub const DEFENSE_RULE: &str = "defense_rejection_rate";
/// MVCC abort storm: conflicts spiking above the contention baseline.
pub const MVCC_STORM_RULE: &str = "mvcc_abort_storm";
/// Per-node health rule (dedup key `node_critical:<node>`).
pub const NODE_CRITICAL_RULE: &str = "node_critical";

/// Tuning knobs for a [`Monitor`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Rate detectors over the audit stream.
    pub detectors: Vec<DetectorSpec>,
    /// Health-dimension limits.
    pub thresholds: HealthThresholds,
    /// Ticks a condition must hold before an alert fires.
    pub for_ticks: u64,
    /// Ticks a condition must stay clear before an alert resolves.
    pub resolve_ticks: u64,
    /// Resolved-alert history ring capacity.
    pub history_cap: usize,
    /// Transition-log ring capacity.
    pub transitions_cap: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            detectors: default_detectors(),
            thresholds: HealthThresholds::default(),
            for_ticks: 1,
            resolve_ticks: 64,
            history_cap: 256,
            transitions_cap: 4096,
        }
    }
}

/// The default detector set: one rule per attack class.
///
/// UC1/UC2/UC3 and defense rejections are static-threshold at one event
/// — none of them has a legitimate rate in a healthy network. MVCC
/// conflicts do (ordinary contention), so the storm detector is
/// relative-spike: at least 3 aborts in the window *and* 4× the EWMA
/// baseline.
pub fn default_detectors() -> Vec<DetectorSpec> {
    vec![
        DetectorSpec::threshold(UC1_RULE, "endorsement_by_non_member", 1, 64),
        DetectorSpec::threshold(UC2_RULE, "policy_fallback_to_chaincode_level", 1, 64),
        DetectorSpec::threshold(UC3_RULE, "plaintext_payload_in_tx", 1, 64),
        DetectorSpec::threshold(DEFENSE_RULE, "defense_rejected", 1, 64),
        DetectorSpec::relative_spike(MVCC_STORM_RULE, "mvcc_conflict", 4.0, 3, 32),
    ]
}

/// Point-in-time snapshot of one detector for status rendering.
#[derive(Debug, Clone)]
pub struct DetectorStatus {
    pub name: &'static str,
    pub kind: &'static str,
    pub windowed: u64,
    pub baseline_window: f64,
    pub active: bool,
    pub total: u64,
}

/// Aggregated point-in-time view of the whole network.
#[derive(Debug, Clone)]
pub struct NetworkStatus {
    /// Monitor tick the snapshot was taken at.
    pub tick: u64,
    /// Per-node health, node-name order.
    pub nodes: Vec<NodeHealth>,
    /// Detector states, config order.
    pub detectors: Vec<DetectorStatus>,
    /// Pending and firing alerts, key order.
    pub active_alerts: Vec<Alert>,
    /// Firing/resolved transition log, oldest first.
    pub transitions: Vec<AlertTransition>,
}

struct EngineState {
    tick: u64,
    /// Read cursor into the shared [`fabric_telemetry::AuditLog`].
    cursor: usize,
    detectors: Vec<DetectorState>,
    health: HealthModel,
    alerts: AlertBook,
}

struct MonitorInner {
    telemetry: Telemetry,
    /// `fabric_alert_firing{rule=...}` handles, resolved once.
    gauges: Vec<(&'static str, Gauge)>,
    state: Mutex<EngineState>,
}

/// A streaming monitor over one telemetry pipeline. Clones share state;
/// attach to a network with `NetworkBuilder::with_monitor`.
#[derive(Clone)]
pub struct Monitor {
    inner: Arc<MonitorInner>,
}

impl Monitor {
    /// Monitor with the default detector set and thresholds.
    pub fn new(telemetry: &Telemetry) -> Self {
        Self::with_config(telemetry, MonitorConfig::default())
    }

    /// Monitor with custom detectors / thresholds / hysteresis.
    pub fn with_config(telemetry: &Telemetry, config: MonitorConfig) -> Self {
        let mut rules: Vec<&'static str> = config.detectors.iter().map(|d| d.name).collect();
        rules.push(NODE_CRITICAL_RULE);
        let gauges = rules
            .into_iter()
            .map(|rule| {
                (
                    rule,
                    telemetry.metrics().gauge(
                        "fabric_alert_firing",
                        "1 while at least one alert of this rule is firing",
                        &[("rule", rule)],
                    ),
                )
            })
            .collect();
        Monitor {
            inner: Arc::new(MonitorInner {
                telemetry: telemetry.clone(),
                gauges,
                state: Mutex::new(EngineState {
                    tick: 0,
                    cursor: 0,
                    detectors: config
                        .detectors
                        .into_iter()
                        .map(DetectorState::new)
                        .collect(),
                    health: HealthModel::new(config.thresholds),
                    alerts: AlertBook::new(
                        config.for_ticks,
                        config.resolve_ticks,
                        config.history_cap,
                        config.transitions_cap,
                    ),
                }),
            }),
        }
    }

    /// The telemetry pipeline this monitor watches.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Ticks observed so far.
    pub fn tick(&self) -> u64 {
        self.inner.state.lock().tick
    }

    /// Advances the engine by one logical tick: drains new audit events,
    /// steps every detector, scores `samples`, and runs the alert state
    /// machine. Returns the transitions that happened this tick.
    ///
    /// Must be called from deterministic points (the network tick loop);
    /// no wall clock is read.
    pub fn observe_tick(&self, samples: &[NodeSample]) -> Vec<AlertTransition> {
        let mut st = self.inner.state.lock();
        st.tick += 1;
        let tick = st.tick;

        let events = self.inner.telemetry.audit().events_since(st.cursor);
        st.cursor += events.len();

        let mut conditions: BTreeMap<String, Condition> = BTreeMap::new();
        for det in &mut st.detectors {
            let count = events.iter().filter(|e| e.kind() == det.spec.kind).count() as u64;
            if count > 0 {
                det.last_event = events
                    .iter()
                    .rev()
                    .find(|e| e.kind() == det.spec.kind)
                    .cloned();
            }
            let eval = det.step(count);
            conditions.insert(
                det.spec.name.to_string(),
                Condition {
                    rule: det.spec.name,
                    active: eval.active,
                    message: format!(
                        "{} {} events in {}-tick window (baseline {:.2})",
                        eval.windowed, det.spec.kind, det.spec.window_ticks, eval.baseline_window
                    ),
                    evidence: det.last_event.clone(),
                },
            );
        }

        st.health.observe(samples);
        for (node, health) in &st.health.last {
            conditions.insert(
                format!("{NODE_CRITICAL_RULE}:{node}"),
                Condition {
                    rule: NODE_CRITICAL_RULE,
                    active: health.verdict == HealthVerdict::Critical,
                    message: if health.reasons.is_empty() {
                        format!("{node} healthy")
                    } else {
                        format!("{node}: {}", health.reasons.join("; "))
                    },
                    evidence: None,
                },
            );
        }

        let recorder = self.inner.telemetry.flight_recorder();
        let mut capture =
            |ev: &AuditEvent| -> Option<FlightDump> { recorder.map(|r| r.capture(ev.clone())) };
        let transitions = st.alerts.step(tick, &conditions, &mut capture);

        let firing = st.alerts.firing_rules();
        for (rule, gauge) in &self.inner.gauges {
            gauge.set(if firing.iter().any(|r| r == rule) {
                1.0
            } else {
                0.0
            });
        }
        transitions
    }

    /// Aggregated snapshot for rendering.
    pub fn status(&self) -> NetworkStatus {
        let st = self.inner.state.lock();
        NetworkStatus {
            tick: st.tick,
            nodes: st.health.last.values().cloned().collect(),
            detectors: st
                .detectors
                .iter()
                .map(|d| DetectorStatus {
                    name: d.spec.name,
                    kind: d.spec.kind,
                    windowed: d.last_eval.windowed,
                    baseline_window: d.last_eval.baseline_window,
                    active: d.last_eval.active,
                    total: d.total,
                })
                .collect(),
            active_alerts: st.alerts.active(),
            transitions: st.alerts.transitions(),
        }
    }

    /// The aggregated text status table (see [`render_status`]).
    pub fn render_status(&self) -> String {
        render_status(&self.status())
    }

    /// The transition log as JSON lines (see [`render_alerts_jsonl`]).
    pub fn alerts_jsonl(&self) -> String {
        render_alerts_jsonl(&self.transitions())
    }

    /// Firing/resolved transition log, oldest first.
    pub fn transitions(&self) -> Vec<AlertTransition> {
        self.inner.state.lock().alerts.transitions()
    }

    /// Rules with at least one firing alert, sorted.
    pub fn firing_rules(&self) -> Vec<String> {
        self.inner.state.lock().alerts.firing_rules()
    }

    /// Pending and firing alerts, key order.
    pub fn active_alerts(&self) -> Vec<Alert> {
        self.inner.state.lock().alerts.active()
    }

    /// Resolved alerts, oldest first (bounded ring).
    pub fn alert_history(&self) -> Vec<Alert> {
        self.inner.state.lock().alerts.history()
    }

    /// Re-baselines the monitor: drops detector windows, health
    /// baselines, and all alert state, and fast-forwards the audit
    /// cursor past everything already emitted. The tick counter keeps
    /// running. Used after known-noisy setup phases (network seeding) so
    /// alerting starts from a clean slate.
    pub fn reset(&self) {
        let mut st = self.inner.state.lock();
        for det in &mut st.detectors {
            det.reset();
        }
        st.health.reset();
        st.alerts.reset();
        st.cursor = self.inner.telemetry.audit().len();
        for (_, gauge) in &self.inner.gauges {
            gauge.set(0.0);
        }
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("Monitor")
            .field("tick", &st.tick)
            .field("detectors", &st.detectors.len())
            .field("active_alerts", &st.alerts.active().len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_types::{ChaincodeId, CollectionName, OrgId, TxId};

    fn uc1(n: u64) -> AuditEvent {
        AuditEvent::EndorsementByNonMember {
            tx_id: TxId::new(format!("tx{n}")),
            collection: CollectionName::new("PDC1"),
            endorser_org: OrgId::new("org3"),
        }
    }

    fn conflict(n: u64) -> AuditEvent {
        AuditEvent::MvccConflict {
            tx_id: TxId::new(format!("tx{n}")),
            chaincode: ChaincodeId::new("cc"),
        }
    }

    #[test]
    fn uc1_event_fires_its_detector_and_exports_the_gauge() {
        let telemetry = Telemetry::new();
        let monitor = Monitor::new(&telemetry);
        assert!(
            monitor.observe_tick(&[]).is_empty(),
            "quiet tick, no alerts"
        );
        telemetry.emit(uc1(1));
        let transitions = monitor.observe_tick(&[]);
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].rule, UC1_RULE);
        assert_eq!(transitions[0].to, AlertPhase::Firing);
        assert!(telemetry
            .metrics()
            .render_prometheus()
            .contains("fabric_alert_firing{rule=\"uc1_nonmember_endorsement_rate\"} 1"));
    }

    #[test]
    fn firing_alert_captures_flight_forensics_when_a_recorder_is_attached() {
        let telemetry = Telemetry::with_flight_recorder(64);
        let monitor = Monitor::new(&telemetry);
        telemetry.emit(uc1(1));
        monitor.observe_tick(&[]);
        let alerts = monitor.active_alerts();
        assert_eq!(alerts.len(), 1);
        let dump = alerts[0].forensics.as_ref().expect("forensics attached");
        assert_eq!(dump.trigger, uc1(1));
        assert!(dump
            .audit_signature()
            .iter()
            .any(|(kind, _)| *kind == "endorsement_by_non_member"));
    }

    #[test]
    fn alert_resolves_after_the_window_drains_and_quiet_hysteresis_passes() {
        let telemetry = Telemetry::new();
        let config = MonitorConfig {
            detectors: vec![DetectorSpec::threshold(
                UC1_RULE,
                "endorsement_by_non_member",
                1,
                4,
            )],
            resolve_ticks: 2,
            ..MonitorConfig::default()
        };
        let monitor = Monitor::with_config(&telemetry, config);
        telemetry.emit(uc1(1));
        monitor.observe_tick(&[]);
        assert_eq!(monitor.firing_rules(), vec![UC1_RULE.to_string()]);
        let mut resolved_at = None;
        for _ in 0..12 {
            for t in monitor.observe_tick(&[]) {
                if t.to == AlertPhase::Resolved {
                    resolved_at = Some(t.tick);
                }
            }
        }
        let resolved_at = resolved_at.expect("alert resolved");
        // Event at tick 1; window drains after tick 4; 2 quiet ticks.
        assert_eq!(resolved_at, 6);
        assert!(monitor.firing_rules().is_empty());
        assert_eq!(monitor.alert_history().len(), 1);
        assert!(telemetry
            .metrics()
            .render_prometheus()
            .contains("fabric_alert_firing{rule=\"uc1_nonmember_endorsement_rate\"} 0"));
    }

    #[test]
    fn mvcc_storm_needs_a_burst_not_a_single_conflict() {
        let telemetry = Telemetry::new();
        let monitor = Monitor::new(&telemetry);
        telemetry.emit(conflict(1));
        monitor.observe_tick(&[]);
        assert!(
            monitor.firing_rules().is_empty(),
            "one conflict is normal contention"
        );
        for n in 2..6 {
            telemetry.emit(conflict(n));
        }
        monitor.observe_tick(&[]);
        assert_eq!(monitor.firing_rules(), vec![MVCC_STORM_RULE.to_string()]);
    }

    #[test]
    fn idle_gap_between_load_windows_does_not_fire_a_storm_on_resume() {
        let telemetry = Telemetry::new();
        let monitor = Monitor::new(&telemetry);
        let mut next = 0u64;
        let mut emit_conflicts = |n: u64| {
            for _ in 0..n {
                telemetry.emit(conflict(next));
                next += 1;
            }
        };
        // Sustained background contention: 2 MVCC aborts per tick.
        for _ in 0..64 {
            emit_conflicts(2);
            monitor.observe_tick(&[]);
        }
        assert!(monitor.firing_rules().is_empty(), "steady rate is normal");
        // A long idle gap — e.g. the pause between two sweep windows.
        for _ in 0..200 {
            monitor.observe_tick(&[]);
        }
        // Traffic resumes at the same healthy rate: the EWMA baseline
        // must have survived the gap instead of decaying to ~zero and
        // branding the first busy windows an mvcc_abort_storm.
        for _ in 0..40 {
            emit_conflicts(2);
            monitor.observe_tick(&[]);
            assert!(
                monitor.firing_rules().is_empty(),
                "resumed background contention is not a storm"
            );
        }
        // A genuine storm after the gap still fires.
        emit_conflicts(300);
        monitor.observe_tick(&[]);
        assert_eq!(monitor.firing_rules(), vec![MVCC_STORM_RULE.to_string()]);
    }

    #[test]
    fn critical_node_fires_the_per_node_health_rule() {
        let telemetry = Telemetry::new();
        let monitor = Monitor::new(&telemetry);
        let lagging = NodeSample {
            node: "peer0.org2".into(),
            committed_height: 1,
            ordered_height: 20,
            ..NodeSample::default()
        };
        let transitions = monitor.observe_tick(&[lagging]);
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].rule, NODE_CRITICAL_RULE);
        assert_eq!(transitions[0].key, "node_critical:peer0.org2");
        let status = monitor.status();
        assert_eq!(status.nodes[0].verdict, HealthVerdict::Critical);
    }

    #[test]
    fn reset_rebaselines_past_already_emitted_events() {
        let telemetry = Telemetry::new();
        let monitor = Monitor::new(&telemetry);
        telemetry.emit(uc1(1));
        monitor.observe_tick(&[]);
        assert!(!monitor.firing_rules().is_empty());
        monitor.reset();
        assert!(monitor.firing_rules().is_empty());
        assert!(monitor.transitions().is_empty());
        // Old events are not re-consumed; a fresh one still fires.
        assert!(monitor.observe_tick(&[]).is_empty());
        telemetry.emit(uc1(2));
        assert_eq!(monitor.observe_tick(&[]).len(), 1);
    }

    #[test]
    fn transition_log_is_a_pure_function_of_the_event_sequence() {
        let run = || {
            let telemetry = Telemetry::new();
            let config = MonitorConfig {
                resolve_ticks: 3,
                ..MonitorConfig::default()
            };
            let monitor = Monitor::with_config(&telemetry, config);
            for i in 0..40u64 {
                if i % 7 == 0 {
                    telemetry.emit(uc1(i));
                }
                if i > 20 {
                    telemetry.emit(conflict(i));
                    telemetry.emit(conflict(i + 100));
                }
                monitor.observe_tick(&[]);
            }
            monitor.transitions()
        };
        assert_eq!(run(), run());
    }
}
