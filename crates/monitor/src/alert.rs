//! The alert state machine: pending → firing → resolved.
//!
//! Conditions (detector activations, critical node verdicts) are fed in
//! once per tick keyed by a dedup key (`rule`, or `rule:node`). A
//! condition must hold for `for_ticks` consecutive ticks before the
//! alert fires (hysteresis against one-tick blips), and must then stay
//! clear for `resolve_ticks` consecutive ticks before it resolves
//! (hysteresis against flapping). Firing and resolving append to a
//! transition log; resolved alerts land in a bounded history ring.
//!
//! Everything is keyed and iterated through `BTreeMap`s and advances in
//! whole ticks, so the transition log is a pure function of the
//! condition sequence — the determinism the equivalence tests assert.

use fabric_telemetry::{AuditEvent, FlightDump};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

/// Phase of an alert's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertPhase {
    /// Condition active, hysteresis not yet satisfied.
    Pending,
    /// Alert is live.
    Firing,
    /// Condition cleared long enough; alert closed.
    Resolved,
}

impl AlertPhase {
    /// Upper-case label used by renderers (`FIRING ...` lines).
    pub fn label(&self) -> &'static str {
        match self {
            AlertPhase::Pending => "PENDING",
            AlertPhase::Firing => "FIRING",
            AlertPhase::Resolved => "RESOLVED",
        }
    }
}

/// One alert instance (active or historical).
#[derive(Debug, Clone)]
pub struct Alert {
    /// Rule name, e.g. `uc1_nonmember_endorsement_rate`.
    pub rule: String,
    /// Dedup key: the rule name, suffixed with the node for per-node
    /// rules (`node_critical:peer0.org1`).
    pub key: String,
    pub phase: AlertPhase,
    /// Tick the condition first became active.
    pub pending_since: u64,
    /// Tick the alert fired, once it has.
    pub fired_at: Option<u64>,
    /// Tick the alert resolved, once it has.
    pub resolved_at: Option<u64>,
    /// Condition description at the worst observed point.
    pub message: String,
    /// Flight-recorder snapshot captured when the alert fired, when a
    /// recorder was attached and the rule had audit evidence.
    pub forensics: Option<FlightDump>,
}

/// One entry of the firing/resolved transition log.
///
/// Deliberately carries no wall-clock or forensic payload: two runs that
/// see the same condition sequence produce `==`-identical logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertTransition {
    /// Monitor tick the transition happened on.
    pub tick: u64,
    /// Rule name.
    pub rule: String,
    /// Dedup key.
    pub key: String,
    /// `Firing` or `Resolved`.
    pub to: AlertPhase,
}

impl fmt::Display for AlertTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tick={} {} {}", self.tick, self.to.label(), self.key)
    }
}

/// A condition evaluation for one dedup key at one tick.
#[derive(Debug, Clone)]
pub(crate) struct Condition {
    pub rule: &'static str,
    pub active: bool,
    pub message: String,
    /// The audit event to flight-dump against if this firing needs
    /// forensics.
    pub evidence: Option<AuditEvent>,
}

#[derive(Debug)]
struct ActiveAlert {
    alert: Alert,
    /// Consecutive active ticks while pending.
    active_streak: u64,
    /// Consecutive inactive ticks while firing.
    inactive_streak: u64,
}

/// Bounded alert book: active alerts, transition log, resolved history.
#[derive(Debug)]
pub(crate) struct AlertBook {
    /// Ticks a condition must hold before firing.
    pub for_ticks: u64,
    /// Ticks a condition must stay clear before resolving.
    pub resolve_ticks: u64,
    history_cap: usize,
    transitions_cap: usize,
    active: BTreeMap<String, ActiveAlert>,
    transitions: VecDeque<AlertTransition>,
    history: VecDeque<Alert>,
}

impl AlertBook {
    pub fn new(
        for_ticks: u64,
        resolve_ticks: u64,
        history_cap: usize,
        transitions_cap: usize,
    ) -> Self {
        AlertBook {
            for_ticks: for_ticks.max(1),
            resolve_ticks: resolve_ticks.max(1),
            history_cap: history_cap.max(1),
            transitions_cap: transitions_cap.max(1),
            active: BTreeMap::new(),
            transitions: VecDeque::new(),
            history: VecDeque::new(),
        }
    }

    /// Advances every tracked key by one tick. `conditions` maps dedup
    /// key → this tick's evaluation; keys seen before but absent from
    /// the map count as inactive. `capture` turns firing evidence into a
    /// flight dump. Returns the transitions appended this tick.
    pub fn step(
        &mut self,
        tick: u64,
        conditions: &BTreeMap<String, Condition>,
        capture: &mut dyn FnMut(&AuditEvent) -> Option<FlightDump>,
    ) -> Vec<AlertTransition> {
        let mut out = Vec::new();

        // Phase 1: advance existing alerts (including keys with no
        // condition entry this tick — those are inactive).
        let mut drop_keys = Vec::new();
        for (key, state) in self.active.iter_mut() {
            let cond = conditions.get(key);
            let active = cond.is_some_and(|c| c.active);
            match state.alert.phase {
                AlertPhase::Pending => {
                    if active {
                        state.active_streak += 1;
                        if let Some(c) = cond {
                            state.alert.message = c.message.clone();
                        }
                        if state.active_streak >= self.for_ticks {
                            state.alert.phase = AlertPhase::Firing;
                            state.alert.fired_at = Some(tick);
                            state.inactive_streak = 0;
                            if state.alert.forensics.is_none() {
                                state.alert.forensics = cond
                                    .and_then(|c| c.evidence.as_ref())
                                    .and_then(&mut *capture);
                            }
                            out.push(AlertTransition {
                                tick,
                                rule: state.alert.rule.clone(),
                                key: key.clone(),
                                to: AlertPhase::Firing,
                            });
                        }
                    } else {
                        // A blip that never met the for-duration: forget it.
                        drop_keys.push(key.clone());
                    }
                }
                AlertPhase::Firing => {
                    if active {
                        state.inactive_streak = 0;
                        if let Some(c) = cond {
                            state.alert.message = c.message.clone();
                        }
                    } else {
                        state.inactive_streak += 1;
                        if state.inactive_streak >= self.resolve_ticks {
                            state.alert.phase = AlertPhase::Resolved;
                            state.alert.resolved_at = Some(tick);
                            out.push(AlertTransition {
                                tick,
                                rule: state.alert.rule.clone(),
                                key: key.clone(),
                                to: AlertPhase::Resolved,
                            });
                            drop_keys.push(key.clone());
                        }
                    }
                }
                AlertPhase::Resolved => unreachable!("resolved alerts leave the active map"),
            }
        }
        for key in drop_keys {
            if let Some(state) = self.active.remove(&key) {
                if state.alert.phase == AlertPhase::Resolved {
                    if self.history.len() == self.history_cap {
                        self.history.pop_front();
                    }
                    self.history.push_back(state.alert);
                }
            }
        }

        // Phase 2: open pending entries for newly active keys. With
        // for_ticks == 1 they fire on this same tick.
        let mut newly_fired = Vec::new();
        for (key, cond) in conditions {
            if !cond.active || self.active.contains_key(key) {
                continue;
            }
            let mut state = ActiveAlert {
                active_streak: 1,
                inactive_streak: 0,
                alert: Alert {
                    rule: cond.rule.to_string(),
                    key: key.clone(),
                    phase: AlertPhase::Pending,
                    pending_since: tick,
                    fired_at: None,
                    resolved_at: None,
                    message: cond.message.clone(),
                    forensics: None,
                },
            };
            if state.active_streak >= self.for_ticks {
                state.alert.phase = AlertPhase::Firing;
                state.alert.fired_at = Some(tick);
                state.alert.forensics = cond.evidence.as_ref().and_then(&mut *capture);
                newly_fired.push(AlertTransition {
                    tick,
                    rule: cond.rule.to_string(),
                    key: key.clone(),
                    to: AlertPhase::Firing,
                });
            }
            self.active.insert(key.clone(), state);
        }
        out.extend(newly_fired);

        for t in &out {
            if self.transitions.len() == self.transitions_cap {
                self.transitions.pop_front();
            }
            self.transitions.push_back(t.clone());
        }
        out
    }

    /// Currently tracked alerts (pending and firing), key order.
    pub fn active(&self) -> Vec<Alert> {
        self.active.values().map(|s| s.alert.clone()).collect()
    }

    /// Rules with at least one firing alert, deduped, sorted.
    pub fn firing_rules(&self) -> Vec<String> {
        let mut rules: Vec<String> = self
            .active
            .values()
            .filter(|s| s.alert.phase == AlertPhase::Firing)
            .map(|s| s.alert.rule.clone())
            .collect();
        rules.sort();
        rules.dedup();
        rules
    }

    /// The firing/resolved transition log, oldest first.
    pub fn transitions(&self) -> Vec<AlertTransition> {
        self.transitions.iter().cloned().collect()
    }

    /// Resolved alerts, oldest first (bounded ring).
    pub fn history(&self) -> Vec<Alert> {
        self.history.iter().cloned().collect()
    }

    /// Drops all alert state and logs.
    pub fn reset(&mut self) {
        self.active.clear();
        self.transitions.clear();
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(rule: &'static str, active: bool) -> (String, Condition) {
        (
            rule.to_string(),
            Condition {
                rule,
                active,
                message: format!("{rule} condition"),
                evidence: None,
            },
        )
    }

    fn no_capture(_: &AuditEvent) -> Option<FlightDump> {
        None
    }

    #[test]
    fn fires_immediately_with_for_ticks_one_and_resolves_after_quiet() {
        let mut book = AlertBook::new(1, 2, 8, 64);
        let active: BTreeMap<_, _> = [cond("r", true)].into();
        let quiet: BTreeMap<_, _> = BTreeMap::new();
        let t1 = book.step(1, &active, &mut no_capture);
        assert_eq!(t1.len(), 1);
        assert_eq!(t1[0].to, AlertPhase::Firing);
        assert!(
            book.step(2, &quiet, &mut no_capture).is_empty(),
            "one quiet tick"
        );
        let t3 = book.step(3, &quiet, &mut no_capture);
        assert_eq!(t3.len(), 1);
        assert_eq!(t3[0].to, AlertPhase::Resolved);
        assert!(book.active().is_empty());
        assert_eq!(book.history().len(), 1);
        assert_eq!(book.history()[0].fired_at, Some(1));
        assert_eq!(book.history()[0].resolved_at, Some(3));
    }

    #[test]
    fn for_duration_hysteresis_swallows_blips() {
        let mut book = AlertBook::new(3, 1, 8, 64);
        let active: BTreeMap<_, _> = [cond("r", true)].into();
        let quiet: BTreeMap<_, _> = BTreeMap::new();
        // Two active ticks then a gap: never fires.
        assert!(book.step(1, &active, &mut no_capture).is_empty());
        assert!(book.step(2, &active, &mut no_capture).is_empty());
        assert!(book.step(3, &quiet, &mut no_capture).is_empty());
        assert!(book.active().is_empty(), "blip was forgotten");
        // Three consecutive active ticks: fires on the third.
        assert!(book.step(4, &active, &mut no_capture).is_empty());
        assert!(book.step(5, &active, &mut no_capture).is_empty());
        let t = book.step(6, &active, &mut no_capture);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, AlertPhase::Firing);
    }

    #[test]
    fn resolve_hysteresis_rides_through_flapping() {
        let mut book = AlertBook::new(1, 3, 8, 64);
        let active: BTreeMap<_, _> = [cond("r", true)].into();
        let quiet: BTreeMap<_, _> = BTreeMap::new();
        book.step(1, &active, &mut no_capture);
        // Two quiet ticks, then active again: still one firing alert,
        // no resolve, no re-fire.
        assert!(book.step(2, &quiet, &mut no_capture).is_empty());
        assert!(book.step(3, &quiet, &mut no_capture).is_empty());
        assert!(book.step(4, &active, &mut no_capture).is_empty());
        assert_eq!(book.firing_rules(), vec!["r".to_string()]);
        assert_eq!(
            book.transitions().len(),
            1,
            "flapping produced no extra transitions"
        );
    }

    #[test]
    fn keys_dedup_and_independent_keys_track_separately() {
        let mut book = AlertBook::new(1, 1, 8, 64);
        let conditions: BTreeMap<String, Condition> = [
            (
                "node_critical:peer0.org1".to_string(),
                Condition {
                    rule: "node_critical",
                    active: true,
                    message: "m".into(),
                    evidence: None,
                },
            ),
            (
                "node_critical:peer0.org2".to_string(),
                Condition {
                    rule: "node_critical",
                    active: true,
                    message: "m".into(),
                    evidence: None,
                },
            ),
        ]
        .into();
        let t = book.step(1, &conditions, &mut no_capture);
        assert_eq!(t.len(), 2, "one alert per key");
        // Same conditions again: already firing, nothing new.
        assert!(book.step(2, &conditions, &mut no_capture).is_empty());
        assert_eq!(book.firing_rules(), vec!["node_critical".to_string()]);
    }

    #[test]
    fn history_ring_is_bounded() {
        let mut book = AlertBook::new(1, 1, 2, 64);
        let quiet: BTreeMap<_, _> = BTreeMap::new();
        for i in 0..5u64 {
            let active: BTreeMap<_, _> = [cond("r", true)].into();
            book.step(i * 2 + 1, &active, &mut no_capture);
            book.step(i * 2 + 2, &quiet, &mut no_capture);
        }
        assert_eq!(book.history().len(), 2, "ring keeps the newest two");
        assert_eq!(book.history()[1].resolved_at, Some(10));
    }

    #[test]
    fn transition_log_is_bounded() {
        let mut book = AlertBook::new(1, 1, 1, 4);
        let quiet: BTreeMap<_, _> = BTreeMap::new();
        for i in 0..6u64 {
            let active: BTreeMap<_, _> = [cond("r", true)].into();
            book.step(i * 2 + 1, &active, &mut no_capture);
            book.step(i * 2 + 2, &quiet, &mut no_capture);
        }
        let log = book.transitions();
        assert_eq!(log.len(), 4);
        assert_eq!(log.last().unwrap().tick, 12);
    }
}
