//! Sliding-window rate detectors over the audit-event stream.
//!
//! Each detector watches one audit-event kind and decides, once per
//! monitor tick, whether its rate condition holds. Two modes:
//!
//! * [`DetectorMode::Threshold`] — the fixed-window count reaches a
//!   static floor. Right for signals that should *never* appear in a
//!   healthy network (a single non-member endorsement is an incident).
//! * [`DetectorMode::RelativeSpike`] — the fixed-window count exceeds
//!   `factor`× an EWMA baseline of the per-tick rate. Right for signals
//!   with a legitimate background rate (MVCC conflicts under contention)
//!   where only a burst above normal is anomalous.
//!
//! All state advances in whole ticks with no wall-clock input, so a
//! detector fed the same audit sequence produces the same decisions —
//! the property the alert-determinism tests pin across the parallelism
//! knob.

use fabric_telemetry::AuditEvent;
use std::collections::VecDeque;

/// EWMA smoothing factor for the windowed-count baseline.
const BASELINE_ALPHA: f64 = 0.1;

/// How a [`DetectorSpec`] turns a windowed count into an active/inactive
/// decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorMode {
    /// Active when the window holds at least `count` events.
    Threshold {
        /// Static floor on the in-window event count.
        count: u64,
    },
    /// Active when the window holds at least `min_count` events *and*
    /// the count exceeds `factor` × an EWMA baseline of past windowed
    /// counts. `min_count` keeps a cold baseline (≈0) from turning the
    /// first stray event into a "spike".
    RelativeSpike {
        /// Multiple of the baseline the window must exceed.
        factor: f64,
        /// Absolute floor below which no spike fires.
        min_count: u64,
    },
}

/// Static description of one rate detector.
#[derive(Debug, Clone)]
pub struct DetectorSpec {
    /// Detector (and alert-rule) name, e.g. `uc1_nonmember_endorsement_rate`.
    pub name: &'static str,
    /// The [`AuditEvent::kind`] this detector counts.
    pub kind: &'static str,
    /// Activation mode.
    pub mode: DetectorMode,
    /// Sliding-window length in monitor ticks.
    pub window_ticks: usize,
}

impl DetectorSpec {
    /// Threshold-mode detector.
    pub fn threshold(
        name: &'static str,
        kind: &'static str,
        count: u64,
        window_ticks: usize,
    ) -> Self {
        DetectorSpec {
            name,
            kind,
            mode: DetectorMode::Threshold { count },
            window_ticks: window_ticks.max(1),
        }
    }

    /// Relative-spike-mode detector.
    pub fn relative_spike(
        name: &'static str,
        kind: &'static str,
        factor: f64,
        min_count: u64,
        window_ticks: usize,
    ) -> Self {
        DetectorSpec {
            name,
            kind,
            mode: DetectorMode::RelativeSpike { factor, min_count },
            window_ticks: window_ticks.max(1),
        }
    }
}

/// One detector's decision for the current tick.
#[derive(Debug, Clone)]
pub struct DetectorEval {
    /// Condition holds this tick.
    pub active: bool,
    /// Events in the sliding window.
    pub windowed: u64,
    /// EWMA baseline of the windowed count (what "normal" looks like
    /// over one window).
    pub baseline_window: f64,
}

/// Runtime state of one detector: the per-tick count ring plus the EWMA
/// baseline.
#[derive(Debug)]
pub(crate) struct DetectorState {
    pub spec: DetectorSpec,
    /// Per-tick counts, newest at the back; at most `window_ticks` long.
    recent: VecDeque<u64>,
    /// Sum of `recent` (maintained incrementally).
    windowed: u64,
    /// EWMA of the windowed count; `None` until the first tick seeds it.
    ewma_windowed: Option<f64>,
    /// Events seen since the detector was created.
    pub total: u64,
    /// The newest matching event, kept so a firing alert can name (and
    /// flight-dump against) the concrete evidence that tripped it.
    pub last_event: Option<AuditEvent>,
    /// The decision made on the most recent tick.
    pub last_eval: DetectorEval,
}

impl DetectorState {
    pub fn new(spec: DetectorSpec) -> Self {
        DetectorState {
            spec,
            recent: VecDeque::new(),
            windowed: 0,
            ewma_windowed: None,
            total: 0,
            last_event: None,
            last_eval: DetectorEval {
                active: false,
                windowed: 0,
                baseline_window: 0.0,
            },
        }
    }

    /// Advances the detector by one tick in which `count` matching
    /// events arrived.
    pub fn step(&mut self, count: u64) -> DetectorEval {
        if self.recent.len() == self.spec.window_ticks {
            if let Some(expired) = self.recent.pop_front() {
                self.windowed -= expired;
            }
        }
        self.recent.push_back(count);
        self.windowed += count;
        self.total += count;

        let baseline_window = self.ewma_windowed.unwrap_or(0.0);
        let active = match self.spec.mode {
            DetectorMode::Threshold { count } => self.windowed >= count,
            DetectorMode::RelativeSpike { factor, min_count } => {
                self.windowed >= min_count && self.windowed as f64 > factor * baseline_window
            }
        };
        // The baseline absorbs this tick only *after* the decision, so a
        // burst is judged against pre-burst normal, not against itself.
        // Idle ticks (no matching events at all) leave the baseline
        // frozen: "normal" is what traffic looks like when there *is*
        // traffic. Otherwise a long quiet gap between load windows
        // decays the EWMA toward zero and the first busy window after
        // the gap — at exactly yesterday's healthy rate — reads as a
        // relative spike.
        if count > 0 {
            let windowed = self.windowed as f64;
            self.ewma_windowed = Some(match self.ewma_windowed {
                Some(prev) => BASELINE_ALPHA * windowed + (1.0 - BASELINE_ALPHA) * prev,
                None => windowed,
            });
        }

        let eval = DetectorEval {
            active,
            windowed: self.windowed,
            baseline_window,
        };
        self.last_eval = eval.clone();
        eval
    }

    /// Drops all window and baseline state (the spec stays).
    pub fn reset(&mut self) {
        self.recent.clear();
        self.windowed = 0;
        self.ewma_windowed = None;
        self.total = 0;
        self.last_event = None;
        self.last_eval = DetectorEval {
            active: false,
            windowed: 0,
            baseline_window: 0.0,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_detector_activates_at_the_floor_and_expires_with_the_window() {
        let mut d = DetectorState::new(DetectorSpec::threshold("t", "k", 2, 3));
        assert!(!d.step(1).active, "one event under a floor of two");
        assert!(d.step(1).active, "two events inside the window");
        assert!(d.step(0).active, "both events still in the 3-tick window");
        let eval = d.step(0);
        assert!(!eval.active, "first event slid out of the window");
        assert_eq!(eval.windowed, 1);
        assert!(!d.step(0).active);
        assert_eq!(d.total, 2);
    }

    #[test]
    fn relative_spike_needs_min_count_when_baseline_is_cold() {
        let mut d = DetectorState::new(DetectorSpec::relative_spike("s", "k", 4.0, 3, 4));
        assert!(!d.step(1).active, "single event is not a storm");
        assert!(!d.step(1).active);
        assert!(
            d.step(4).active,
            "burst clears min_count and 4x a cold baseline"
        );
    }

    #[test]
    fn relative_spike_tolerates_a_steady_background_rate() {
        let mut d = DetectorState::new(DetectorSpec::relative_spike("s", "k", 4.0, 3, 4));
        // Long steady run: baseline converges to ~2/tick, window ~8.
        for _ in 0..64 {
            assert!(!d.step(2).active, "steady rate never spikes");
        }
        // A 5x burst in one tick clears factor * baseline.
        let eval = d.step(40);
        assert!(eval.active, "burst over baseline fires: {eval:?}");
    }

    #[test]
    fn idle_gap_does_not_turn_resumed_traffic_into_a_spike() {
        let mut d = DetectorState::new(DetectorSpec::relative_spike("s", "k", 4.0, 3, 4));
        // Establish a healthy background rate of 2 events/tick.
        for _ in 0..64 {
            assert!(!d.step(2).active);
        }
        let baseline_before_gap = d.last_eval.baseline_window;
        // A long idle gap between sweep windows: the baseline must
        // freeze at "what traffic looks like", not decay toward zero.
        for _ in 0..200 {
            assert!(!d.step(0).active, "idle ticks never spike");
        }
        // Traffic resumes at exactly the old healthy rate. Before the
        // idle-freeze fix the decayed baseline flagged this window as an
        // mvcc_abort_storm-style relative spike.
        for _ in 0..16 {
            let eval = d.step(2);
            assert!(
                !eval.active,
                "resumed background rate after an idle gap is not a storm: {eval:?}"
            );
            assert!(
                eval.baseline_window >= baseline_before_gap * 0.8,
                "baseline must survive the gap: {eval:?} vs {baseline_before_gap}"
            );
        }
        // A genuine burst after the gap still fires.
        let eval = d.step(40);
        assert!(eval.active, "real bursts still spike after a gap: {eval:?}");
    }

    #[test]
    fn step_sequences_are_deterministic() {
        let run = || {
            let mut d = DetectorState::new(DetectorSpec::relative_spike("s", "k", 3.0, 2, 5));
            (0..32)
                .map(|i| d.step((i % 7) as u64).active)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_clears_window_and_baseline() {
        let mut d = DetectorState::new(DetectorSpec::threshold("t", "k", 1, 4));
        d.step(5);
        assert!(d.last_eval.active);
        d.reset();
        assert_eq!(d.total, 0);
        assert!(!d.last_eval.active);
        assert!(!d.step(0).active);
    }
}
