//! Per-node health scoring.
//!
//! Every monitor tick each node reports a [`NodeSample`] — raw gauges
//! the network layer can read cheaply (chain heights, queue depths,
//! gossip backlog, stage p99). The health model scores them against
//! [`HealthThresholds`] into a [`HealthVerdict`], keeping an EWMA
//! baseline of the phase latency so inflation is judged relative to the
//! node's own normal rather than an absolute number.
//!
//! The signals follow the performance-characterization literature's
//! bottleneck indicators: commit lag (a validator falling behind
//! ordering), commit-stage backlog (work queued faster than it drains),
//! anti-entropy staleness (private data not reconciling), and phase-p99
//! inflation (the knee of the latency curve).
//!
//! Verdicts from the integer dimensions (lag / backlog / gossip) are
//! deterministic replays of the simulation; the latency dimension reads
//! wall-clock histograms and therefore only ever *degrades* a node — it
//! never reaches `Critical`, so it cannot perturb the deterministic
//! alert stream.

use std::collections::BTreeMap;

/// Aggregate health verdict for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthVerdict {
    /// All dimensions within thresholds.
    Healthy,
    /// At least one dimension past its soft threshold.
    Degraded,
    /// At least one dimension past its hard threshold.
    Critical,
}

impl HealthVerdict {
    /// Lower-case label for renderers and gauges.
    pub fn label(&self) -> &'static str {
        match self {
            HealthVerdict::Healthy => "healthy",
            HealthVerdict::Degraded => "degraded",
            HealthVerdict::Critical => "critical",
        }
    }
}

/// One node's raw signals for one monitor tick.
#[derive(Debug, Clone, Default)]
pub struct NodeSample {
    /// Node name, e.g. `peer0.org1` or `orderer0`.
    pub node: String,
    /// Local committed chain height.
    pub committed_height: u64,
    /// Height the ordering service has cut up to (the target the node
    /// should converge to).
    pub ordered_height: u64,
    /// Commit-stage backlog: work accepted but not yet committed
    /// (pending orderer txs, queued blocks).
    pub backlog: u64,
    /// Private-data packages awaiting gossip anti-entropy reconciliation.
    pub gossip_pending: u64,
    /// Stage-latency p99 in seconds, when a histogram is available.
    pub stage_p99_seconds: Option<f64>,
}

/// Soft (degraded) and hard (critical) limits for each health dimension.
#[derive(Debug, Clone)]
pub struct HealthThresholds {
    /// Blocks of commit lag tolerated before degraded / critical.
    pub degraded_lag: u64,
    pub critical_lag: u64,
    /// Backlog depth tolerated before degraded / critical.
    pub degraded_backlog: u64,
    pub critical_backlog: u64,
    /// Pending gossip reconciliations tolerated before degraded / critical.
    pub degraded_gossip: u64,
    pub critical_gossip: u64,
    /// p99 must exceed `inflation_factor` × the node's EWMA baseline —
    /// and the absolute floor — to count as inflated.
    pub p99_inflation_factor: f64,
    /// Absolute p99 floor (seconds) below which inflation is ignored.
    pub p99_floor_seconds: f64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        HealthThresholds {
            degraded_lag: 2,
            critical_lag: 8,
            degraded_backlog: 64,
            critical_backlog: 256,
            degraded_gossip: 8,
            critical_gossip: 64,
            p99_inflation_factor: 3.0,
            p99_floor_seconds: 0.001,
        }
    }
}

/// Scored health of one node at one tick.
#[derive(Debug, Clone)]
pub struct NodeHealth {
    pub node: String,
    pub verdict: HealthVerdict,
    /// `ordered_height - committed_height`, saturating.
    pub commit_lag: u64,
    pub backlog: u64,
    pub gossip_pending: u64,
    /// Most recent p99, when sampled.
    pub stage_p99_seconds: Option<f64>,
    /// Human-readable reasons for a non-healthy verdict.
    pub reasons: Vec<String>,
}

/// EWMA smoothing for the per-node p99 baseline.
const P99_ALPHA: f64 = 0.2;

#[derive(Debug, Default)]
struct NodeTrack {
    p99_baseline: Option<f64>,
}

/// Scores [`NodeSample`]s into [`NodeHealth`] verdicts, tracking one
/// latency baseline per node.
#[derive(Debug)]
pub(crate) struct HealthModel {
    thresholds: HealthThresholds,
    tracks: BTreeMap<String, NodeTrack>,
    /// Verdicts from the most recent tick, by node name.
    pub last: BTreeMap<String, NodeHealth>,
}

impl HealthModel {
    pub fn new(thresholds: HealthThresholds) -> Self {
        HealthModel {
            thresholds,
            tracks: BTreeMap::new(),
            last: BTreeMap::new(),
        }
    }

    /// Scores one tick's samples, replacing the previous snapshot.
    pub fn observe(&mut self, samples: &[NodeSample]) {
        let mut next = BTreeMap::new();
        for sample in samples {
            let health = self.score(sample);
            next.insert(sample.node.clone(), health);
        }
        self.last = next;
    }

    fn score(&mut self, sample: &NodeSample) -> NodeHealth {
        let t = &self.thresholds;
        let mut verdict = HealthVerdict::Healthy;
        let mut reasons = Vec::new();
        let mut raise = |v: &mut HealthVerdict, to: HealthVerdict, reason: String| {
            if to > *v {
                *v = to;
            }
            reasons.push(reason);
        };

        let lag = sample
            .ordered_height
            .saturating_sub(sample.committed_height);
        if lag >= t.critical_lag {
            raise(
                &mut verdict,
                HealthVerdict::Critical,
                format!("commit lag {lag} blocks (critical >= {})", t.critical_lag),
            );
        } else if lag >= t.degraded_lag {
            raise(
                &mut verdict,
                HealthVerdict::Degraded,
                format!("commit lag {lag} blocks (degraded >= {})", t.degraded_lag),
            );
        }

        if sample.backlog >= t.critical_backlog {
            raise(
                &mut verdict,
                HealthVerdict::Critical,
                format!(
                    "commit backlog {} (critical >= {})",
                    sample.backlog, t.critical_backlog
                ),
            );
        } else if sample.backlog >= t.degraded_backlog {
            raise(
                &mut verdict,
                HealthVerdict::Degraded,
                format!(
                    "commit backlog {} (degraded >= {})",
                    sample.backlog, t.degraded_backlog
                ),
            );
        }

        if sample.gossip_pending >= t.critical_gossip {
            raise(
                &mut verdict,
                HealthVerdict::Critical,
                format!(
                    "gossip anti-entropy backlog {} (critical >= {})",
                    sample.gossip_pending, t.critical_gossip
                ),
            );
        } else if sample.gossip_pending >= t.degraded_gossip {
            raise(
                &mut verdict,
                HealthVerdict::Degraded,
                format!(
                    "gossip anti-entropy backlog {} (degraded >= {})",
                    sample.gossip_pending, t.degraded_gossip
                ),
            );
        }

        if let Some(p99) = sample.stage_p99_seconds {
            let track = self.tracks.entry(sample.node.clone()).or_default();
            if let Some(baseline) = track.p99_baseline {
                if p99 > t.p99_floor_seconds && p99 > t.p99_inflation_factor * baseline {
                    // Wall-clock-derived: degrades only, never critical,
                    // so timing jitter cannot reach the alert stream.
                    raise(
                        &mut verdict,
                        HealthVerdict::Degraded,
                        format!(
                            "stage p99 {:.3}ms inflated over baseline {:.3}ms",
                            p99 * 1e3,
                            baseline * 1e3
                        ),
                    );
                }
                track.p99_baseline = Some(P99_ALPHA * p99 + (1.0 - P99_ALPHA) * baseline);
            } else {
                track.p99_baseline = Some(p99);
            }
        }

        NodeHealth {
            node: sample.node.clone(),
            verdict,
            commit_lag: lag,
            backlog: sample.backlog,
            gossip_pending: sample.gossip_pending,
            stage_p99_seconds: sample.stage_p99_seconds,
            reasons,
        }
    }

    /// Drops all baselines and the last snapshot.
    pub fn reset(&mut self) {
        self.tracks.clear();
        self.last.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: &str) -> NodeSample {
        NodeSample {
            node: node.into(),
            committed_height: 10,
            ordered_height: 10,
            ..NodeSample::default()
        }
    }

    #[test]
    fn in_sync_node_is_healthy() {
        let mut model = HealthModel::new(HealthThresholds::default());
        model.observe(&[sample("peer0.org1")]);
        let h = &model.last["peer0.org1"];
        assert_eq!(h.verdict, HealthVerdict::Healthy);
        assert!(h.reasons.is_empty());
    }

    #[test]
    fn commit_lag_escalates_degraded_then_critical() {
        let mut model = HealthModel::new(HealthThresholds::default());
        let mut s = sample("peer0.org1");
        s.ordered_height = 13; // lag 3 >= degraded 2
        model.observe(&[s.clone()]);
        assert_eq!(model.last["peer0.org1"].verdict, HealthVerdict::Degraded);
        s.ordered_height = 30; // lag 20 >= critical 8
        model.observe(&[s]);
        let h = &model.last["peer0.org1"];
        assert_eq!(h.verdict, HealthVerdict::Critical);
        assert_eq!(h.commit_lag, 20);
        assert!(h.reasons.iter().any(|r| r.contains("commit lag")));
    }

    #[test]
    fn worst_dimension_wins() {
        let mut model = HealthModel::new(HealthThresholds::default());
        let mut s = sample("peer0.org1");
        s.gossip_pending = 9; // degraded
        s.backlog = 500; // critical
        model.observe(&[s]);
        let h = &model.last["peer0.org1"];
        assert_eq!(h.verdict, HealthVerdict::Critical);
        assert_eq!(h.reasons.len(), 2);
    }

    #[test]
    fn p99_inflation_only_degrades_and_tracks_a_baseline() {
        let mut model = HealthModel::new(HealthThresholds::default());
        let mut s = sample("peer0.org1");
        s.stage_p99_seconds = Some(0.002);
        model.observe(&[s.clone()]); // establishes baseline, no verdict yet
        assert_eq!(model.last["peer0.org1"].verdict, HealthVerdict::Healthy);
        s.stage_p99_seconds = Some(0.1); // 50x the baseline
        model.observe(&[s]);
        let h = &model.last["peer0.org1"];
        assert_eq!(
            h.verdict,
            HealthVerdict::Degraded,
            "latency alone never criticals"
        );
        assert!(h.reasons.iter().any(|r| r.contains("p99")));
    }

    #[test]
    fn sub_floor_p99_never_counts_as_inflated() {
        let mut model = HealthModel::new(HealthThresholds::default());
        let mut s = sample("peer0.org1");
        s.stage_p99_seconds = Some(0.000_001);
        model.observe(&[s.clone()]);
        s.stage_p99_seconds = Some(0.000_9); // 900x but under the 1ms floor
        model.observe(&[s]);
        assert_eq!(model.last["peer0.org1"].verdict, HealthVerdict::Healthy);
    }
}
