//! Renderers for monitor state: the aggregated text status table and
//! the JSON-lines alert export.

use crate::alert::{AlertPhase, AlertTransition};
use crate::NetworkStatus;
use std::fmt::Write as _;

/// How many transition-log tail entries the status table shows.
const RECENT_TRANSITIONS: usize = 10;

/// Renders the aggregated `network status` snapshot: one row per node,
/// one row per detector, active alerts, and the transition-log tail.
pub fn render_status(status: &NetworkStatus) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "network status @ tick {}", status.tick);

    let _ = writeln!(
        out,
        "{:<16} {:<10} {:>6} {:>9} {:>8} {:>9}",
        "NODE", "HEALTH", "LAG", "BACKLOG", "GOSSIP", "P99(ms)"
    );
    if status.nodes.is_empty() {
        let _ = writeln!(out, "  (no node samples yet)");
    }
    for node in &status.nodes {
        let p99 = node
            .stage_p99_seconds
            .map(|s| format!("{:.3}", s * 1e3))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:<16} {:<10} {:>6} {:>9} {:>8} {:>9}",
            node.node,
            node.verdict.label(),
            node.commit_lag,
            node.backlog,
            node.gossip_pending,
            p99
        );
        for reason in &node.reasons {
            let _ = writeln!(out, "    - {reason}");
        }
    }

    let _ = writeln!(
        out,
        "{:<32} {:>8} {:>12} {:>7} {:>8}",
        "DETECTOR", "WINDOW", "BASELINE", "ACTIVE", "TOTAL"
    );
    for det in &status.detectors {
        let _ = writeln!(
            out,
            "{:<32} {:>8} {:>12.2} {:>7} {:>8}",
            det.name,
            det.windowed,
            det.baseline_window,
            if det.active { "yes" } else { "no" },
            det.total
        );
    }

    let _ = writeln!(out, "ALERTS");
    if status.active_alerts.is_empty() {
        let _ = writeln!(out, "  (none)");
    }
    for alert in &status.active_alerts {
        let since = match alert.phase {
            AlertPhase::Firing => alert.fired_at.unwrap_or(alert.pending_since),
            _ => alert.pending_since,
        };
        let forensics = if alert.forensics.is_some() {
            " [flight dump attached]"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {} {} since_tick={} {}{}",
            alert.phase.label(),
            alert.key,
            since,
            alert.message,
            forensics
        );
    }

    let _ = writeln!(out, "RECENT TRANSITIONS");
    let tail = status
        .transitions
        .iter()
        .rev()
        .take(RECENT_TRANSITIONS)
        .collect::<Vec<_>>();
    if tail.is_empty() {
        let _ = writeln!(out, "  (none)");
    }
    for t in tail.into_iter().rev() {
        let _ = writeln!(out, "  {t}");
    }
    out
}

/// Renders the transition log as JSON lines, one object per transition,
/// oldest first:
///
/// ```text
/// {"tick":12,"rule":"uc1_nonmember_endorsement_rate","key":"...","phase":"firing"}
/// ```
pub fn render_alerts_jsonl(transitions: &[AlertTransition]) -> String {
    let mut out = String::new();
    for t in transitions {
        let _ = writeln!(
            out,
            "{{\"tick\":{},\"rule\":\"{}\",\"key\":\"{}\",\"phase\":\"{}\"}}",
            t.tick,
            escape(&t.rule),
            escape(&t.key),
            match t.to {
                AlertPhase::Pending => "pending",
                AlertPhase::Firing => "firing",
                AlertPhase::Resolved => "resolved",
            }
        );
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{HealthVerdict, NodeHealth};
    use crate::{DetectorStatus, UC1_RULE};

    fn transition(tick: u64, to: AlertPhase) -> AlertTransition {
        AlertTransition {
            tick,
            rule: UC1_RULE.to_string(),
            key: UC1_RULE.to_string(),
            to,
        }
    }

    #[test]
    fn status_table_carries_nodes_detectors_and_transitions() {
        let status = NetworkStatus {
            tick: 42,
            nodes: vec![NodeHealth {
                node: "peer0.org1".into(),
                verdict: HealthVerdict::Healthy,
                commit_lag: 0,
                backlog: 0,
                gossip_pending: 0,
                stage_p99_seconds: Some(0.0012),
                reasons: vec![],
            }],
            detectors: vec![DetectorStatus {
                name: UC1_RULE,
                kind: "endorsement_by_non_member",
                windowed: 3,
                baseline_window: 0.0,
                active: true,
                total: 3,
            }],
            active_alerts: vec![],
            transitions: vec![
                transition(40, AlertPhase::Firing),
                transition(41, AlertPhase::Resolved),
            ],
        };
        let text = render_status(&status);
        assert!(text.contains("network status @ tick 42"));
        assert!(text.contains("NODE"));
        assert!(text.contains("peer0.org1"));
        assert!(text.contains("healthy"));
        assert!(text.contains(UC1_RULE));
        assert!(text.contains("FIRING"));
        assert!(text.contains("RESOLVED"));
    }

    #[test]
    fn jsonl_export_is_one_object_per_transition() {
        let jsonl = render_alerts_jsonl(&[
            transition(7, AlertPhase::Firing),
            transition(9, AlertPhase::Resolved),
        ]);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"tick\":7,\"rule\":\"uc1_nonmember_endorsement_rate\",\
             \"key\":\"uc1_nonmember_endorsement_rate\",\"phase\":\"firing\"}"
        );
        assert!(lines[1].contains("\"phase\":\"resolved\""));
    }
}
