//! Multi-channel consortia: the paper's Fig. 1 topology.
//!
//! A consortium groups organizations into multiple channels for different
//! business goals; each channel maintains a **separate ledger**, and an
//! organization participating in several channels uses the same enrolled
//! identities in all of them. Outsiders of a channel cannot access its
//! ledger — the isolation the PDC mechanism then refines *within* a
//! channel.

use crate::builder::NetworkBuilder;
use crate::net::FabricNetwork;
use fabric_orderer::BatchConfig;
use fabric_types::{ChannelId, DefenseConfig};
use std::collections::BTreeMap;

/// A consortium of organizations operating any number of channels.
///
/// Channels created through one consortium share the seed, so an
/// organization's peer and client identities are identical across its
/// channels (verified by the integration tests).
#[derive(Debug)]
pub struct Consortium {
    seed: u64,
    defense: DefenseConfig,
    batch: BatchConfig,
    channels: BTreeMap<ChannelId, FabricNetwork>,
    /// Commit lanes the consortium's channels are scheduled onto (see
    /// `fabric_peer::ShardedScheduler`). The default of 1 serializes all
    /// channels — correct but leaves cores idle; `fabric-lint` rule
    /// PDC019 flags that configuration on multi-channel consortia.
    commit_lanes: usize,
}

impl Consortium {
    /// Creates an empty consortium.
    pub fn new(seed: u64) -> Self {
        Consortium {
            seed,
            defense: DefenseConfig::original(),
            batch: BatchConfig {
                max_message_count: 10,
                batch_timeout_ticks: 2,
            },
            channels: BTreeMap::new(),
            commit_lanes: 1,
        }
    }

    /// Sets the defense configuration for channels created afterwards.
    pub fn with_defense(mut self, defense: DefenseConfig) -> Self {
        self.defense = defense;
        self
    }

    /// Sets the number of commit lanes channels are scheduled onto.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is 0.
    pub fn with_commit_lanes(mut self, lanes: usize) -> Self {
        self.set_commit_lanes(lanes);
        self
    }

    /// Sets the number of commit lanes channels are scheduled onto.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is 0.
    pub fn set_commit_lanes(&mut self, lanes: usize) {
        assert!(lanes > 0, "a consortium needs at least one commit lane");
        self.commit_lanes = lanes;
    }

    /// The number of commit lanes channels are scheduled onto.
    pub fn commit_lanes(&self) -> usize {
        self.commit_lanes
    }

    /// Creates a channel joining the given organizations.
    ///
    /// # Panics
    ///
    /// Panics when the channel already exists or `orgs` is empty.
    pub fn create_channel(&mut self, name: &str, orgs: &[&str]) -> &mut FabricNetwork {
        let id = ChannelId::new(name);
        assert!(
            !self.channels.contains_key(&id),
            "channel {name:?} already exists"
        );
        let net = NetworkBuilder::new(name)
            .orgs(orgs)
            .seed(self.seed)
            .defense(self.defense)
            .batch(self.batch)
            .build();
        self.channels.insert(id.clone(), net);
        self.channels.get_mut(&id).expect("just inserted")
    }

    /// Read access to a channel.
    ///
    /// # Panics
    ///
    /// Panics when the channel does not exist.
    pub fn channel(&self, name: &str) -> &FabricNetwork {
        &self.channels[&ChannelId::new(name)]
    }

    /// Mutable access to a channel.
    ///
    /// # Panics
    ///
    /// Panics when the channel does not exist.
    pub fn channel_mut(&mut self, name: &str) -> &mut FabricNetwork {
        self.channels
            .get_mut(&ChannelId::new(name))
            .expect("unknown channel")
    }

    /// The channel names, in order.
    pub fn channel_names(&self) -> Vec<String> {
        self.channels.keys().map(|c| c.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_are_created_and_listed() {
        let mut consortium = Consortium::new(9);
        consortium.create_channel("c1", &["Org1MSP", "Org2MSP"]);
        consortium.create_channel("c2", &["Org2MSP"]);
        assert_eq!(consortium.channel_names(), vec!["c1", "c2"]);
        assert_eq!(consortium.channel("c1").orgs().len(), 2);
        assert_eq!(consortium.channel("c2").orgs().len(), 1);
    }

    #[test]
    fn shared_org_keeps_one_identity_across_channels() {
        let mut consortium = Consortium::new(10);
        consortium.create_channel("c1", &["Org1MSP", "Org2MSP"]);
        consortium.create_channel("c2", &["Org2MSP", "Org3MSP"]);
        let p2_on_c1 = consortium
            .channel("c1")
            .peer("peer0.org2")
            .identity()
            .clone();
        let p2_on_c2 = consortium
            .channel("c2")
            .peer("peer0.org2")
            .identity()
            .clone();
        assert_eq!(p2_on_c1.public_key, p2_on_c2.public_key);
        // Distinct orgs still have distinct identities.
        let p1 = consortium
            .channel("c1")
            .peer("peer0.org1")
            .identity()
            .clone();
        assert_ne!(p1.public_key, p2_on_c1.public_key);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_channel_rejected() {
        let mut consortium = Consortium::new(11);
        consortium.create_channel("c1", &["Org1MSP"]);
        consortium.create_channel("c1", &["Org1MSP"]);
    }

    #[test]
    fn commit_lanes_default_and_override() {
        let consortium = Consortium::new(12);
        assert_eq!(consortium.commit_lanes(), 1);
        let mut sharded = Consortium::new(13).with_commit_lanes(4);
        assert_eq!(sharded.commit_lanes(), 4);
        sharded.set_commit_lanes(2);
        assert_eq!(sharded.commit_lanes(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one commit lane")]
    fn zero_commit_lanes_rejected() {
        Consortium::new(14).with_commit_lanes(0);
    }
}
