//! Network-level errors.

use fabric_client::ClientError;
use fabric_peer::EndorseError;
use std::fmt;

/// Errors from the high-level network API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// No peer registered under that name.
    UnknownPeer(String),
    /// No client registered under that name.
    UnknownClient(String),
    /// An endorsing peer refused the proposal.
    Endorse {
        /// The peer that failed.
        peer: String,
        /// Why.
        error: EndorseError,
    },
    /// The client aborted transaction assembly.
    Client(ClientError),
    /// The endorsing peer could not disseminate private data to the
    /// required number of collection member peers (`RequiredPeerCount`).
    DisseminationFailed {
        /// Collection whose requirement was missed.
        collection: String,
        /// Peers actually reached.
        delivered: usize,
        /// `RequiredPeerCount`.
        required: u32,
    },
    /// The transaction did not appear in a block within the tick budget.
    NotCommitted,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownPeer(p) => write!(f, "unknown peer {p:?}"),
            NetworkError::UnknownClient(c) => write!(f, "unknown client {c:?}"),
            NetworkError::Endorse { peer, error } => {
                write!(f, "endorsement failed at {peer}: {error}")
            }
            NetworkError::Client(e) => write!(f, "client aborted: {e}"),
            NetworkError::DisseminationFailed {
                collection,
                delivered,
                required,
            } => write!(
                f,
                "private data of {collection} reached {delivered} peer(s), {required} required"
            ),
            NetworkError::NotCommitted => write!(f, "transaction was not ordered in time"),
        }
    }
}

impl std::error::Error for NetworkError {}

impl From<ClientError> for NetworkError {
    fn from(e: ClientError) -> Self {
        NetworkError::Client(e)
    }
}
