//! Builder for [`FabricNetwork`].

use crate::net::FabricNetwork;
use fabric_client::Client;
use fabric_crypto::Keypair;
use fabric_gossip::GossipHub;
use fabric_monitor::Monitor;
use fabric_orderer::{BatchConfig, OrderingService};
use fabric_peer::{ChannelPolicies, Peer};
use fabric_telemetry::Telemetry;
use fabric_types::{ChannelId, DefenseConfig, OrgId};
use std::collections::BTreeMap;

/// Configures and builds a [`FabricNetwork`].
///
/// Defaults: three orderers, one peer + one client per org (named
/// `peer0.orgN` / `client0.orgN`), Fabric's default batch parameters, all
/// defenses off (the original framework).
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    channel: ChannelId,
    orgs: Vec<OrgId>,
    orderer_count: usize,
    batch_config: BatchConfig,
    defense: DefenseConfig,
    seed: u64,
    parallel_validation: bool,
    telemetry: Option<Telemetry>,
    monitor: Option<Monitor>,
}

impl NetworkBuilder {
    /// Starts a builder for `channel`.
    pub fn new(channel: impl Into<ChannelId>) -> Self {
        NetworkBuilder {
            channel: channel.into(),
            orgs: Vec::new(),
            orderer_count: 3,
            batch_config: BatchConfig {
                max_message_count: 10,
                batch_timeout_ticks: 2,
            },
            defense: DefenseConfig::original(),
            seed: 0,
            parallel_validation: false,
            telemetry: None,
            monitor: None,
        }
    }

    /// Sets the participating organizations (order defines `orgN` naming).
    pub fn orgs(mut self, orgs: &[&str]) -> Self {
        self.orgs = orgs.iter().map(|o| OrgId::new(*o)).collect();
        self
    }

    /// Sets the number of Raft orderer nodes.
    pub fn orderers(mut self, count: usize) -> Self {
        self.orderer_count = count;
        self
    }

    /// Sets block-cutting parameters.
    pub fn batch(mut self, config: BatchConfig) -> Self {
        self.batch_config = config;
        self
    }

    /// Sets the defense configuration applied to every peer and client.
    pub fn defense(mut self, defense: DefenseConfig) -> Self {
        self.defense = defense;
        self
    }

    /// Seeds all deterministic randomness (keys, Raft timeouts, gossip).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the staged parallel validation pipeline on every peer
    /// (results are identical to sequential validation).
    pub fn parallel_validation(mut self, enabled: bool) -> Self {
        self.parallel_validation = enabled;
        self
    }

    /// Attaches one shared telemetry pipeline to every peer, client, and
    /// the ordering service, so the whole network reports into a single
    /// metrics registry, span collector, and audit-event log — and a
    /// transaction's trace spans from every node land in one tree. Peers
    /// added later via `FabricNetwork::add_peer` inherit it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Attaches a streaming [`Monitor`] to the network, mirroring
    /// [`NetworkBuilder::with_telemetry`]: `FabricNetwork::advance`
    /// drives it one evaluation tick per network tick with per-node
    /// health samples, and its alerts become part of the network's
    /// operational state (`FabricNetwork::monitor`).
    ///
    /// The monitor watches a telemetry pipeline. If none was attached
    /// yet, the monitor's own pipeline is adopted for the whole network;
    /// if one was, it must be the same pipeline (`build` panics on a
    /// mismatch — a monitor watching a registry nobody writes to would
    /// silently never fire).
    pub fn with_monitor(mut self, monitor: Monitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Builds the network and elects the ordering-service leader.
    ///
    /// # Panics
    ///
    /// Panics if no organizations were configured.
    pub fn build(mut self) -> FabricNetwork {
        assert!(!self.orgs.is_empty(), "a network needs organizations");
        if let Some(monitor) = &self.monitor {
            match &self.telemetry {
                Some(t) => assert!(
                    t.same_pipeline(monitor.telemetry()),
                    "with_monitor: the monitor watches a different telemetry \
                     pipeline than the one attached via with_telemetry"
                ),
                None => self.telemetry = Some(monitor.telemetry().clone()),
            }
        }
        let policies = ChannelPolicies::default_for(&self.orgs);
        let mut gossip = GossipHub::new(self.seed);
        let mut peers = BTreeMap::new();
        let mut clients = BTreeMap::new();

        for org in self.orgs.iter() {
            // "Org1MSP" -> "org1"; fall back to the lowercased org id.
            let short = org
                .as_str()
                .to_ascii_lowercase()
                .trim_end_matches("msp")
                .to_string();
            let peer_name = format!("peer0.{short}");
            let client_name = format!("client0.{short}");
            // Identity seeds derive from the org *name*, so organizations
            // keep the same identities across channels built from the same
            // consortium seed (the paper's Fig. 1 topology).
            let org_tag = org_name_tag(org.as_str());
            let mut peer = Peer::new(
                peer_name.clone(),
                org.clone(),
                self.channel.clone(),
                policies.clone(),
                Keypair::generate_from_seed(self.seed ^ 0x5eed_0000 ^ org_tag),
                self.defense,
            );
            peer.set_parallel_validation(self.parallel_validation);
            if let Some(t) = &self.telemetry {
                peer.set_telemetry(t.clone());
            }
            gossip.register(peer.gossip_id().clone());
            peers.insert(peer_name, peer);
            let mut client = Client::new(
                org.clone(),
                Keypair::generate_from_seed(self.seed ^ 0xc11e_0000 ^ org_tag),
                self.defense,
            );
            if let Some(t) = &self.telemetry {
                client.attach_telemetry(t.clone());
            }
            clients.insert(client_name, client);
        }

        let mut orderer = OrderingService::new(self.orderer_count, self.seed, self.batch_config);
        if let Some(t) = &self.telemetry {
            orderer.set_telemetry(t.clone());
        }
        orderer.run_until_ready(10_000);

        let mut net =
            FabricNetwork::from_parts(self.channel, self.orgs, peers, clients, orderer, gossip);
        if let Some(monitor) = self.monitor {
            net.attach_monitor(monitor);
        }
        net
    }
}

/// FNV-1a over the org name: a stable per-org identity-seed component.
fn org_name_tag(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_named_nodes_per_org() {
        let net = NetworkBuilder::new("ch1")
            .orgs(&["Org1MSP", "Org2MSP"])
            .seed(1)
            .build();
        assert_eq!(
            net.peer_names(),
            vec!["peer0.org1".to_string(), "peer0.org2".to_string()]
        );
        assert_eq!(
            net.client_names(),
            vec!["client0.org1".to_string(), "client0.org2".to_string()]
        );
    }

    #[test]
    #[should_panic(expected = "needs organizations")]
    fn empty_orgs_panic() {
        let _ = NetworkBuilder::new("ch1").build();
    }

    #[test]
    fn with_monitor_alone_adopts_the_monitors_telemetry_pipeline() {
        let telemetry = Telemetry::new();
        let monitor = Monitor::new(&telemetry);
        let net = NetworkBuilder::new("ch1")
            .orgs(&["Org1MSP"])
            .seed(2)
            .with_monitor(monitor)
            .build();
        let net_telemetry = net.telemetry().expect("monitor pipeline adopted");
        assert!(net_telemetry.same_pipeline(&telemetry));
        assert!(net.monitor().is_some());
    }

    #[test]
    #[should_panic(expected = "different telemetry")]
    fn mismatched_monitor_and_telemetry_pipelines_panic() {
        let monitor = Monitor::new(&Telemetry::new());
        let _ = NetworkBuilder::new("ch1")
            .orgs(&["Org1MSP"])
            .with_telemetry(Telemetry::new())
            .with_monitor(monitor)
            .build();
    }
}
