//! In-process Fabric network composition: peers, clients, the Raft-backed
//! ordering service and the gossip layer, wired into the full three-phase
//! execute–order–validate workflow of the paper's Fig. 2.
//!
//! The prototype systems of the paper's evaluation (§V) are instances of
//! [`FabricNetwork`] built with [`NetworkBuilder`]: one peer and one client
//! per organization, a channel, a chaincode with a private data collection,
//! and a configurable [`DefenseConfig`](fabric_types::DefenseConfig).
//!
//! # Examples
//!
//! ```
//! use fabric_network::NetworkBuilder;
//! use fabric_chaincode::{samples::AssetTransfer, ChaincodeDefinition};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = NetworkBuilder::new("mychannel")
//!     .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
//!     .seed(7)
//!     .build();
//! net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
//!
//! let outcome = net.submit_transaction(
//!     "client0.org1",
//!     "assets",
//!     "CreateAsset",
//!     &["a1", "red", "alice", "100"],
//!     &[],
//!     &["peer0.org1", "peer0.org2"],
//! )?;
//! assert!(outcome.validation_code.is_valid());
//! # Ok(())
//! # }
//! ```

mod builder;
mod consortium;
mod error;
mod net;

pub use builder::NetworkBuilder;
pub use consortium::Consortium;
pub use error::NetworkError;
pub use net::{FabricNetwork, FanoutMode, SubmitOutcome};
