//! The running network: the three-phase transaction workflow end to end.

use crate::error::NetworkError;
use fabric_chaincode::{ChaincodeDefinition, ChaincodeHandle};
use fabric_client::Client;
use fabric_gossip::{GossipHub, PeerId};
use fabric_monitor::{Monitor, NodeSample};
use fabric_orderer::OrderingService;
use fabric_peer::Peer;
use fabric_types::{
    Block, ChaincodeId, ChannelId, OrgId, Proposal, ProposalResponse, PvtDataPackage, Transaction,
    TxId, TxValidationCode,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The result of a committed transaction submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// The transaction ID.
    pub tx_id: TxId,
    /// The validation code the peers agreed on.
    pub validation_code: TxValidationCode,
    /// The plaintext chaincode response payload returned to the client.
    pub payload: Vec<u8>,
}

/// How [`FabricNetwork`] hands each ordered block to its peers.
///
/// The network is in-process, so block fan-out is a memory copy rather
/// than a network send. `Shared` is the production path: one block, its
/// `Arc`-backed transaction storage refcount-bumped per peer.
/// `DeepClone` reconstructs an owned copy per peer — the cost model of a
/// fan-out without shared storage — and exists so the end-to-end bench
/// can measure both sides with the same driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FanoutMode {
    /// Refcount-bump the block per peer (zero-copy).
    #[default]
    Shared,
    /// Deep-copy every transaction per peer (pre-sharing cost model).
    DeepClone,
}

/// A complete in-process Fabric network for one channel.
pub struct FabricNetwork {
    channel: ChannelId,
    orgs: Vec<OrgId>,
    peers: BTreeMap<String, Peer>,
    clients: BTreeMap<String, Client>,
    orderer: OrderingService,
    gossip: GossipHub,
    events: Vec<(TxId, fabric_types::ChaincodeEvent)>,
    /// Chaincodes deployed uniformly (replayed onto late-joining peers).
    deployed: Vec<(ChaincodeDefinition, ChaincodeHandle)>,
    /// Private data of disseminated transactions, as held persistently by
    /// member peers; the source of truth Fabric's reconciliation protocol
    /// queries when a peer joins late or lost data. Packages are shared
    /// with the gossip layer — one allocation per dissemination.
    pvt_archive: HashMap<TxId, Arc<PvtDataPackage>>,
    /// Streaming alert engine driven one evaluation tick per network tick.
    monitor: Option<Monitor>,
    /// Block fan-out strategy; see [`FanoutMode`].
    fanout: FanoutMode,
    /// Peer names in map order, cached so per-block delivery does not
    /// re-collect them; rebuilt when the peer set changes.
    cached_peer_names: Vec<String>,
    /// Gossip IDs in the same order, cached for the same reason.
    cached_gossip_ids: Vec<PeerId>,
}

impl std::fmt::Debug for FabricNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabricNetwork")
            .field("channel", &self.channel)
            .field("orgs", &self.orgs)
            .field("peers", &self.peer_names())
            .field("deployed_chaincodes", &self.deployed.len())
            .finish_non_exhaustive()
    }
}

impl FabricNetwork {
    pub(crate) fn from_parts(
        channel: ChannelId,
        orgs: Vec<OrgId>,
        peers: BTreeMap<String, Peer>,
        clients: BTreeMap<String, Client>,
        orderer: OrderingService,
        gossip: GossipHub,
    ) -> Self {
        let mut net = FabricNetwork {
            channel,
            orgs,
            peers,
            clients,
            orderer,
            gossip,
            events: Vec::new(),
            deployed: Vec::new(),
            pvt_archive: HashMap::new(),
            monitor: None,
            fanout: FanoutMode::default(),
            cached_peer_names: Vec::new(),
            cached_gossip_ids: Vec::new(),
        };
        net.refresh_peer_caches();
        net
    }

    /// Rebuilds the cached peer-name/gossip-id lists. Must be called after
    /// any change to the peer set.
    fn refresh_peer_caches(&mut self) {
        self.cached_peer_names = self.peers.keys().cloned().collect();
        self.cached_gossip_ids = self.peers.values().map(|p| p.gossip_id().clone()).collect();
    }

    /// Selects the block fan-out strategy (default: [`FanoutMode::Shared`]).
    pub fn set_fanout_mode(&mut self, mode: FanoutMode) {
        self.fanout = mode;
    }

    /// The current block fan-out strategy.
    pub fn fanout_mode(&self) -> FanoutMode {
        self.fanout
    }

    pub(crate) fn attach_monitor(&mut self, monitor: Monitor) {
        self.monitor = Some(monitor);
    }

    /// The streaming monitor attached via `NetworkBuilder::with_monitor`,
    /// if any.
    pub fn monitor(&self) -> Option<&Monitor> {
        self.monitor.as_ref()
    }

    /// The channel name.
    pub fn channel(&self) -> &ChannelId {
        &self.channel
    }

    /// Participating organizations.
    pub fn orgs(&self) -> &[OrgId] {
        &self.orgs
    }

    /// The chaincode definitions deployed on this channel, in deployment
    /// order — the artifacts configuration auditors (e.g. `fabric-lint`)
    /// inspect together with [`orgs`](Self::orgs).
    pub fn deployed_definitions(&self) -> Vec<&ChaincodeDefinition> {
        self.deployed.iter().map(|(d, _)| d).collect()
    }

    /// Peer names in deterministic order.
    pub fn peer_names(&self) -> Vec<String> {
        self.peers.keys().cloned().collect()
    }

    /// Client names in deterministic order.
    pub fn client_names(&self) -> Vec<String> {
        self.clients.keys().cloned().collect()
    }

    /// Read access to a peer.
    ///
    /// # Panics
    ///
    /// Panics when the peer does not exist (use in tests/experiments).
    pub fn peer(&self, name: &str) -> &Peer {
        &self.peers[name]
    }

    /// Mutable access to a peer (e.g. to flip defenses or install a
    /// malicious chaincode variant).
    pub fn peer_mut(&mut self, name: &str) -> &mut Peer {
        self.peers.get_mut(name).expect("unknown peer")
    }

    /// Mutable access to a client.
    pub fn client_mut(&mut self, name: &str) -> &mut Client {
        self.clients.get_mut(name).expect("unknown client")
    }

    /// Enables/disables the staged parallel validation pipeline on every
    /// peer (results are identical either way; this is a throughput knob).
    pub fn set_parallel_validation(&mut self, enabled: bool) {
        for peer in self.peers.values_mut() {
            peer.set_parallel_validation(enabled);
        }
    }

    /// The gossip hub (fault injection in tests).
    pub fn gossip_mut(&mut self) -> &mut GossipHub {
        &mut self.gossip
    }

    /// The shared telemetry pipeline attached via
    /// `NetworkBuilder::with_telemetry`, if any.
    pub fn telemetry(&self) -> Option<&fabric_telemetry::Telemetry> {
        self.orderer
            .telemetry()
            .or_else(|| self.peers.values().find_map(|p| p.telemetry()))
    }

    /// Crashes one Raft orderer node (fault injection). The ordering
    /// service keeps working while a quorum survives.
    pub fn crash_orderer(&mut self, node: u64) {
        self.orderer.crash_orderer(node);
    }

    /// Ticks the ordering service until its Raft cluster has a leader
    /// again (e.g. after crashes). Returns whether one was found.
    pub fn wait_for_orderer(&mut self, max_ticks: usize) -> bool {
        self.orderer.run_until_ready(max_ticks)
    }

    /// Service discovery: computes a minimal set of peer names whose
    /// endorsements satisfy the chaincode-level endorsement policy of
    /// `chaincode`, given the peers currently on the channel. Returns
    /// `None` when the policy is unsatisfiable (or the chaincode unknown).
    pub fn discover_endorsers(&self, chaincode: &str) -> Option<Vec<String>> {
        let cc = ChaincodeId::new(chaincode);
        let any_peer = self.peers.values().next()?;
        let definition = &any_peer.chaincode(&cc)?.definition;
        let policy = fabric_policy::Policy::parse(&definition.endorsement_policy).ok()?;
        let identities: Vec<fabric_types::Identity> =
            self.peers.values().map(|p| p.identity().clone()).collect();
        let org_policies = any_peer.channel_policies().org_policies();
        let plan = fabric_policy::minimal_endorsement_set_for(&policy, org_policies, &identities)?;
        let names = plan
            .iter()
            .filter_map(|id| {
                self.peers
                    .iter()
                    .find(|(_, p)| p.identity().public_key == id.public_key)
                    .map(|(name, _)| name.clone())
            })
            .collect();
        Some(names)
    }

    /// Installs a chaincode definition with the same implementation on
    /// every peer (the honest deployment).
    pub fn deploy_chaincode(&mut self, definition: ChaincodeDefinition, handle: ChaincodeHandle) {
        for peer in self.peers.values_mut() {
            peer.install_chaincode(definition.clone(), handle.clone());
        }
        self.deployed.push((definition, handle));
    }

    /// Installs a per-peer implementation (Fabric's customizable-chaincode
    /// feature: orgs may extend the logic, and malicious orgs abuse this).
    pub fn install_custom_chaincode(
        &mut self,
        peer: &str,
        definition: ChaincodeDefinition,
        handle: ChaincodeHandle,
    ) {
        self.peer_mut(peer).install_chaincode(definition, handle);
    }

    /// Endorses a proposal at the named peer, disseminating any private
    /// data to collection member peers (Fig. 2, steps 7–9).
    ///
    /// # Errors
    ///
    /// [`NetworkError::Endorse`] when the peer refuses,
    /// [`NetworkError::DisseminationFailed`] when `RequiredPeerCount` could
    /// not be met.
    pub fn endorse(
        &mut self,
        peer_name: &str,
        proposal: &Proposal,
    ) -> Result<ProposalResponse, NetworkError> {
        let peer = self
            .peers
            .get(peer_name)
            .ok_or_else(|| NetworkError::UnknownPeer(peer_name.to_string()))?;
        let (response, pvt) = peer
            .endorse(proposal)
            .map_err(|error| NetworkError::Endorse {
                peer: peer_name.to_string(),
                error,
            })?;
        if let Some(pkg) = pvt {
            self.disseminate(peer_name, proposal, pkg)?;
        }
        Ok(response)
    }

    fn disseminate(
        &mut self,
        endorser: &str,
        proposal: &Proposal,
        pkg: PvtDataPackage,
    ) -> Result<(), NetworkError> {
        let endorser_id = PeerId::new(endorser);
        // One shared allocation serves the endorser's transient store, the
        // durable archive, and every push recipient below.
        let pkg = Arc::new(pkg);
        self.gossip.store_local(&endorser_id, Arc::clone(&pkg));
        // Member peers persist private data beyond the transient window;
        // the archive models that durable store for late reconciliation.
        self.pvt_archive.insert(pkg.tx_id.clone(), Arc::clone(&pkg));
        // Push to every peer whose org is a member of a touched collection.
        let definition = self
            .peers
            .get(endorser)
            .and_then(|p| p.chaincode(&proposal.chaincode))
            .map(|cc| cc.definition.clone());
        let Some(definition) = definition else {
            return Ok(());
        };
        for pvt in &pkg.collections {
            let members: Vec<PeerId> = self
                .peers
                .values()
                .filter(|p| {
                    p.gossip_id() != &endorser_id
                        && definition.org_is_member(p.org(), &pvt.collection)
                })
                .map(|p| p.gossip_id().clone())
                .collect();
            let delivered = self.gossip.push(&endorser_id, &members, Arc::clone(&pkg));
            if let Some(cfg) = definition.collection(&pvt.collection) {
                if (delivered as u32) < cfg.required_peer_count {
                    return Err(NetworkError::DisseminationFailed {
                        collection: pvt.collection.to_string(),
                        delivered,
                        required: cfg.required_peer_count,
                    });
                }
            }
        }
        Ok(())
    }

    /// Submits an assembled transaction for ordering.
    pub fn submit(&mut self, tx: Transaction) {
        self.orderer.submit(tx);
    }

    /// Advances the network `ticks` steps: the ordering service runs, and
    /// every cut block is delivered to and processed by every peer.
    pub fn advance(&mut self, ticks: usize) {
        for _ in 0..ticks {
            self.orderer.tick();
            let blocks = self.orderer.take_blocks();
            for block in blocks {
                self.deliver_block(block);
            }
            self.observe_monitor_tick();
        }
    }

    /// One monitor evaluation per network tick: drain the audit events
    /// this tick produced and score every node's health from the same
    /// state the tick left behind.
    fn observe_monitor_tick(&self) {
        // `observe_tick` takes `&self`, so no per-tick clone of the monitor
        // handle is needed — everything below is an immutable borrow.
        let Some(monitor) = self.monitor.as_ref() else {
            return;
        };
        let ordered_height = self.orderer.ordered_height();
        // The commit pipeline is shared across peers in-process, so the
        // stateful-stage p99 is a network-wide signal sampled once.
        let stage_p99 = monitor
            .telemetry()
            .metrics()
            .find_histogram("fabric_commit_stage_seconds", &[("stage", "stateful")])
            .and_then(|h| h.quantile(0.99));
        let mut samples: Vec<NodeSample> = self
            .peers
            .iter()
            .map(|(name, peer)| NodeSample {
                node: name.clone(),
                committed_height: peer.block_store().height(),
                ordered_height,
                backlog: 0,
                gossip_pending: self.gossip.transient_len(peer.gossip_id()) as u64,
                stage_p99_seconds: stage_p99,
            })
            .collect();
        samples.push(NodeSample {
            node: "orderer".to_string(),
            committed_height: ordered_height,
            ordered_height,
            backlog: self.orderer.pending_len() as u64,
            gossip_pending: 0,
            stage_p99_seconds: None,
        });
        monitor.observe_tick(&samples);
    }

    fn deliver_block(&mut self, block: Block) {
        let peer_ids = &self.cached_peer_names;
        let all_gossip_ids = &self.cached_gossip_ids;
        let fanout = self.fanout;
        for name in peer_ids {
            let gossip = &mut self.gossip;
            let peer = self.peers.get_mut(name).expect("iterating known names");
            let own_id = peer.gossip_id().clone();
            let mut provider = |tx_id: &TxId| -> Option<Arc<PvtDataPackage>> {
                gossip
                    .get_shared(&own_id, tx_id)
                    .or_else(|| gossip.pull(&own_id, tx_id, all_gossip_ids))
            };
            // All peers receive the same block; divergent outcomes would be
            // a consensus bug, surfaced by the integration tests.
            let delivered = match fanout {
                // One refcount bump: all peers validate the same storage.
                FanoutMode::Shared => block.clone(),
                // Owned copy per peer, including fresh (empty) encode memos
                // — the cost model of a fan-out without shared storage.
                FanoutMode::DeepClone => Block {
                    header: block.header.clone(),
                    transactions: block.transactions.to_vec().into(),
                    metadata: block.metadata.clone(),
                },
            };
            let outcome = peer.process_block(delivered, &mut provider);
            // Event listeners are fed once per block (from the first peer;
            // all honest peers deliver identical event streams).
            if let Ok(outcome) = outcome {
                if Some(name) == peer_ids.first() {
                    self.events.extend(outcome.events);
                }
            }
        }
        // Transient data for committed transactions is no longer needed;
        // one sweep over the registered stores purges the whole block.
        self.gossip
            .purge_committed(block.transactions.iter().map(|tx| &tx.tx_id));
    }

    /// The validation code of a committed transaction, read from the first
    /// peer's ledger (all honest peers agree).
    pub fn transaction_status(&self, tx_id: &TxId) -> Option<TxValidationCode> {
        let peer = self.peers.values().next()?;
        let (_, code) = peer.block_store().transaction(tx_id)?;
        code
    }

    /// Full three-phase submission: create proposal at `client`, endorse at
    /// `endorsing_peers`, assemble, order, and wait for commit.
    ///
    /// `args` are string arguments; `transient` carries private values.
    ///
    /// # Errors
    ///
    /// Any endorsement/assembly failure, or [`NetworkError::NotCommitted`]
    /// if the transaction does not commit within the tick budget.
    pub fn submit_transaction(
        &mut self,
        client: &str,
        chaincode: &str,
        function: &str,
        args: &[&str],
        transient: &[(&str, &[u8])],
        endorsing_peers: &[&str],
    ) -> Result<SubmitOutcome, NetworkError> {
        let channel = self.channel.clone();
        let client_ref = self
            .clients
            .get_mut(client)
            .ok_or_else(|| NetworkError::UnknownClient(client.to_string()))?;
        let proposal = client_ref.create_proposal(
            channel,
            ChaincodeId::new(chaincode),
            function,
            args.iter().map(|a| a.as_bytes().to_vec()).collect(),
            transient
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_vec()))
                .collect(),
        );
        // The root of the transaction's trace: the whole client-observed
        // submission, from proposal to commit confirmation.
        let _submit_span = self
            .telemetry()
            .filter(|t| t.tracing_enabled())
            .cloned()
            .map(|t| {
                let mut s = t.span("client.submit");
                s.trace(fabric_telemetry::TraceContext::for_tx(
                    proposal.tx_id.as_str(),
                ));
                s.node(client);
                s.field("chaincode", chaincode);
                s.field("function", function);
                s
            });

        let mut responses = Vec::new();
        for peer in endorsing_peers {
            responses.push(self.endorse(peer, &proposal)?);
        }
        let client_ref = self.clients.get(client).expect("checked above");
        let (tx, payload) = client_ref.assemble_transaction(&proposal, &responses)?;
        let tx_id = tx.tx_id.clone();
        self.submit(tx);

        for _ in 0..200 {
            self.advance(1);
            if let Some(code) = self.transaction_status(&tx_id) {
                return Ok(SubmitOutcome {
                    tx_id,
                    validation_code: code,
                    payload,
                });
            }
        }
        Err(NetworkError::NotCommitted)
    }

    /// Adds a new peer for an existing channel organization *after* the
    /// channel has been running: the peer is bootstrapped by replaying the
    /// full block history from an existing peer, reconciling private data
    /// (for collections its org is a member of) from the member archive.
    /// Returns the new peer's name (`peer<N>.<org>`).
    ///
    /// # Panics
    ///
    /// Panics when `org` is not part of the channel or no peer exists yet.
    pub fn add_peer(&mut self, org: &str) -> String {
        let org_id = OrgId::new(org);
        assert!(
            self.orgs.contains(&org_id),
            "{org} is not an organization of this channel"
        );
        let short = org.to_ascii_lowercase().trim_end_matches("msp").to_string();
        let index = self.peers.values().filter(|p| p.org() == &org_id).count();
        let name = format!("peer{index}.{short}");

        let template = self.peers.values().next().expect("channel has peers");
        let policies = template.channel_policies().clone();
        let defense = template.defense();
        let parallel_validation = template.parallel_validation();
        let telemetry = template.telemetry().cloned();
        let channel = self.channel.clone();
        let blocks: Vec<fabric_types::Block> = template.block_store().iter().cloned().collect();

        let mut peer = Peer::new(
            name.clone(),
            org_id,
            channel,
            policies,
            fabric_crypto::Keypair::generate_from_seed(
                0x9ee7 ^ (index as u64) << 32 ^ blocks.len() as u64,
            ),
            defense,
        );
        peer.set_parallel_validation(parallel_validation);
        if let Some(t) = telemetry {
            peer.set_telemetry(t);
        }
        for (definition, handle) in &self.deployed {
            peer.install_chaincode(definition.clone(), handle.clone());
        }
        // Replay the chain; the archive serves plaintext private data for
        // collections the new peer's org belongs to.
        let archive = &self.pvt_archive;
        let mut provider = |tx_id: &TxId| archive.get(tx_id).map(Arc::clone);
        for block in blocks {
            peer.process_block(block, &mut provider)
                .expect("replaying a valid chain succeeds");
        }
        self.gossip.register(peer.gossip_id().clone());
        self.peers.insert(name.clone(), peer);
        self.refresh_peer_caches();
        name
    }

    /// Drains chaincode events of validated transactions observed since
    /// the last call, in commit order (the block event service a client
    /// SDK would subscribe to).
    pub fn drain_events(&mut self) -> Vec<(TxId, fabric_types::ChaincodeEvent)> {
        std::mem::take(&mut self.events)
    }

    /// Query-only invocation ("evaluate"): endorse at one peer and return
    /// the payload without creating a transaction.
    ///
    /// # Errors
    ///
    /// Endorsement failures; see [`NetworkError`].
    pub fn evaluate_transaction(
        &mut self,
        client: &str,
        peer: &str,
        chaincode: &str,
        function: &str,
        args: &[&str],
    ) -> Result<Vec<u8>, NetworkError> {
        let channel = self.channel.clone();
        let client_ref = self
            .clients
            .get_mut(client)
            .ok_or_else(|| NetworkError::UnknownClient(client.to_string()))?;
        let proposal = client_ref.create_proposal(
            channel,
            ChaincodeId::new(chaincode),
            function,
            args.iter().map(|a| a.as_bytes().to_vec()).collect(),
            BTreeMap::new(),
        );
        let response = self.endorse(peer, &proposal)?;
        Ok(response.payload.response.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use fabric_chaincode::samples::{AssetTransfer, Guard, GuardedPdc};
    use fabric_types::{CollectionConfig, CollectionName, DefenseConfig};
    use std::sync::Arc;

    fn public_net() -> FabricNetwork {
        let mut net = NetworkBuilder::new("ch1")
            .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
            .seed(11)
            .build();
        net.deploy_chaincode(ChaincodeDefinition::new("assets"), Arc::new(AssetTransfer));
        net
    }

    use fabric_chaincode::ChaincodeDefinition;

    fn pdc_net(defense: DefenseConfig) -> FabricNetwork {
        let mut net = NetworkBuilder::new("ch1")
            .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
            .seed(12)
            .defense(defense)
            .build();
        let def =
            ChaincodeDefinition::new("guarded").with_collection(CollectionConfig::membership_of(
                "PDC1",
                &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")],
            ));
        // org1: value < 15; org2: value > 10; org3: unconstrained.
        net.install_custom_chaincode(
            "peer0.org1",
            def.clone(),
            Arc::new(GuardedPdc::new(
                "PDC1",
                Guard::LessThan(15),
                Guard::LessThan(15),
            )),
        );
        net.install_custom_chaincode(
            "peer0.org2",
            def.clone(),
            Arc::new(GuardedPdc::new(
                "PDC1",
                Guard::GreaterThan(10),
                Guard::GreaterThan(10),
            )),
        );
        net.install_custom_chaincode(
            "peer0.org3",
            def,
            Arc::new(GuardedPdc::unconstrained("PDC1")),
        );
        net
    }

    #[test]
    fn public_transaction_full_workflow() {
        let mut net = public_net();
        let outcome = net
            .submit_transaction(
                "client0.org1",
                "assets",
                "CreateAsset",
                &["a1", "red", "alice", "100"],
                &[],
                &["peer0.org1", "peer0.org2"],
            )
            .unwrap();
        assert!(outcome.validation_code.is_valid());
        // All peers hold the asset.
        for p in ["peer0.org1", "peer0.org2", "peer0.org3"] {
            assert!(net
                .peer(p)
                .world_state()
                .get_public(&"assets".into(), "a1")
                .is_some());
        }
        // Query sees it.
        let payload = net
            .evaluate_transaction("client0.org1", "peer0.org3", "assets", "ReadAsset", &["a1"])
            .unwrap();
        assert!(!payload.is_empty());
    }

    #[test]
    fn pdc_write_commits_plaintext_only_at_members() {
        let mut net = pdc_net(DefenseConfig::original());
        // Honest flow: endorse at both PDC members (12 satisfies both
        // org1's <15 and org2's >10).
        let outcome = net
            .submit_transaction(
                "client0.org1",
                "guarded",
                "write",
                &["k1", "12"],
                &[],
                &["peer0.org1", "peer0.org2"],
            )
            .unwrap();
        assert!(outcome.validation_code.is_valid());
        let ns = ChaincodeId::new("guarded");
        let col = CollectionName::new("PDC1");
        assert_eq!(
            net.peer("peer0.org1")
                .world_state()
                .get_private(&ns, &col, "k1")
                .unwrap()
                .value,
            b"12"
        );
        assert_eq!(
            net.peer("peer0.org2")
                .world_state()
                .get_private(&ns, &col, "k1")
                .unwrap()
                .value,
            b"12"
        );
        // Non-member org3: hashes only.
        assert!(net
            .peer("peer0.org3")
            .world_state()
            .get_private(&ns, &col, "k1")
            .is_none());
        assert!(net
            .peer("peer0.org3")
            .world_state()
            .get_private_hash(&ns, &col, "k1")
            .is_some());
    }

    #[test]
    fn pdc_read_roundtrip_via_member() {
        let mut net = pdc_net(DefenseConfig::original());
        net.submit_transaction(
            "client0.org1",
            "guarded",
            "write",
            &["k1", "12"],
            &[],
            &["peer0.org1", "peer0.org2"],
        )
        .unwrap();
        let payload = net
            .evaluate_transaction("client0.org1", "peer0.org1", "guarded", "read", &["k1"])
            .unwrap();
        assert_eq!(payload, b"12");
        // Non-member endorser refuses the read (Use Case 1).
        let err = net
            .evaluate_transaction("client0.org1", "peer0.org3", "guarded", "read", &["k1"])
            .unwrap_err();
        assert!(matches!(err, NetworkError::Endorse { .. }));
    }

    #[test]
    fn gossip_loss_recovered_by_pull() {
        let mut net = pdc_net(DefenseConfig::original());
        // Lose every gossip push; the commit-time pull reconciles from the
        // endorser's transient store.
        net.gossip_mut().set_drop_rate(1.0);
        let outcome = net
            .submit_transaction(
                "client0.org1",
                "guarded",
                "write",
                &["k1", "12"],
                &[],
                &["peer0.org1", "peer0.org2"],
            )
            .unwrap();
        assert!(outcome.validation_code.is_valid());
        let ns = ChaincodeId::new("guarded");
        let col = CollectionName::new("PDC1");
        for p in ["peer0.org1", "peer0.org2"] {
            assert_eq!(
                net.peer(p)
                    .world_state()
                    .get_private(&ns, &col, "k1")
                    .unwrap()
                    .value,
                b"12",
                "{p} should have reconciled plaintext"
            );
        }
    }

    #[test]
    fn required_peer_count_enforced() {
        let mut net = NetworkBuilder::new("ch1")
            .orgs(&["Org1MSP", "Org2MSP", "Org3MSP"])
            .seed(13)
            .build();
        let mut cfg = CollectionConfig::membership_of(
            "PDC1",
            &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")],
        );
        cfg.required_peer_count = 1;
        let def = ChaincodeDefinition::new("guarded").with_collection(cfg);
        net.deploy_chaincode(def, Arc::new(GuardedPdc::unconstrained("PDC1")));
        net.gossip_mut().set_drop_rate(1.0);
        let err = net
            .submit_transaction(
                "client0.org1",
                "guarded",
                "write",
                &["k1", "1"],
                &[],
                &["peer0.org1", "peer0.org2"],
            )
            .unwrap_err();
        assert!(matches!(err, NetworkError::DisseminationFailed { .. }));
    }

    #[test]
    fn unknown_names_error() {
        let mut net = public_net();
        assert!(matches!(
            net.submit_transaction("ghost", "assets", "f", &[], &[], &["peer0.org1"]),
            Err(NetworkError::UnknownClient(_))
        ));
        assert!(matches!(
            net.submit_transaction("client0.org1", "assets", "f", &[], &[], &["ghost"]),
            Err(NetworkError::UnknownPeer(_))
        ));
    }

    #[test]
    fn business_rule_blocks_endorsement_at_honest_victim() {
        let mut net = pdc_net(DefenseConfig::original());
        // Writing 5 violates org2's >10 rule: org2 refuses to endorse.
        let err = net
            .submit_transaction(
                "client0.org1",
                "guarded",
                "write",
                &["k1", "5"],
                &[],
                &["peer0.org1", "peer0.org2"],
            )
            .unwrap_err();
        assert!(matches!(err, NetworkError::Endorse { .. }));
    }
}
