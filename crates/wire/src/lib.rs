//! Canonical, deterministic binary encoding for Fabric protocol messages.
//!
//! Hyperledger Fabric hashes and signs protobuf-encoded messages. This crate
//! provides the equivalent substrate for the simulator: a small, canonical
//! wire format with a single valid encoding per value, so block hash chains,
//! endorsement signatures and private-data hashes are stable across runs and
//! platforms.
//!
//! The format is length-prefixed and self-delimiting:
//! * unsigned integers: LEB128 varint
//! * signed integers: zigzag + varint
//! * `bool`: one byte, `0` or `1` (any other value is a decode error)
//! * byte strings / UTF-8 strings: varint length + raw bytes
//! * `Vec<T>`: varint length + elements
//! * `Option<T>`: tag byte (`0`/`1`) + payload
//! * maps: varint length + sorted key/value pairs (sorted by key encoding —
//!   enforced on decode, making the encoding canonical)
//!
//! # Examples
//!
//! ```
//! use fabric_wire::{Encode, Decode};
//!
//! # fn main() -> Result<(), fabric_wire::WireError> {
//! let v: Vec<String> = vec!["endorse".into(), "commit".into()];
//! let bytes = v.to_wire();
//! let back = Vec::<String>::from_wire(&bytes)?;
//! assert_eq!(v, back);
//! # Ok(())
//! # }
//! ```

mod error;
mod primitives;
mod reader;

pub use error::WireError;
pub use primitives::{read_varint, write_varint};
pub use reader::Reader;

/// Types that can be encoded into the canonical wire format.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Returns the canonical encoding of `self` as a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Types that can be decoded from the canonical wire format.
pub trait Decode: Sized {
    /// Reads one value from the reader, advancing its position.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the input is truncated, malformed, or not in
    /// canonical form.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Decodes a value that must occupy the entire input.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] if input remains after the value,
    /// in addition to the errors of [`Decode::decode`].
    fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                remaining: r.remaining(),
            });
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        let back = T::from_wire(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn roundtrip_unsigned_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            roundtrip(v);
        }
    }

    #[test]
    fn roundtrip_signed_edges() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            roundtrip(v);
        }
    }

    #[test]
    fn slice_encodes_identically_to_vec() {
        // Hot paths encode borrowed slices to avoid cloning into a `Vec`;
        // the bytes must be indistinguishable from the owned encoding.
        let v = vec![String::from("a"), String::from(""), String::from("bc")];
        assert_eq!(v.to_wire(), v.as_slice().to_wire());
        assert_eq!(v.to_wire(), v[..].to_wire());
        let empty: Vec<u64> = Vec::new();
        assert_eq!(empty.to_wire(), empty.as_slice().to_wire());
    }

    #[test]
    fn roundtrip_compound() {
        roundtrip(Some(vec![String::from("a"), String::from("")]));
        roundtrip(Option::<u64>::None);
        roundtrip((1u64, String::from("x"), true));
        let mut m = BTreeMap::new();
        m.insert("k1".to_string(), 7u64);
        m.insert("k2".to_string(), 9u64);
        roundtrip(m);
    }

    #[test]
    fn varint_is_minimal() {
        // 0x80 0x00 is a non-canonical encoding of 0.
        assert!(matches!(
            u64::from_wire(&[0x80, 0x00]),
            Err(WireError::NonCanonical(_))
        ));
    }

    #[test]
    fn bool_rejects_other_bytes() {
        assert!(matches!(
            bool::from_wire(&[2]),
            Err(WireError::InvalidBool(2))
        ));
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = String::from("hello").to_wire();
        assert!(matches!(
            String::from_wire(&bytes[..3]),
            Err(WireError::LengthOverflow { .. } | WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = 5u64.to_wire();
        bytes.push(0);
        assert!(matches!(
            u64::from_wire(&bytes),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn map_key_order_enforced() {
        // Hand-craft a map with keys out of order: {b:1, a:2}
        let mut buf = Vec::new();
        2u64.encode(&mut buf);
        String::from("b").encode(&mut buf);
        1u64.encode(&mut buf);
        String::from("a").encode(&mut buf);
        2u64.encode(&mut buf);
        assert!(matches!(
            BTreeMap::<String, u64>::from_wire(&buf),
            Err(WireError::NonCanonical(_))
        ));
    }
}
