//! `Encode`/`Decode` implementations for primitives and std containers.

use crate::{Decode, Encode, Reader, WireError};
use std::collections::BTreeMap;

/// Appends the LEB128 varint encoding of `v` to `buf`.
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a canonical LEB128 varint.
///
/// # Errors
///
/// Fails on truncation, on varints longer than 10 bytes, and on
/// non-minimal encodings (a trailing `0x00` continuation byte).
pub fn read_varint(r: &mut Reader<'_>) -> Result<u64, WireError> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = r.read_byte()?;
        if shift == 63 && byte > 1 {
            return Err(WireError::VarintTooLong);
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            if byte == 0 && shift != 0 {
                return Err(WireError::NonCanonical("varint has redundant zero byte"));
            }
            return Ok(result);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError::VarintTooLong);
        }
    }
}

/// Zigzag-encodes a signed integer for varint transport.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                write_varint(buf, u64::from(*self));
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let v = read_varint(r)?;
                <$t>::try_from(v).map_err(|_| WireError::NonCanonical("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u16, u32);

impl Encode for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.read_byte()
    }
}

impl Encode for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, *self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        read_varint(r)
    }
}

impl Encode for i64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, zigzag(*self));
    }
}

impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(unzigzag(read_varint(r)?))
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_byte()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::InvalidBool(b)),
        }
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
}

impl Encode for str {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_bytes().encode(buf);
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_bytes().encode(buf);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = Vec::<u8>::decode(r)?;
        String::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        // Fixed width: no length prefix needed.
        buf.extend_from_slice(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let s = r.read_exact(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_slice().encode(buf);
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = read_varint(r)?;
        let len = r.check_len(len, 1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(WireError::InvalidTag {
                ty: "Option",
                tag: u64::from(b),
            }),
        }
    }
}

impl<K: Encode + Ord, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
}

impl<K: Decode + Ord + Encode, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = read_varint(r)?;
        let len = r.check_len(len, 2)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            if let Some((last, _)) = out.last_key_value() {
                if *last >= k {
                    return Err(WireError::NonCanonical("map keys not strictly ascending"));
                }
            }
            out.insert(k, v);
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, buf: &mut Vec<u8>) {
                $( self.$idx.encode(buf); )+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(($( $name::decode(r)?, )+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
}

impl<T: Encode + ?Sized> Encode for std::sync::Arc<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
}

impl<T: Decode> Decode for std::sync::Arc<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(std::sync::Arc::new(T::decode(r)?))
    }
}

impl<T: Decode> Decode for std::sync::Arc<[T]> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Vec::<T>::decode(r)?.into())
    }
}

#[cfg(test)]
mod proptests {
    use crate::{Decode, Encode};
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn rt<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_wire();
        let back = T::from_wire(&bytes).expect("roundtrip decode");
        assert_eq!(*v, back);
    }

    proptest! {
        #[test]
        fn prop_u64_roundtrip(v: u64) { rt(&v); }

        #[test]
        fn prop_i64_roundtrip(v: i64) { rt(&v); }

        #[test]
        fn prop_bytes_roundtrip(v: Vec<u8>) { rt(&v); }

        #[test]
        fn prop_string_roundtrip(v: String) { rt(&v); }

        #[test]
        fn prop_vec_string_roundtrip(v: Vec<String>) { rt(&v); }

        #[test]
        fn prop_map_roundtrip(v: BTreeMap<String, Vec<u8>>) { rt(&v); }

        #[test]
        fn prop_option_tuple_roundtrip(v: Option<(u64, String, bool)>) { rt(&v); }

        #[test]
        fn prop_arc_slice_encodes_identically_to_vec(v: Vec<String>) {
            // Arc-shared storage is a representation choice, not a wire
            // one: the bytes must match the owned encoding exactly.
            let arc: std::sync::Arc<[String]> = v.clone().into();
            prop_assert_eq!(arc.to_wire(), v.to_wire());
            let back = std::sync::Arc::<[String]>::from_wire(&arc.to_wire()).expect("roundtrip");
            prop_assert_eq!(&*back, v.as_slice());
        }

        #[test]
        fn prop_arc_scalar_roundtrip(v: u64) {
            rt(&std::sync::Arc::new(v));
        }

        #[test]
        fn prop_encoding_is_injective(a: Vec<String>, b: Vec<String>) {
            // Canonical encodings must be equal iff values are equal.
            prop_assert_eq!(a == b, a.to_wire() == b.to_wire());
        }

        #[test]
        fn prop_decode_never_panics(bytes: Vec<u8>) {
            // Hostile input must produce errors, never panics.
            let _ = Vec::<String>::from_wire(&bytes);
            let _ = BTreeMap::<String, u64>::from_wire(&bytes);
            let _ = Option::<Vec<u8>>::from_wire(&bytes);
        }
    }
}
