use crate::WireError;

/// A cursor over an input buffer being decoded.
///
/// Tracks position and exposes bounded reads; all higher-level decoding is
/// built on [`Reader::read_byte`] and [`Reader::read_exact`].
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if the input is exhausted.
    pub fn read_byte(&mut self) -> Result<u8, WireError> {
        if self.pos >= self.buf.len() {
            return Err(WireError::UnexpectedEof { needed: 1 });
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Reads exactly `n` bytes, returning a slice borrowed from the input.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn read_exact(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n - self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Checks that a declared count of items, each at least `min_item_size`
    /// bytes, can possibly fit in the remaining input.
    ///
    /// # Errors
    ///
    /// [`WireError::LengthOverflow`] when the declared length is impossible,
    /// which guards decoders against allocation bombs.
    pub fn check_len(&self, declared: u64, min_item_size: usize) -> Result<usize, WireError> {
        let declared_usize = usize::try_from(declared).map_err(|_| WireError::LengthOverflow {
            declared,
            remaining: self.remaining(),
        })?;
        let need = declared_usize.checked_mul(min_item_size.max(1));
        match need {
            Some(n) if n <= self.remaining() => Ok(declared_usize),
            _ => Err(WireError::LengthOverflow {
                declared,
                remaining: self.remaining(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_tracks_position() {
        let data = [1u8, 2, 3];
        let mut r = Reader::new(&data);
        assert_eq!(r.read_byte().unwrap(), 1);
        assert_eq!(r.position(), 1);
        assert_eq!(r.read_exact(2).unwrap(), &[2, 3]);
        assert_eq!(r.remaining(), 0);
        assert!(r.read_byte().is_err());
    }

    #[test]
    fn check_len_rejects_bombs() {
        let data = [0u8; 4];
        let r = Reader::new(&data);
        assert!(r.check_len(u64::MAX, 1).is_err());
        assert!(r.check_len(5, 1).is_err());
        assert_eq!(r.check_len(4, 1).unwrap(), 4);
    }
}
