use std::fmt;

/// Errors produced while decoding the canonical wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was fully decoded.
    UnexpectedEof {
        /// Bytes still needed to make progress.
        needed: usize,
    },
    /// A varint ran past its maximum width (10 bytes for 64-bit values).
    VarintTooLong,
    /// The encoding was valid but not the unique canonical form.
    NonCanonical(&'static str),
    /// A boolean byte was neither `0` nor `1`.
    InvalidBool(u8),
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// A declared length exceeds the remaining input (guards against
    /// allocation bombs from hostile input).
    LengthOverflow {
        /// Declared element/byte count.
        declared: u64,
        /// Remaining bytes in the input.
        remaining: usize,
    },
    /// Input remained after decoding a complete value with
    /// [`Decode::from_wire`](crate::Decode::from_wire).
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
    /// An enum tag byte did not match any known variant.
    InvalidTag {
        /// The type being decoded.
        ty: &'static str,
        /// The offending tag.
        tag: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed } => {
                write!(f, "unexpected end of input, {needed} more byte(s) needed")
            }
            WireError::VarintTooLong => write!(f, "varint exceeds 10 bytes"),
            WireError::NonCanonical(what) => write!(f, "non-canonical encoding: {what}"),
            WireError::InvalidBool(b) => write!(f, "invalid boolean byte {b:#x}"),
            WireError::InvalidUtf8 => write!(f, "string field is not valid utf-8"),
            WireError::LengthOverflow {
                declared,
                remaining,
            } => write!(
                f,
                "declared length {declared} exceeds remaining input {remaining}"
            ),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after value")
            }
            WireError::InvalidTag { ty, tag } => {
                write!(f, "invalid tag {tag} while decoding {ty}")
            }
        }
    }
}

impl std::error::Error for WireError {}
