//! Read/write sets, in plaintext and hashed (private data) form.
//!
//! The semantics follow Section III-B1 and Table I of the paper:
//!
//! | transaction kind | read set            | write set                     |
//! |------------------|---------------------|-------------------------------|
//! | read-only        | `(key, version)`    | empty                         |
//! | write-only       | empty               | `(key, value, is_delete=false)` |
//! | read-write       | `(key, version)`    | `(key, value, is_delete=false)` |
//! | delete-only      | empty               | `(key, null, is_delete=true)` |
//!
//! For private data collections, only the **hashed** rwset
//! (`hash(key), hash(value), version`) enters the transaction; the plaintext
//! [`CollectionPvtRwSet`] travels to collection members over gossip.

use crate::ids::{ChaincodeId, CollectionName, TxId};
use fabric_crypto::{sha256, Hash256};
use std::fmt;

/// The `(block, tx)` height that versions every committed key, exactly as in
/// Fabric's world state. Versions increase monotonically with commits and
/// drive the MVCC version-conflict check in the validation phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version {
    /// Block number that last wrote the key.
    pub block_num: u64,
    /// Transaction offset within that block.
    pub tx_num: u64,
}

impl Version {
    /// Creates a version at `(block_num, tx_num)`.
    pub fn new(block_num: u64, tx_num: u64) -> Self {
        Version { block_num, tx_num }
    }
}

impl_wire_struct!(Version { block_num, tx_num });

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block_num, self.tx_num)
    }
}

/// One entry of a read set: the key and the version observed at simulation
/// time (`None` when the key did not exist).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KvRead {
    /// The key read.
    pub key: String,
    /// Observed version; `None` means the key was absent.
    pub version: Option<Version>,
}

impl_wire_struct!(KvRead { key, version });

/// One entry of a write set: key, value, and the delete flag.
///
/// Per the paper's Table I, a delete is a write with `is_delete = true` and
/// a `None` ("null") value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KvWrite {
    /// The key written or deleted.
    pub key: String,
    /// New value; `None` for deletes.
    pub value: Option<Vec<u8>>,
    /// Whether this write removes the key from the world state.
    pub is_delete: bool,
}

impl_wire_struct!(KvWrite {
    key,
    value,
    is_delete
});

/// A plaintext read/write set over one namespace or collection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KvRwSet {
    /// Read entries in chaincode execution order.
    pub reads: Vec<KvRead>,
    /// Write entries in chaincode execution order (later writes to the same
    /// key supersede earlier ones at commit time).
    pub writes: Vec<KvWrite>,
}

impl_wire_struct!(KvRwSet { reads, writes });

impl KvRwSet {
    /// An empty rwset.
    pub fn new() -> Self {
        KvRwSet::default()
    }

    /// True when both read and write sets are empty.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// Classifies the rwset per the paper's Table I.
    pub fn kind(&self) -> TxKind {
        let has_reads = !self.reads.is_empty();
        let has_writes = self.writes.iter().any(|w| !w.is_delete);
        let has_deletes = self.writes.iter().any(|w| w.is_delete);
        match (has_reads, has_writes, has_deletes) {
            (false, false, false) => TxKind::Empty,
            (true, false, false) => TxKind::ReadOnly,
            (false, true, false) => TxKind::WriteOnly,
            (true, true, false) => TxKind::ReadWrite,
            (false, false, true) => TxKind::DeleteOnly,
            _ => TxKind::Mixed,
        }
    }

    /// Converts to the hashed form stored in PDC transactions:
    /// `(hash(key), hash(value), version)`.
    pub fn to_hashed(&self) -> (Vec<HashedRead>, Vec<HashedWrite>) {
        let reads = self
            .reads
            .iter()
            .map(|r| HashedRead {
                key_hash: sha256(r.key.as_bytes()),
                version: r.version,
            })
            .collect();
        let writes = self
            .writes
            .iter()
            .map(|w| HashedWrite {
                key_hash: sha256(w.key.as_bytes()),
                value_hash: w.value.as_deref().map(sha256),
                is_delete: w.is_delete,
            })
            .collect();
        (reads, writes)
    }
}

/// Transaction classification derived from rwset contents (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxKind {
    /// No reads or writes (e.g. a failed simulation).
    Empty,
    /// Reads only; the read set carries `(key, version)`.
    ReadOnly,
    /// Writes only; the read set is null, so any peer — including PDC
    /// non-members — can endorse it (the paper's Use Case 1).
    WriteOnly,
    /// Reads and writes.
    ReadWrite,
    /// Deletes only (a delete is a write with `is_delete = true`).
    DeleteOnly,
    /// A combination involving deletes plus reads/writes.
    Mixed,
}

impl fmt::Display for TxKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxKind::Empty => "empty",
            TxKind::ReadOnly => "read-only",
            TxKind::WriteOnly => "write-only",
            TxKind::ReadWrite => "read-write",
            TxKind::DeleteOnly => "delete-only",
            TxKind::Mixed => "mixed",
        };
        f.write_str(s)
    }
}

/// A hashed read entry: `hash(key)` plus the observed version.
///
/// Crucially, the **version is in plaintext** — this is what lets a PDC
/// non-member obtain a correct version via `GetPrivateDataHash` and forge
/// read endorsements (the paper's Endorsement Forgery, §IV-A1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HashedRead {
    /// SHA-256 of the key.
    pub key_hash: Hash256,
    /// Observed version; `None` when absent.
    pub version: Option<Version>,
}

impl_wire_struct!(HashedRead { key_hash, version });

/// A hashed write entry: `hash(key)`, `hash(value)`, delete flag.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HashedWrite {
    /// SHA-256 of the key.
    pub key_hash: Hash256,
    /// SHA-256 of the value; `None` for deletes.
    pub value_hash: Option<Hash256>,
    /// Whether the key is being deleted.
    pub is_delete: bool,
}

impl_wire_struct!(HashedWrite {
    key_hash,
    value_hash,
    is_delete
});

/// The hashed rwset of one collection, as embedded in a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionHashedRwSet {
    /// Collection name (plaintext, as in Fabric).
    pub collection: CollectionName,
    /// Hashed reads.
    pub reads: Vec<HashedRead>,
    /// Hashed writes.
    pub writes: Vec<HashedWrite>,
}

impl_wire_struct!(CollectionHashedRwSet {
    collection,
    reads,
    writes
});

impl CollectionHashedRwSet {
    /// Classifies the hashed rwset per Table I.
    pub fn kind(&self) -> TxKind {
        let has_reads = !self.reads.is_empty();
        let has_writes = self.writes.iter().any(|w| !w.is_delete);
        let has_deletes = self.writes.iter().any(|w| w.is_delete);
        match (has_reads, has_writes, has_deletes) {
            (false, false, false) => TxKind::Empty,
            (true, false, false) => TxKind::ReadOnly,
            (false, true, false) => TxKind::WriteOnly,
            (true, true, false) => TxKind::ReadWrite,
            (false, false, true) => TxKind::DeleteOnly,
            _ => TxKind::Mixed,
        }
    }
}

/// The plaintext rwset of one collection; never embedded in a transaction.
/// Endorsers keep it and gossip it to collection members (Fig. 2, steps 7–9).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionPvtRwSet {
    /// Collection name.
    pub collection: CollectionName,
    /// Plaintext reads/writes.
    pub rwset: KvRwSet,
}

impl_wire_struct!(CollectionPvtRwSet { collection, rwset });

impl CollectionPvtRwSet {
    /// Hashes this plaintext collection rwset into the transaction form.
    pub fn to_hashed(&self) -> CollectionHashedRwSet {
        let (reads, writes) = self.rwset.to_hashed();
        CollectionHashedRwSet {
            collection: self.collection.clone(),
            reads,
            writes,
        }
    }
}

/// A key-metadata write: sets or clears a key's *validation parameter*
/// (the key-level endorsement policy of Fabric's state-based endorsement,
/// the `validator_keylevel.go` machinery the paper cites for Use Case 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MetadataWrite {
    /// The public key whose metadata is updated.
    pub key: String,
    /// The new key-level endorsement policy expression; `None` clears it,
    /// returning the key to chaincode/collection-level validation.
    pub validation_parameter: Option<String>,
}

impl_wire_struct!(MetadataWrite {
    key,
    validation_parameter
});

/// All rwsets of one chaincode namespace within a transaction: the public
/// part in plaintext plus one hashed rwset per touched collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsRwSet {
    /// Chaincode namespace.
    pub namespace: ChaincodeId,
    /// Public-data rwset (plaintext).
    pub public: KvRwSet,
    /// Key-metadata writes (state-based endorsement parameters) on public
    /// keys.
    pub metadata_writes: Vec<MetadataWrite>,
    /// Hashed rwsets of touched private data collections.
    pub collections: Vec<CollectionHashedRwSet>,
}

impl_wire_struct!(NsRwSet {
    namespace,
    public,
    metadata_writes,
    collections
});

/// The complete simulation result embedded in a transaction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxRwSet {
    /// Per-namespace rwsets.
    pub ns_rwsets: Vec<NsRwSet>,
}

impl_wire_struct!(TxRwSet { ns_rwsets });

impl TxRwSet {
    /// An empty tx rwset.
    pub fn new() -> Self {
        TxRwSet::default()
    }

    /// Returns the rwsets for `namespace` if present.
    pub fn namespace(&self, namespace: &ChaincodeId) -> Option<&NsRwSet> {
        self.ns_rwsets.iter().find(|ns| &ns.namespace == namespace)
    }

    /// True when any collection rwset is present (i.e. this is a PDC
    /// transaction).
    pub fn touches_private_data(&self) -> bool {
        self.ns_rwsets.iter().any(|ns| !ns.collections.is_empty())
    }

    /// Overall classification: combines public and hashed collection rwsets.
    pub fn kind(&self) -> TxKind {
        let mut combined = KvRwSet::new();
        for ns in &self.ns_rwsets {
            combined.reads.extend(ns.public.reads.iter().cloned());
            combined.writes.extend(ns.public.writes.iter().cloned());
            for col in &ns.collections {
                for r in &col.reads {
                    combined.reads.push(KvRead {
                        key: r.key_hash.to_hex(),
                        version: r.version,
                    });
                }
                for w in &col.writes {
                    combined.writes.push(KvWrite {
                        key: w.key_hash.to_hex(),
                        value: w.value_hash.map(|h| h.0.to_vec()),
                        is_delete: w.is_delete,
                    });
                }
            }
        }
        combined.kind()
    }
}

/// Plaintext private rwsets of one transaction, disseminated via gossip to
/// collection members and matched against the transaction's hashes before
/// commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvtDataPackage {
    /// The transaction these plaintext rwsets belong to.
    pub tx_id: TxId,
    /// Namespace each collection rwset belongs to, aligned with
    /// `collections`.
    pub namespaces: Vec<ChaincodeId>,
    /// Plaintext collection rwsets.
    pub collections: Vec<CollectionPvtRwSet>,
}

impl_wire_struct!(PvtDataPackage {
    tx_id,
    namespaces,
    collections
});

impl PvtDataPackage {
    /// Verifies that each plaintext collection rwset matches the hashed
    /// rwset committed in the transaction. Returns the first mismatching
    /// collection name on failure.
    pub fn matches_hashes(&self, tx_rwset: &TxRwSet) -> Result<(), CollectionName> {
        for (ns, pvt) in self.namespaces.iter().zip(&self.collections) {
            let hashed_in_tx = tx_rwset
                .ns_rwsets
                .iter()
                .find(|n| &n.namespace == ns)
                .and_then(|n| {
                    n.collections
                        .iter()
                        .find(|c| c.collection == pvt.collection)
                });
            match hashed_in_tx {
                Some(expected) if *expected == pvt.to_hashed() => {}
                _ => return Err(pvt.collection.clone()),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_wire::{Decode, Encode};

    fn write(key: &str, value: &[u8]) -> KvWrite {
        KvWrite {
            key: key.into(),
            value: Some(value.to_vec()),
            is_delete: false,
        }
    }

    fn delete(key: &str) -> KvWrite {
        KvWrite {
            key: key.into(),
            value: None,
            is_delete: true,
        }
    }

    fn read(key: &str, v: Option<Version>) -> KvRead {
        KvRead {
            key: key.into(),
            version: v,
        }
    }

    /// Table I: rwset shapes of the four transaction types.
    #[test]
    fn table1_classification() {
        let v1 = Some(Version::new(1, 0));

        let read_only = KvRwSet {
            reads: vec![read("k1", v1)],
            writes: vec![],
        };
        assert_eq!(read_only.kind(), TxKind::ReadOnly);

        let write_only = KvRwSet {
            reads: vec![],
            writes: vec![write("k1", b"val1")],
        };
        assert_eq!(write_only.kind(), TxKind::WriteOnly);

        let read_write = KvRwSet {
            reads: vec![read("k1", v1)],
            writes: vec![write("k1", b"val1")],
        };
        assert_eq!(read_write.kind(), TxKind::ReadWrite);

        let delete_only = KvRwSet {
            reads: vec![],
            writes: vec![delete("k1")],
        };
        assert_eq!(delete_only.kind(), TxKind::DeleteOnly);
        // Delete writes carry a null value, per Table I.
        assert_eq!(delete_only.writes[0].value, None);

        assert_eq!(KvRwSet::new().kind(), TxKind::Empty);

        let mixed = KvRwSet {
            reads: vec![],
            writes: vec![write("k1", b"v"), delete("k2")],
        };
        assert_eq!(mixed.kind(), TxKind::Mixed);
    }

    #[test]
    fn hashing_uses_sha256_of_key_and_value() {
        let rw = KvRwSet {
            reads: vec![read("k1", Some(Version::new(3, 1)))],
            writes: vec![write("k1", b"val1"), delete("k2")],
        };
        let (hr, hw) = rw.to_hashed();
        assert_eq!(hr[0].key_hash, sha256(b"k1"));
        assert_eq!(hr[0].version, Some(Version::new(3, 1)));
        assert_eq!(hw[0].key_hash, sha256(b"k1"));
        assert_eq!(hw[0].value_hash, Some(sha256(b"val1")));
        assert!(!hw[0].is_delete);
        assert_eq!(hw[1].value_hash, None);
        assert!(hw[1].is_delete);
    }

    #[test]
    fn hashed_version_stays_plaintext() {
        // The version leaks through GetPrivateDataHash — attack precondition.
        let rw = KvRwSet {
            reads: vec![read("secret-key", Some(Version::new(9, 2)))],
            writes: vec![],
        };
        let (hr, _) = rw.to_hashed();
        assert_eq!(hr[0].version, Some(Version::new(9, 2)));
    }

    #[test]
    fn pvt_package_hash_match() {
        let pvt = CollectionPvtRwSet {
            collection: CollectionName::new("PDC1"),
            rwset: KvRwSet {
                reads: vec![],
                writes: vec![write("k1", b"secret")],
            },
        };
        let ns = NsRwSet {
            namespace: ChaincodeId::new("cc"),
            public: KvRwSet::new(),
            metadata_writes: vec![],
            collections: vec![pvt.to_hashed()],
        };
        let tx_rwset = TxRwSet {
            ns_rwsets: vec![ns],
        };
        let pkg = PvtDataPackage {
            tx_id: TxId::new("tx1"),
            namespaces: vec![ChaincodeId::new("cc")],
            collections: vec![pvt.clone()],
        };
        assert!(pkg.matches_hashes(&tx_rwset).is_ok());

        // Tampered plaintext no longer matches the committed hash.
        let mut tampered = pkg;
        tampered.collections[0].rwset.writes[0].value = Some(b"forged".to_vec());
        assert_eq!(
            tampered.matches_hashes(&tx_rwset),
            Err(CollectionName::new("PDC1"))
        );
    }

    #[test]
    fn tx_rwset_kind_combines_collections() {
        let pvt = CollectionPvtRwSet {
            collection: CollectionName::new("PDC1"),
            rwset: KvRwSet {
                reads: vec![],
                writes: vec![write("k1", b"v")],
            },
        };
        let tx = TxRwSet {
            ns_rwsets: vec![NsRwSet {
                namespace: ChaincodeId::new("cc"),
                public: KvRwSet::new(),
                metadata_writes: vec![],
                collections: vec![pvt.to_hashed()],
            }],
        };
        assert_eq!(tx.kind(), TxKind::WriteOnly);
        assert!(tx.touches_private_data());
    }

    #[test]
    fn wire_roundtrips() {
        let rw = KvRwSet {
            reads: vec![read("a", None), read("b", Some(Version::new(1, 2)))],
            writes: vec![write("c", b"v"), delete("d")],
        };
        assert_eq!(KvRwSet::from_wire(&rw.to_wire()).unwrap(), rw);

        let tx = TxRwSet {
            ns_rwsets: vec![NsRwSet {
                namespace: ChaincodeId::new("cc"),
                public: rw,
                metadata_writes: vec![],
                collections: vec![CollectionHashedRwSet {
                    collection: CollectionName::new("PDC1"),
                    reads: vec![HashedRead {
                        key_hash: sha256(b"k"),
                        version: None,
                    }],
                    writes: vec![HashedWrite {
                        key_hash: sha256(b"k"),
                        value_hash: Some(sha256(b"v")),
                        is_delete: false,
                    }],
                }],
            }],
        };
        assert_eq!(TxRwSet::from_wire(&tx.to_wire()).unwrap(), tx);
    }
}
