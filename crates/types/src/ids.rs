//! Newtype identifiers used across the simulator.

use fabric_wire::{Decode, Encode, Reader, WireError};
use std::fmt;

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(String);

        impl $name {
            /// Creates an identifier from anything string-like.
            pub fn new(s: impl Into<String>) -> Self {
                $name(s.into())
            }

            /// The identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name(s.to_string())
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                $name(s)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl Encode for $name {
            fn encode(&self, buf: &mut Vec<u8>) {
                self.0.encode(buf);
            }
        }

        impl Decode for $name {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok($name(String::decode(r)?))
            }
        }
    };
}

string_id! {
    /// A channel name, e.g. `"mychannel"`. Each channel has its own ledger.
    ChannelId
}

string_id! {
    /// A chaincode (smart contract) name; also the rwset namespace.
    ChaincodeId
}

string_id! {
    /// An organization / MSP identifier, e.g. `"Org1MSP"`.
    OrgId
}

string_id! {
    /// A private data collection name, e.g. `"collectionPDC1"`.
    CollectionName
}

string_id! {
    /// A transaction identifier (hex digest of creator identity and nonce,
    /// as in Fabric).
    TxId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let c = ChannelId::new("mychannel");
        assert_eq!(c.to_string(), "mychannel");
        assert_eq!(c.as_str(), "mychannel");
        assert_eq!(ChannelId::from("mychannel"), c);
        assert_eq!(ChannelId::from(String::from("mychannel")), c);
    }

    #[test]
    fn wire_roundtrip() {
        let o = OrgId::new("Org1MSP");
        assert_eq!(OrgId::from_wire(&o.to_wire()).unwrap(), o);
    }

    #[test]
    fn ids_order_lexicographically() {
        assert!(OrgId::new("Org1MSP") < OrgId::new("Org2MSP"));
    }
}
