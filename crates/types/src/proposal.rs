//! Transaction proposals, proposal responses and endorsements.

use crate::identity::Identity;
use crate::ids::{ChaincodeId, ChannelId, TxId};
use crate::rwset::TxRwSet;
use fabric_crypto::{sha256, Hash256, Signature};
use fabric_wire::Encode;
use std::collections::BTreeMap;

/// Status code of a successful chaincode invocation.
pub const RESPONSE_OK: u32 = 200;
/// Status code of a failed chaincode invocation.
pub const RESPONSE_ERROR: u32 = 500;

/// A transaction proposal sent by a client to endorsing peers
/// (Fig. 2, step 1). Carries the client identity, target chaincode, function
/// and arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proposal {
    /// Transaction ID: `sha256(nonce || creator)`, as in Fabric.
    pub tx_id: TxId,
    /// Target channel.
    pub channel: ChannelId,
    /// Target chaincode.
    pub chaincode: ChaincodeId,
    /// Invoked function name.
    pub function: String,
    /// Function arguments.
    pub args: Vec<Vec<u8>>,
    /// Transient data: private values passed out-of-band so they never
    /// appear in the (public) proposal args.
    pub transient: BTreeMap<String, Vec<u8>>,
    /// The proposing client identity.
    pub creator: Identity,
    /// Anti-replay nonce chosen by the client.
    pub nonce: u64,
}

impl_wire_struct!(Proposal {
    tx_id,
    channel,
    chaincode,
    function,
    args,
    transient,
    creator,
    nonce
});

impl Proposal {
    /// Builds a proposal, deriving its transaction ID from the creator and
    /// nonce exactly as Fabric does.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        channel: impl Into<ChannelId>,
        chaincode: impl Into<ChaincodeId>,
        function: impl Into<String>,
        args: Vec<Vec<u8>>,
        transient: BTreeMap<String, Vec<u8>>,
        creator: Identity,
        nonce: u64,
    ) -> Self {
        let tx_id = Self::derive_tx_id(&creator, nonce);
        Proposal {
            tx_id,
            channel: channel.into(),
            chaincode: chaincode.into(),
            function: function.into(),
            args,
            transient,
            creator,
            nonce,
        }
    }

    /// Derives the transaction ID for a `(creator, nonce)` pair.
    pub fn derive_tx_id(creator: &Identity, nonce: u64) -> TxId {
        let digest = sha256(&(nonce, creator).to_wire());
        TxId::new(digest.to_hex())
    }

    /// The hash endorsers embed into their proposal response so the client
    /// can confirm responses refer to this exact proposal.
    pub fn hash(&self) -> Hash256 {
        sha256(&self.to_wire())
    }
}

/// The chaincode's reply to the client: `payload`, `status` and `message`
/// (Use Case 3). For PDC reads, `payload` carries the requested private
/// value **in plaintext** — the root cause of the paper's leakage attack.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Response {
    /// `200` on success, `500` on chaincode error.
    pub status: u32,
    /// Error description when `status != 200`.
    pub message: String,
    /// Data returned by the chaincode function.
    pub payload: Vec<u8>,
}

impl_wire_struct!(Response {
    status,
    message,
    payload
});

impl Response {
    /// A successful response carrying `payload`.
    pub fn ok(payload: Vec<u8>) -> Self {
        Response {
            status: RESPONSE_OK,
            message: String::new(),
            payload,
        }
    }

    /// A failed response with an error message.
    pub fn error(message: impl Into<String>) -> Self {
        Response {
            status: RESPONSE_ERROR,
            message: message.into(),
            payload: Vec::new(),
        }
    }

    /// True when the status is `200`.
    pub fn is_ok(&self) -> bool {
        self.status == RESPONSE_OK
    }
}

/// What form of the proposal-response payload an endorsement signature
/// covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadCommitment {
    /// The original Fabric behaviour: the signature covers the payload with
    /// the plaintext chaincode `Response.payload` inside.
    Plain,
    /// The paper's New Feature 2: the signature covers the payload with
    /// `Response.payload` replaced by its SHA-256, so the client can swap in
    /// the hashed form before assembling the transaction.
    HashedPayload,
}

impl_wire_enum!(PayloadCommitment {
    Plain = 0,
    HashedPayload = 1,
});

/// An event emitted by chaincode during simulation (`SetEvent`).
/// Committed with the transaction and delivered to listeners once the
/// transaction validates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaincodeEvent {
    /// Event name.
    pub name: String,
    /// Event payload (application-defined; for PDC applications this is
    /// another place plaintext can leak if written sloppily).
    pub payload: Vec<u8>,
}

impl_wire_struct!(ChaincodeEvent { name, payload });

/// The payload of a proposal response: proposal hash, chaincode response,
/// the simulated read/write sets (hashed for PDC namespaces), and the
/// optional chaincode event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProposalResponsePayload {
    /// Hash of the proposal this responds to.
    pub proposal_hash: Hash256,
    /// The chaincode response (`payload`/`status`/`message`).
    pub response: Response,
    /// Simulation results.
    pub results: TxRwSet,
    /// Event set by the chaincode, if any.
    pub event: Option<ChaincodeEvent>,
}

impl_wire_struct!(ProposalResponsePayload {
    proposal_hash,
    response,
    results,
    event
});

impl ProposalResponsePayload {
    /// Returns the New-Feature-2 form: `Response.payload` replaced by its
    /// SHA-256 digest. Idempotent only in the sense that hashing twice
    /// hashes the digest; callers must track which form they hold via
    /// [`PayloadCommitment`].
    pub fn to_hashed_payload_form(&self) -> ProposalResponsePayload {
        let mut hashed = self.clone();
        hashed.response.payload = sha256(&self.response.payload).0.to_vec();
        hashed
    }

    /// The bytes an endorser signs under the given commitment scheme.
    pub fn signed_bytes(&self, commitment: PayloadCommitment) -> Vec<u8> {
        match commitment {
            PayloadCommitment::Plain => self.to_wire(),
            PayloadCommitment::HashedPayload => self.to_hashed_payload_form().to_wire(),
        }
    }
}

/// An endorsement: the endorser identity plus its signature over the
/// proposal response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endorsement {
    /// The endorsing peer's identity.
    pub endorser: Identity,
    /// Signature over [`ProposalResponsePayload::signed_bytes`].
    pub signature: Signature,
}

impl_wire_struct!(Endorsement {
    endorser,
    signature
});

/// A proposal response returned from one endorser to the client
/// (Fig. 2, steps 5/10): the payload, the commitment scheme its signature
/// uses, and the endorsement itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProposalResponse {
    /// Payload with the plaintext chaincode response (the client always
    /// receives the plaintext; Feature 2 only changes what is *signed*).
    pub payload: ProposalResponsePayload,
    /// Which payload form `endorsement.signature` covers.
    pub commitment: PayloadCommitment,
    /// The endorser's signature block.
    pub endorsement: Endorsement,
}

impl_wire_struct!(ProposalResponse {
    payload,
    commitment,
    endorsement
});

impl ProposalResponse {
    /// Verifies the endorsement signature against the payload under the
    /// declared commitment scheme.
    pub fn verify(&self) -> bool {
        self.endorsement.signature.verify(
            &self.endorsement.endorser.public_key,
            &self.payload.signed_bytes(self.commitment),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Role;
    use fabric_crypto::Keypair;
    use fabric_wire::Decode;

    fn client_identity(seed: u64) -> (Keypair, Identity) {
        let kp = Keypair::generate_from_seed(seed);
        let id = Identity::new("Org1MSP", Role::Client, kp.public_key());
        (kp, id)
    }

    #[test]
    fn tx_id_depends_on_creator_and_nonce() {
        let (_, a) = client_identity(1);
        let (_, b) = client_identity(2);
        assert_eq!(Proposal::derive_tx_id(&a, 1), Proposal::derive_tx_id(&a, 1));
        assert_ne!(Proposal::derive_tx_id(&a, 1), Proposal::derive_tx_id(&a, 2));
        assert_ne!(Proposal::derive_tx_id(&a, 1), Proposal::derive_tx_id(&b, 1));
    }

    #[test]
    fn proposal_wire_roundtrip() {
        let (_, id) = client_identity(3);
        let p = Proposal::new(
            "ch1",
            "cc1",
            "readPrivate",
            vec![b"k1".to_vec()],
            BTreeMap::new(),
            id,
            7,
        );
        assert_eq!(Proposal::from_wire(&p.to_wire()).unwrap(), p);
    }

    #[test]
    fn hashed_payload_form_replaces_only_payload() {
        let payload = ProposalResponsePayload {
            proposal_hash: sha256(b"prop"),
            response: Response::ok(b"secret-value".to_vec()),
            results: TxRwSet::new(),
            event: None,
        };
        let hashed = payload.to_hashed_payload_form();
        assert_eq!(hashed.response.status, RESPONSE_OK);
        assert_eq!(hashed.response.payload, sha256(b"secret-value").0.to_vec());
        assert_eq!(hashed.proposal_hash, payload.proposal_hash);
        assert_eq!(hashed.results, payload.results);
    }

    #[test]
    fn endorsement_verifies_under_declared_commitment() {
        let kp = Keypair::generate_from_seed(4);
        let endorser = Identity::new("Org1MSP", Role::Peer, kp.public_key());
        let payload = ProposalResponsePayload {
            proposal_hash: sha256(b"p"),
            response: Response::ok(b"v".to_vec()),
            results: TxRwSet::new(),
            event: None,
        };
        for commitment in [PayloadCommitment::Plain, PayloadCommitment::HashedPayload] {
            let sig = kp.sign(&payload.signed_bytes(commitment));
            let pr = ProposalResponse {
                payload: payload.clone(),
                commitment,
                endorsement: Endorsement {
                    endorser: endorser.clone(),
                    signature: sig,
                },
            };
            assert!(pr.verify(), "{commitment:?}");
        }

        // A signature over the plain form does not verify as hashed form.
        let sig = kp.sign(&payload.signed_bytes(PayloadCommitment::Plain));
        let pr = ProposalResponse {
            payload,
            commitment: PayloadCommitment::HashedPayload,
            endorsement: Endorsement {
                endorser,
                signature: sig,
            },
        };
        assert!(!pr.verify());
    }

    #[test]
    fn response_constructors() {
        assert!(Response::ok(vec![]).is_ok());
        let e = Response::error("boom");
        assert!(!e.is_ok());
        assert_eq!(e.status, RESPONSE_ERROR);
        assert_eq!(e.message, "boom");
    }
}
