//! Core Hyperledger Fabric protocol data types for the PDC simulator.
//!
//! These mirror the message structures the paper reasons about (its Fig. 3):
//! proposals, proposal responses with the `payload`/`status`/`message`
//! response triple, read/write sets in both plaintext and hashed (PDC) form,
//! endorsements, transactions, blocks with per-transaction validity flags,
//! and collection configurations with the `EndorsementPolicy` knob that
//! drives the paper's Use Case 2.
//!
//! Everything implements [`fabric_wire::Encode`], so hashes and signatures
//! over these messages are canonical and stable.

#[macro_use]
mod wire_macros;

mod block;
mod collection;
mod defense;
mod identity;
mod ids;
mod proposal;
mod rwset;
mod transaction;

pub use block::{Block, BlockHeader, BlockMetadata};
pub use collection::CollectionConfig;
pub use defense::DefenseConfig;
pub use identity::{Identity, Role};
pub use ids::{ChaincodeId, ChannelId, CollectionName, OrgId, TxId};
pub use proposal::{
    ChaincodeEvent, Endorsement, PayloadCommitment, Proposal, ProposalResponse,
    ProposalResponsePayload, Response, RESPONSE_ERROR, RESPONSE_OK,
};
pub use rwset::{
    CollectionHashedRwSet, CollectionPvtRwSet, HashedRead, HashedWrite, KvRead, KvRwSet, KvWrite,
    MetadataWrite, NsRwSet, PvtDataPackage, TxKind, TxRwSet, Version,
};
pub use transaction::{SignatureFailure, Transaction, TxMemo, TxValidationCode};
