//! Lightweight derive replacements for [`fabric_wire::Encode`] /
//! [`fabric_wire::Decode`] on protocol structs and fieldless enums.

/// Implements `Encode`/`Decode` for a struct by encoding fields in
/// declaration order.
macro_rules! impl_wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl fabric_wire::Encode for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                $( self.$field.encode(buf); )+
            }
        }
        impl fabric_wire::Decode for $ty {
            fn decode(r: &mut fabric_wire::Reader<'_>) -> Result<Self, fabric_wire::WireError> {
                Ok(Self {
                    $( $field: fabric_wire::Decode::decode(r)?, )+
                })
            }
        }
    };
}

/// Implements `Encode`/`Decode` for a fieldless enum via a one-byte tag.
macro_rules! impl_wire_enum {
    ($ty:ident { $($variant:ident = $tag:literal),+ $(,)? }) => {
        impl fabric_wire::Encode for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                let tag: u8 = match self {
                    $( $ty::$variant => $tag, )+
                };
                buf.push(tag);
            }
        }
        impl fabric_wire::Decode for $ty {
            fn decode(r: &mut fabric_wire::Reader<'_>) -> Result<Self, fabric_wire::WireError> {
                match r.read_byte()? {
                    $( $tag => Ok($ty::$variant), )+
                    other => Err(fabric_wire::WireError::InvalidTag {
                        ty: stringify!($ty),
                        tag: u64::from(other),
                    }),
                }
            }
        }
    };
}
