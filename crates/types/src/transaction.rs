//! Assembled transactions and their validation codes.

use crate::identity::Identity;
use crate::ids::{ChaincodeId, ChannelId, TxId};
use crate::proposal::{Endorsement, PayloadCommitment, ProposalResponsePayload};
use crate::rwset::{TxKind, TxRwSet};
use fabric_crypto::{BatchVerifier, PublicKey, Signature};
use fabric_wire::Encode;
use std::fmt;
use std::sync::OnceLock;

/// Why a transaction was marked valid or invalid during the validation
/// phase. Mirrors Fabric's `TxValidationCode`, restricted to the outcomes
/// the simulator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxValidationCode {
    /// Passed endorsement policy and version-conflict checks.
    Valid,
    /// A read version no longer matches the world state (MVCC conflict).
    MvccReadConflict,
    /// Endorsements do not satisfy the applicable endorsement policy.
    EndorsementPolicyFailure,
    /// An endorsement signature failed cryptographic verification.
    InvalidEndorserSignature,
    /// The client signature failed verification.
    InvalidClientSignature,
    /// Rejected by the supplemental defense: an endorsement was produced by
    /// a peer that is not a member of a touched collection.
    NonMemberEndorsement,
    /// A transaction with the same ID was already committed.
    DuplicateTxId,
    /// Structurally bad payload (e.g. endorsers disagreed, missing fields).
    BadPayload,
}

impl_wire_enum!(TxValidationCode {
    Valid = 0,
    MvccReadConflict = 1,
    EndorsementPolicyFailure = 2,
    InvalidEndorserSignature = 3,
    InvalidClientSignature = 4,
    NonMemberEndorsement = 5,
    DuplicateTxId = 6,
    BadPayload = 7,
});

impl TxValidationCode {
    /// True only for [`TxValidationCode::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, TxValidationCode::Valid)
    }
}

impl fmt::Display for TxValidationCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxValidationCode::Valid => "VALID",
            TxValidationCode::MvccReadConflict => "MVCC_READ_CONFLICT",
            TxValidationCode::EndorsementPolicyFailure => "ENDORSEMENT_POLICY_FAILURE",
            TxValidationCode::InvalidEndorserSignature => "INVALID_ENDORSER_SIGNATURE",
            TxValidationCode::InvalidClientSignature => "INVALID_CLIENT_SIGNATURE",
            TxValidationCode::NonMemberEndorsement => "NON_MEMBER_ENDORSEMENT",
            TxValidationCode::DuplicateTxId => "DUPLICATE_TXID",
            TxValidationCode::BadPayload => "BAD_PAYLOAD",
        };
        f.write_str(s)
    }
}

/// Lazily-populated per-transaction byte caches.
///
/// Three canonical encodings are recomputed over and over on the commit
/// path — the payload bytes every endorsement signature covers, the
/// client-signed tuple, and the full transaction wire form (hashed into
/// every block's data hash). With `Arc`-shared blocks, one transaction
/// instance is verified by every peer it fans out to, so caching these
/// on first use turns N-peer validation into one encode total instead of
/// one per peer per signature.
///
/// The cache is invisible everywhere that matters: it is excluded from
/// the wire format, compares equal to any other cache, and `Clone`
/// deliberately yields a *fresh* (empty) cache — a cloned transaction is
/// independently mutable, so carried bytes could go stale.
#[derive(Default)]
pub struct TxMemo {
    payload_wire: OnceLock<Vec<u8>>,
    client_wire: OnceLock<Vec<u8>>,
    tx_wire: OnceLock<Vec<u8>>,
}

impl TxMemo {
    /// A fresh, unpopulated cache.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clone for TxMemo {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for TxMemo {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for TxMemo {}

impl fmt::Debug for TxMemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxMemo")
            .field("payload_cached", &self.payload_wire.get().is_some())
            .field("client_cached", &self.client_wire.get().is_some())
            .field("tx_cached", &self.tx_wire.get().is_some())
            .finish()
    }
}

/// An assembled transaction as submitted to the ordering service and stored
/// in blocks (Fig. 3): header fields, the representative proposal-response
/// payload, and the collected endorsements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Transaction ID (from the proposal).
    pub tx_id: TxId,
    /// Channel the transaction belongs to.
    pub channel: ChannelId,
    /// Chaincode that produced it.
    pub chaincode: ChaincodeId,
    /// The client that assembled and submitted the transaction.
    pub creator: Identity,
    /// The proposal-response payload all endorsers agreed on. Under
    /// [`PayloadCommitment::HashedPayload`] (New Feature 2) the chaincode
    /// response payload inside is the SHA-256 digest, not the plaintext.
    pub payload: ProposalResponsePayload,
    /// Which payload form the endorsement signatures cover.
    pub commitment: PayloadCommitment,
    /// Collected endorsements.
    pub endorsements: Vec<Endorsement>,
    /// Client signature over the transaction content.
    pub client_signature: Signature,
    /// Lazily-computed byte caches ([`TxMemo`]); excluded from the wire
    /// form and from equality.
    pub memo: TxMemo,
}

// `memo` is a cache, not data: the wire form is exactly the eight
// payload-bearing fields, byte-identical to what `impl_wire_struct!`
// produced before the cache existed (the macro can't skip fields, hence
// the manual impls). Encoding populates — and afterwards reuses — the
// full-transaction cache.
impl fabric_wire::Encode for Transaction {
    fn encode(&self, buf: &mut Vec<u8>) {
        let bytes = self.memo.tx_wire.get_or_init(|| {
            let mut b = Vec::new();
            self.tx_id.encode(&mut b);
            self.channel.encode(&mut b);
            self.chaincode.encode(&mut b);
            self.creator.encode(&mut b);
            b.extend_from_slice(self.payload_wire());
            self.commitment.encode(&mut b);
            self.endorsements.encode(&mut b);
            self.client_signature.encode(&mut b);
            b
        });
        buf.extend_from_slice(bytes);
    }
}

impl fabric_wire::Decode for Transaction {
    fn decode(r: &mut fabric_wire::Reader<'_>) -> Result<Self, fabric_wire::WireError> {
        Ok(Transaction {
            tx_id: fabric_wire::Decode::decode(r)?,
            channel: fabric_wire::Decode::decode(r)?,
            chaincode: fabric_wire::Decode::decode(r)?,
            creator: fabric_wire::Decode::decode(r)?,
            payload: fabric_wire::Decode::decode(r)?,
            commitment: fabric_wire::Decode::decode(r)?,
            endorsements: fabric_wire::Decode::decode(r)?,
            client_signature: fabric_wire::Decode::decode(r)?,
            memo: TxMemo::default(),
        })
    }
}

/// Which signature failed in [`Transaction::verify_signatures`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureFailure {
    /// The client signature over the assembled transaction is invalid.
    Client,
    /// An endorsement signature is invalid (or there are no endorsements).
    Endorsement,
}

impl Transaction {
    /// The bytes the client signs when assembling the transaction.
    pub fn client_signed_bytes(
        tx_id: &TxId,
        payload: &ProposalResponsePayload,
        endorsements: &[Endorsement],
    ) -> Vec<u8> {
        (tx_id, payload, endorsements).to_wire()
    }

    /// Canonical wire bytes of the payload — the message every
    /// endorsement signature covers — computed once per instance.
    fn payload_wire(&self) -> &[u8] {
        self.memo
            .payload_wire
            .get_or_init(|| self.payload.to_wire())
    }

    /// The client-signed tuple bytes (see
    /// [`Transaction::client_signed_bytes`]), computed once per instance.
    fn client_wire(&self) -> &[u8] {
        self.memo.client_wire.get_or_init(|| {
            // `signed_bytes(Plain)` is the payload's canonical wire form,
            // so the payload cache doubles as the tuple's middle segment.
            let payload_bytes = self.payload_wire();
            let mut buf =
                Vec::with_capacity(payload_bytes.len() + 96 * self.endorsements.len() + 24);
            self.tx_id.encode(&mut buf);
            buf.extend_from_slice(payload_bytes);
            self.endorsements.encode(&mut buf);
            buf
        })
    }

    /// The read/write sets carried by this transaction.
    pub fn rwset(&self) -> &TxRwSet {
        &self.payload.results
    }

    /// Table-I classification of the carried rwset.
    pub fn kind(&self) -> TxKind {
        self.payload.results.kind()
    }

    /// Verifies every endorsement signature against the stored payload.
    ///
    /// The stored payload is always exactly what the endorsers signed: the
    /// plaintext form originally, or — when the client assembled under New
    /// Feature 2 — the hashed-payload form (`commitment` records which).
    /// Note this is *cryptographic* verification only; whether the
    /// endorsers satisfy the endorsement policy is the committer's policy
    /// check.
    pub fn verify_endorsement_signatures(&self) -> bool {
        let signed = self.payload.signed_bytes(PayloadCommitment::Plain);
        self.endorsements
            .iter()
            .all(|e| e.signature.verify(&e.endorser.public_key, &signed))
    }

    /// Verifies the client signature.
    pub fn verify_client_signature(&self) -> bool {
        let bytes = Self::client_signed_bytes(&self.tx_id, &self.payload, &self.endorsements);
        self.client_signature
            .verify(&self.creator.public_key, &bytes)
    }

    /// Verifies the client signature and every endorsement signature in one
    /// pass; `None` means all of them check out.
    ///
    /// Equivalent to [`Transaction::verify_client_signature`] followed by
    /// an endorsements-present check and
    /// [`Transaction::verify_endorsement_signatures`], but the payload —
    /// the bulk of the signed bytes, shared by every signature — is
    /// serialized once instead of once per verification. This is the
    /// commit pipeline's hot path: every transaction in every block passes
    /// through here.
    pub fn verify_signatures(&self) -> Option<SignatureFailure> {
        self.verify_signatures_impl(|pk, msg, sig| sig.verify(pk, msg))
    }

    /// [`Transaction::verify_signatures`] through a [`BatchVerifier`]:
    /// identical outcome, but each signer's verification material is
    /// resolved from the CA registry once per verifier instead of once per
    /// signature. The overlap commit scheduler keeps one verifier per
    /// validation worker across a whole block stream, so the handful of
    /// endorsing identities that sign every transaction are resolved a
    /// handful of times total.
    pub fn verify_signatures_batched(&self, batch: &mut BatchVerifier) -> Option<SignatureFailure> {
        self.verify_signatures_impl(|pk, msg, sig| batch.verify(pk, msg, sig))
    }

    /// Shared body of the combined signature checks, parameterized over
    /// the primitive verification call.
    ///
    /// Both signed-bytes encodings come from the [`TxMemo`] caches, so
    /// when an `Arc`-shared block fans the same transaction instance out
    /// to N validating peers the serialization work is paid exactly once.
    fn verify_signatures_impl(
        &self,
        mut verify: impl FnMut(&PublicKey, &[u8], &Signature) -> bool,
    ) -> Option<SignatureFailure> {
        let client_bytes = self.client_wire();
        if !verify(
            &self.creator.public_key,
            client_bytes,
            &self.client_signature,
        ) {
            return Some(SignatureFailure::Client);
        }
        if self.endorsements.is_empty() {
            return Some(SignatureFailure::Endorsement);
        }
        let payload_bytes = self.payload_wire();
        for e in &self.endorsements {
            if !verify(&e.endorser.public_key, payload_bytes, &e.signature) {
                return Some(SignatureFailure::Endorsement);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::Role;
    use crate::proposal::Response;
    use fabric_crypto::{sha256, Keypair};
    use fabric_wire::Decode;

    fn sample_tx() -> Transaction {
        let client_kp = Keypair::generate_from_seed(21);
        let client = Identity::new("Org1MSP", Role::Client, client_kp.public_key());
        let endorser_kp = Keypair::generate_from_seed(22);
        let endorser = Identity::new("Org1MSP", Role::Peer, endorser_kp.public_key());
        let payload = ProposalResponsePayload {
            proposal_hash: sha256(b"prop"),
            response: Response::ok(b"value".to_vec()),
            results: TxRwSet::new(),
            event: None,
        };
        let commitment = PayloadCommitment::Plain;
        let endorsement = Endorsement {
            endorser,
            signature: endorser_kp.sign(&payload.signed_bytes(commitment)),
        };
        let tx_id = TxId::new("tx-1");
        let endorsements = vec![endorsement];
        let client_signature = client_kp.sign(&Transaction::client_signed_bytes(
            &tx_id,
            &payload,
            &endorsements,
        ));
        Transaction {
            tx_id,
            channel: ChannelId::new("ch1"),
            chaincode: ChaincodeId::new("cc1"),
            creator: client,
            payload,
            commitment,
            endorsements,
            client_signature,
            memo: TxMemo::default(),
        }
    }

    #[test]
    fn signatures_verify() {
        let tx = sample_tx();
        assert!(tx.verify_endorsement_signatures());
        assert!(tx.verify_client_signature());
        assert_eq!(tx.verify_signatures(), None);
    }

    #[test]
    fn tampering_payload_breaks_endorsements() {
        let mut tx = sample_tx();
        tx.payload.response.payload = b"forged".to_vec();
        assert!(!tx.verify_endorsement_signatures());
        // The client signature also covered the payload, so the combined
        // check reports the client failure first.
        assert_eq!(tx.verify_signatures(), Some(SignatureFailure::Client));
    }

    #[test]
    fn tampering_endorsements_breaks_client_signature() {
        let mut tx = sample_tx();
        tx.endorsements.clear();
        assert!(!tx.verify_client_signature());
        assert_eq!(tx.verify_signatures(), Some(SignatureFailure::Client));
    }

    #[test]
    fn combined_verify_matches_separate_checks() {
        // A valid transaction, a forged endorsement signature, and a forged
        // client signature must agree between the combined one-pass check
        // and the two original ones.
        let good = sample_tx();
        let mut bad_endorsement = sample_tx();
        bad_endorsement.endorsements[0].signature =
            Keypair::generate_from_seed(99).sign(b"wrong bytes");
        // Re-sign as the client so only the endorsement is at fault.
        let client_kp = Keypair::generate_from_seed(21);
        bad_endorsement.client_signature = client_kp.sign(&Transaction::client_signed_bytes(
            &bad_endorsement.tx_id,
            &bad_endorsement.payload,
            &bad_endorsement.endorsements,
        ));
        let mut bad_client = sample_tx();
        bad_client.client_signature = Keypair::generate_from_seed(98).sign(b"wrong bytes");

        assert_eq!(good.verify_signatures(), None);
        assert_eq!(
            bad_endorsement.verify_signatures(),
            Some(SignatureFailure::Endorsement)
        );
        assert!(bad_endorsement.verify_client_signature());
        assert!(!bad_endorsement.verify_endorsement_signatures());
        assert_eq!(
            bad_client.verify_signatures(),
            Some(SignatureFailure::Client)
        );
    }

    #[test]
    fn batched_verify_matches_per_call_verify() {
        let good = sample_tx();
        let mut bad_endorsement = sample_tx();
        bad_endorsement.endorsements[0].signature =
            Keypair::generate_from_seed(99).sign(b"wrong bytes");
        let client_kp = Keypair::generate_from_seed(21);
        bad_endorsement.client_signature = client_kp.sign(&Transaction::client_signed_bytes(
            &bad_endorsement.tx_id,
            &bad_endorsement.payload,
            &bad_endorsement.endorsements,
        ));
        let mut bad_client = sample_tx();
        bad_client.client_signature = Keypair::generate_from_seed(98).sign(b"wrong bytes");
        let mut no_endorsements = sample_tx();
        no_endorsements.endorsements.clear();
        no_endorsements.client_signature = client_kp.sign(&Transaction::client_signed_bytes(
            &no_endorsements.tx_id,
            &no_endorsements.payload,
            &no_endorsements.endorsements,
        ));

        // One shared verifier across all four transactions, twice over, so
        // every identity is exercised both cold and cached.
        let mut batch = BatchVerifier::new();
        for _ in 0..2 {
            for tx in [&good, &bad_endorsement, &bad_client, &no_endorsements] {
                assert_eq!(
                    tx.verify_signatures_batched(&mut batch),
                    tx.verify_signatures()
                );
            }
        }
    }

    #[test]
    fn wire_roundtrip() {
        let tx = sample_tx();
        assert_eq!(Transaction::from_wire(&tx.to_wire()).unwrap(), tx);
    }

    #[test]
    fn memoized_signed_bytes_match_fresh_encodings() {
        let tx = sample_tx();
        assert_eq!(tx.verify_signatures(), None); // populates the caches
        assert_eq!(
            tx.memo.payload_wire.get().unwrap().as_slice(),
            tx.payload.to_wire()
        );
        assert_eq!(
            tx.memo.client_wire.get().unwrap().as_slice(),
            Transaction::client_signed_bytes(&tx.tx_id, &tx.payload, &tx.endorsements)
        );
        // A second verification must reuse the caches and agree.
        assert_eq!(tx.verify_signatures(), None);
    }

    #[test]
    fn memo_is_reset_on_clone_and_excluded_from_equality() {
        let tx = sample_tx();
        let bytes = tx.to_wire(); // populates the full-tx cache
        assert!(tx.memo.tx_wire.get().is_some());
        let cloned = tx.clone();
        // The clone starts cold — it may be mutated independently — yet
        // still encodes to the same bytes and compares equal.
        assert!(cloned.memo.tx_wire.get().is_none());
        assert_eq!(cloned.to_wire(), bytes);
        assert_eq!(cloned, tx);
    }

    #[test]
    fn clone_then_tamper_reencodes_honestly() {
        // The cache must never leak a pre-mutation encoding: cloning
        // resets it, so a tampered clone hashes to different bytes.
        let tx = sample_tx();
        let original = tx.to_wire();
        let mut forged = tx.clone();
        forged.payload.response.payload = b"forged".to_vec();
        assert_ne!(forged.to_wire(), original);
    }

    #[test]
    fn validation_code_display_and_validity() {
        assert!(TxValidationCode::Valid.is_valid());
        assert!(!TxValidationCode::MvccReadConflict.is_valid());
        assert_eq!(
            TxValidationCode::EndorsementPolicyFailure.to_string(),
            "ENDORSEMENT_POLICY_FAILURE"
        );
    }
}
