//! Configuration of the paper's proposed defenses (§IV-C).

/// Which of the paper's new Fabric features are enabled.
///
/// The default (`DefenseConfig::default()`) is the **original** Fabric
/// behaviour the paper attacks; [`DefenseConfig::hardened`] enables every
/// proposed mitigation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DefenseConfig {
    /// New Feature 1: during validation, PDC **read-only** transactions are
    /// checked against the collection-level endorsement policy when one is
    /// defined (original Fabric always uses the chaincode-level policy for
    /// reads — Use Case 2).
    pub collection_policy_for_reads: bool,
    /// New Feature 2: endorsers sign the proposal-response payload with the
    /// chaincode response payload replaced by its SHA-256, and clients
    /// assemble transactions from that hashed form, so committed blocks
    /// never carry plaintext private values (fixes Use Case 3 leakage).
    pub hashed_payload_commitment: bool,
    /// Supplemental feature: during validation, reject transactions whose
    /// endorsements include peers from organizations that are not members
    /// of a touched collection.
    pub filter_non_member_endorsers: bool,
}

impl DefenseConfig {
    /// The unmodified Fabric framework (all defenses off).
    pub fn original() -> Self {
        DefenseConfig::default()
    }

    /// All defenses on: Features 1 and 2 plus the non-member filter.
    pub fn hardened() -> Self {
        DefenseConfig {
            collection_policy_for_reads: true,
            hashed_payload_commitment: true,
            filter_non_member_endorsers: true,
        }
    }

    /// Only New Feature 1 (collection-level policy for PDC reads).
    pub fn feature1() -> Self {
        DefenseConfig {
            collection_policy_for_reads: true,
            ..DefenseConfig::default()
        }
    }

    /// Only New Feature 2 (cryptographic payload commitment).
    pub fn feature2() -> Self {
        DefenseConfig {
            hashed_payload_commitment: true,
            ..DefenseConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(DefenseConfig::original(), DefenseConfig::default());
        let h = DefenseConfig::hardened();
        assert!(h.collection_policy_for_reads);
        assert!(h.hashed_payload_commitment);
        assert!(h.filter_non_member_endorsers);
        assert!(DefenseConfig::feature1().collection_policy_for_reads);
        assert!(!DefenseConfig::feature1().hashed_payload_commitment);
        assert!(DefenseConfig::feature2().hashed_payload_commitment);
    }
}
