//! Blocks: header, transaction list, and metadata with validity flags.

use crate::identity::Identity;
use crate::transaction::{Transaction, TxValidationCode};
use fabric_crypto::{sha256, Hash256, Sha256, Signature};
use fabric_wire::Encode;
use std::sync::Arc;

/// A block header chaining to the previous block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Height of this block (genesis is 0).
    pub number: u64,
    /// Hash of the previous block's header; all-zero for genesis.
    pub previous_hash: Hash256,
    /// Hash of the serialized transaction list.
    pub data_hash: Hash256,
}

impl_wire_struct!(BlockHeader {
    number,
    previous_hash,
    data_hash
});

impl BlockHeader {
    /// The hash of this header, used as `previous_hash` by the next block.
    pub fn hash(&self) -> Hash256 {
        sha256(&self.to_wire())
    }
}

/// Block metadata: the per-transaction validity vector written by
/// committing peers, plus the orderer's signature.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockMetadata {
    /// One code per transaction, aligned with `Block::transactions`. Empty
    /// until a committing peer validates the block.
    pub validation_codes: Vec<TxValidationCode>,
    /// Identity of the orderer that cut the block.
    pub orderer: Option<Identity>,
    /// Orderer signature over the block header.
    pub orderer_signature: Option<Signature>,
}

impl_wire_struct!(BlockMetadata {
    validation_codes,
    orderer,
    orderer_signature
});

/// A block: header, transactions, metadata (Fig. 3).
///
/// The transaction list is `Arc`-shared: cloning a block (the network
/// fans each cut block out to every peer) bumps a reference count
/// instead of deep-copying every transaction, and all receivers see the
/// same instances — so per-transaction byte caches
/// ([`crate::transaction::TxMemo`]) are populated once network-wide.
/// The wire form is unchanged (`Arc<[T]>` encodes exactly like
/// `Vec<T>`); per-block mutable state lives in `metadata`, which stays
/// owned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The chained header.
    pub header: BlockHeader,
    /// Ordered transactions, shared across every clone of this block.
    pub transactions: Arc<[Transaction]>,
    /// Validity flags and orderer signature.
    pub metadata: BlockMetadata,
}

impl_wire_struct!(Block {
    header,
    transactions,
    metadata
});

impl Block {
    /// Builds a block over `transactions`, computing the data hash and
    /// chaining to `previous_hash`. Accepts either owned (`Vec`) or
    /// already-shared (`Arc<[_]>`) transaction storage.
    pub fn new(
        number: u64,
        previous_hash: Hash256,
        transactions: impl Into<Arc<[Transaction]>>,
    ) -> Self {
        let transactions = transactions.into();
        let data_hash = Self::compute_data_hash(&transactions);
        Block {
            header: BlockHeader {
                number,
                previous_hash,
                data_hash,
            },
            transactions,
            metadata: BlockMetadata::default(),
        }
    }

    /// Hash of the serialized transaction list.
    ///
    /// Streams the canonical `Vec<Transaction>` wire form (varint count,
    /// then each transaction) through the hasher one transaction at a
    /// time, so verifying a block costs one reusable per-transaction
    /// buffer instead of cloning and serializing the whole list.
    pub fn compute_data_hash(transactions: &[Transaction]) -> Hash256 {
        let mut hasher = Sha256::new();
        let mut buf = Vec::with_capacity(16);
        fabric_wire::write_varint(&mut buf, transactions.len() as u64);
        for tx in transactions {
            hasher.update(&buf);
            buf.clear();
            tx.encode(&mut buf);
        }
        hasher.update(&buf);
        hasher.finalize()
    }

    /// Hash of this block's header.
    pub fn hash(&self) -> Hash256 {
        self.header.hash()
    }

    /// Structural integrity: the stored data hash matches the transactions.
    pub fn data_hash_is_consistent(&self) -> bool {
        self.header.data_hash == Self::compute_data_hash(&self.transactions)
    }

    /// Whether this block correctly chains onto `previous`.
    pub fn chains_onto(&self, previous: &Block) -> bool {
        self.header.number == previous.header.number + 1
            && self.header.previous_hash == previous.hash()
    }

    /// The validation code of transaction `idx`, if the block has been
    /// validated.
    pub fn validation_code(&self, idx: usize) -> Option<TxValidationCode> {
        self.metadata.validation_codes.get(idx).copied()
    }

    /// Iterates over `(transaction, validation_code)` pairs of a validated
    /// block; yields nothing when metadata is absent.
    pub fn validated_transactions(
        &self,
    ) -> impl Iterator<Item = (&Transaction, TxValidationCode)> + '_ {
        self.transactions
            .iter()
            .zip(self.metadata.validation_codes.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_wire::Decode;

    #[test]
    fn genesis_and_chaining() {
        let genesis = Block::new(0, Hash256::default(), vec![]);
        assert!(genesis.data_hash_is_consistent());
        let next = Block::new(1, genesis.hash(), vec![]);
        assert!(next.chains_onto(&genesis));

        let forged = Block::new(2, genesis.hash(), vec![]);
        assert!(!forged.chains_onto(&genesis));
        let wrong_parent = Block::new(1, Hash256::default(), vec![]);
        assert!(!wrong_parent.chains_onto(&genesis));
    }

    #[test]
    fn streamed_data_hash_matches_owned_serialization() {
        use crate::identity::{Identity, Role};
        use crate::ids::{ChaincodeId, ChannelId, TxId};
        use crate::proposal::{PayloadCommitment, ProposalResponsePayload, Response};
        use crate::rwset::TxRwSet;
        use fabric_crypto::Keypair;

        let txs: Vec<Transaction> = (0..3)
            .map(|i| {
                let kp = Keypair::generate_from_seed(40 + i);
                Transaction {
                    tx_id: TxId::new(format!("tx-{i}")),
                    channel: ChannelId::new("ch1"),
                    chaincode: ChaincodeId::new("cc1"),
                    creator: Identity::new("Org1MSP", Role::Client, kp.public_key()),
                    payload: ProposalResponsePayload {
                        proposal_hash: sha256(format!("prop-{i}").as_bytes()),
                        response: Response::ok(vec![i as u8; 3]),
                        results: TxRwSet::new(),
                        event: None,
                    },
                    commitment: PayloadCommitment::Plain,
                    endorsements: vec![],
                    client_signature: kp.sign(b"sig"),
                    memo: Default::default(),
                }
            })
            .collect();
        // The streaming hasher must reproduce the canonical hash of the
        // fully-serialized transaction list, for every prefix length.
        for n in 0..=txs.len() {
            assert_eq!(
                Block::compute_data_hash(&txs[..n]),
                sha256(&txs[..n].to_vec().to_wire()),
                "prefix {n}"
            );
        }
    }

    #[test]
    fn data_hash_detects_tx_tampering() {
        let block = Block::new(0, Hash256::default(), vec![]);
        let mut tampered = block.clone();
        tampered.header.data_hash = sha256(b"other");
        assert!(!tampered.data_hash_is_consistent());
    }

    #[test]
    fn wire_roundtrip() {
        let block = Block::new(5, sha256(b"prev"), vec![]);
        assert_eq!(Block::from_wire(&block.to_wire()).unwrap(), block);
    }

    #[test]
    fn cloned_blocks_share_transaction_storage() {
        // Fan-out relies on `Block::clone` being a reference-count bump,
        // not a deep copy of the transaction list.
        let block = Block::new(0, Hash256::default(), vec![]);
        let copy = block.clone();
        assert!(Arc::ptr_eq(&block.transactions, &copy.transactions));
    }

    #[test]
    fn validated_transactions_empty_without_metadata() {
        let block = Block::new(0, Hash256::default(), vec![]);
        assert_eq!(block.validated_transactions().count(), 0);
        assert_eq!(block.validation_code(0), None);
    }
}
