//! Identities: who signs proposals, endorsements, and blocks.

use crate::ids::OrgId;
use fabric_crypto::PublicKey;
use fabric_wire::Encode;
use std::fmt;

/// The role a certificate asserts within its organization.
///
/// Endorsement policy principals match on `Org.role` (e.g. `'Org1.peer'`).
/// `Member` matches any role of the organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// A peer node (endorser/committer).
    Peer,
    /// A client application identity.
    Client,
    /// An organization administrator.
    Admin,
    /// An ordering service node.
    Orderer,
}

impl_wire_enum!(Role {
    Peer = 0,
    Client = 1,
    Admin = 2,
    Orderer = 3,
});

impl Role {
    /// The lowercase name used in policy expressions (`peer`, `client`, …).
    pub fn as_str(&self) -> &'static str {
        match self {
            Role::Peer => "peer",
            Role::Client => "client",
            Role::Admin => "admin",
            Role::Orderer => "orderer",
        }
    }

    /// Parses a policy-expression role name. `member` is handled by the
    /// policy engine (it matches every role), so it is not a `Role`.
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "peer" => Some(Role::Peer),
            "client" => Some(Role::Client),
            "admin" => Some(Role::Admin),
            "orderer" => Some(Role::Orderer),
            _ => None,
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An enrolled identity: organization, role, and public key.
///
/// Stands in for a Fabric X.509 certificate issued by the org's CA.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Identity {
    /// Owning organization (MSP).
    pub org: OrgId,
    /// Role asserted by the certificate.
    pub role: Role,
    /// The identity's public key.
    pub public_key: PublicKey,
}

impl Identity {
    /// Creates an identity record.
    pub fn new(org: impl Into<OrgId>, role: Role, public_key: PublicKey) -> Self {
        Identity {
            org: org.into(),
            role,
            public_key,
        }
    }

    /// Canonical bytes used wherever Fabric would serialize the creator
    /// certificate (e.g. into transaction IDs).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_wire()
    }
}

impl_wire_struct!(Identity {
    org,
    role,
    public_key
});

impl fmt::Display for Identity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}({})",
            self.org,
            self.role,
            self.public_key.short_hex()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_crypto::Keypair;
    use fabric_wire::Decode;

    #[test]
    fn role_parse_roundtrip() {
        for r in [Role::Peer, Role::Client, Role::Admin, Role::Orderer] {
            assert_eq!(Role::parse(r.as_str()), Some(r));
        }
        assert_eq!(Role::parse("member"), None);
        assert_eq!(Role::parse(""), None);
    }

    #[test]
    fn identity_wire_roundtrip() {
        let kp = Keypair::generate_from_seed(11);
        let id = Identity::new("Org1MSP", Role::Peer, kp.public_key());
        assert_eq!(Identity::from_wire(&id.to_wire()).unwrap(), id);
    }

    #[test]
    fn identity_display_names_org_and_role() {
        let kp = Keypair::generate_from_seed(12);
        let id = Identity::new("Org2MSP", Role::Client, kp.public_key());
        let s = id.to_string();
        assert!(s.starts_with("Org2MSP.client("), "{s}");
    }
}
