//! Private data collection configuration.
//!
//! Mirrors the `collections_config.json` schema the paper's static analyzer
//! keys on: `Name`, `Policy`, `RequiredPeerCount`, `MaxPeerCount`,
//! `BlockToLive`, `MemberOnlyRead`, plus the optional `EndorsementPolicy`
//! that, when absent, leaves PDC transactions validated by the
//! chaincode-level policy (Use Case 2).

use crate::ids::{CollectionName, OrgId};

/// Configuration of one private data collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionConfig {
    /// Collection name (`Name` in the JSON definition).
    pub name: CollectionName,
    /// Membership policy expression (`Policy`), e.g.
    /// `"OR('Org1MSP.member','Org2MSP.member')"`. Organizations matching it
    /// store the plaintext private data.
    pub member_policy: String,
    /// Minimum peers the endorsing peer must disseminate plaintext data to
    /// before signing (`RequiredPeerCount`).
    pub required_peer_count: u32,
    /// Upper bound on dissemination fan-out (`MaxPeerCount`).
    pub max_peer_count: u32,
    /// Number of blocks after which the private data is purged; `0` keeps it
    /// forever (`BlockToLive`).
    pub block_to_live: u64,
    /// When true, only collection members may read the private data through
    /// chaincode (`MemberOnlyRead`).
    pub member_only_read: bool,
    /// When true, only collection members may write the private data
    /// through chaincode (`MemberOnlyWrite`).
    pub member_only_write: bool,
    /// Optional collection-level endorsement policy
    /// (`EndorsementPolicy`). `None` means write transactions fall back to
    /// the chaincode-level policy — the misuse the paper's attacks exploit.
    pub endorsement_policy: Option<String>,
}

impl CollectionConfig {
    /// Creates a collection with Fabric-like defaults: data kept forever,
    /// `member_only_read = true`, no collection-level endorsement policy.
    pub fn new(name: impl Into<CollectionName>, member_policy: impl Into<String>) -> Self {
        CollectionConfig {
            name: name.into(),
            member_policy: member_policy.into(),
            required_peer_count: 0,
            max_peer_count: 1,
            block_to_live: 0,
            member_only_read: true,
            member_only_write: true,
            endorsement_policy: None,
        }
    }

    /// Sets the collection-level endorsement policy (the paper's mitigation
    /// for write-path attacks, and input to New Feature 1 for reads).
    pub fn with_endorsement_policy(mut self, policy: impl Into<String>) -> Self {
        self.endorsement_policy = Some(policy.into());
        self
    }

    /// Sets `BlockToLive`.
    pub fn with_block_to_live(mut self, blocks: u64) -> Self {
        self.block_to_live = blocks;
        self
    }

    /// Sets `MemberOnlyRead`.
    pub fn with_member_only_read(mut self, v: bool) -> Self {
        self.member_only_read = v;
        self
    }

    /// Sets `MemberOnlyWrite`.
    pub fn with_member_only_write(mut self, v: bool) -> Self {
        self.member_only_write = v;
        self
    }

    /// Sets `RequiredPeerCount` (and raises `MaxPeerCount` to match when it
    /// would otherwise be lower — Fabric rejects `max < required`).
    pub fn with_required_peer_count(mut self, n: u32) -> Self {
        self.required_peer_count = n;
        self.max_peer_count = self.max_peer_count.max(n);
        self
    }

    /// Convenience: builds the usual `OR('OrgX.member', ...)` membership
    /// policy from a list of member organizations.
    pub fn membership_of(name: impl Into<CollectionName>, orgs: &[OrgId]) -> Self {
        let principals: Vec<String> = orgs
            .iter()
            .map(|o| format!("'{}.member'", o.as_str()))
            .collect();
        Self::new(name, format!("OR({})", principals.join(",")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_fabric_conventions() {
        let c = CollectionConfig::new("PDC1", "OR('Org1MSP.member')");
        assert_eq!(c.block_to_live, 0);
        assert!(c.member_only_read);
        assert!(c.member_only_write);
        assert!(c.endorsement_policy.is_none());
    }

    #[test]
    fn membership_builder_renders_or_policy() {
        let c = CollectionConfig::membership_of(
            "PDC1",
            &[OrgId::new("Org1MSP"), OrgId::new("Org2MSP")],
        );
        assert_eq!(c.member_policy, "OR('Org1MSP.member','Org2MSP.member')");
    }

    #[test]
    fn builder_methods_chain() {
        let c = CollectionConfig::new("PDC1", "OR('Org1MSP.member')")
            .with_endorsement_policy("AND('Org1MSP.peer','Org2MSP.peer')")
            .with_block_to_live(100)
            .with_member_only_read(false)
            .with_member_only_write(false)
            .with_required_peer_count(2);
        assert_eq!(
            c.endorsement_policy.as_deref(),
            Some("AND('Org1MSP.peer','Org2MSP.peer')")
        );
        assert_eq!(c.block_to_live, 100);
        assert!(!c.member_only_read);
        assert!(!c.member_only_write);
        assert_eq!(c.required_peer_count, 2);
        // MaxPeerCount was raised to keep the config valid.
        assert_eq!(c.max_peer_count, 2);
    }
}
