//! Raft wire messages.

use std::sync::Arc;

/// Identifier of a Raft node within its cluster.
pub type NodeId = u64;

/// One replicated log entry.
///
/// The command payload is `Arc`-shared: the leader's log, every
/// `AppendEntries` retransmission, each follower's log, and the drained
/// committed stream all reference the same bytes — a serialized block is
/// allocated once at `propose` time and never copied again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Term in which the entry was appended at the leader.
    pub term: u64,
    /// 1-based log index.
    pub index: u64,
    /// Opaque command payload (the orderer stores serialized blocks here).
    pub command: Arc<[u8]>,
}

/// Raft RPCs, modeled as asynchronous messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Pre-vote probe (the PreVote extension, §9.6 of the Raft thesis):
    /// asks "would you vote for me?" without disturbing terms, so a
    /// partitioned node cannot force term churn on rejoin.
    PreVote {
        /// The term the candidate *would* campaign at (current + 1).
        term: u64,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// Reply to a pre-vote probe.
    PreVoteResponse {
        /// Responder's current term.
        term: u64,
        /// Whether a real vote would be granted.
        granted: bool,
    },
    /// Candidate requesting a vote (§5.2 of the Raft paper).
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// Reply to a vote request.
    RequestVoteResponse {
        /// Responder's current term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader replicating entries / heartbeating (§5.3).
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// Index of the entry immediately preceding `entries`.
        prev_log_index: u64,
        /// Term of that entry.
        prev_log_term: u64,
        /// Entries to append (empty for heartbeats).
        entries: Vec<LogEntry>,
        /// Leader's commit index.
        leader_commit: u64,
    },
    /// Reply to an append.
    AppendEntriesResponse {
        /// Responder's current term.
        term: u64,
        /// Whether the append matched and was applied.
        success: bool,
        /// Highest log index known replicated at the responder on success;
        /// on failure, a hint for the leader to back off `next_index`.
        match_index: u64,
    },
    /// Leader transferring a snapshot to a follower whose needed entries
    /// were compacted away (§7 of the Raft paper).
    InstallSnapshot {
        /// Leader's term.
        term: u64,
        /// The snapshot.
        snapshot: Snapshot,
    },
    /// Acknowledgement of a snapshot installation.
    InstallSnapshotResponse {
        /// Responder's current term.
        term: u64,
        /// The snapshot's last included index (the leader's new
        /// `match_index` for this follower).
        last_included_index: u64,
    },
}

/// A compacted prefix of the log: application state up to and including
/// `last_included_index`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Index of the last entry covered by the snapshot.
    pub last_included_index: u64,
    /// Term of that entry.
    pub last_included_term: u64,
    /// Opaque application state (the orderer stores its chain position).
    pub data: Vec<u8>,
}

/// A routed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sender node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// The message.
    pub message: Message,
}
