//! Deterministic in-memory Raft cluster simulation.

use crate::message::{Envelope, NodeId};
use crate::node::{NotLeader, RaftConfig, RaftNode, Role};
use fabric_telemetry::{SpanGuard, Telemetry, TraceContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;

/// Point-in-time transport and consensus statistics for a [`Cluster`],
/// exported as gauges by the ordering service's telemetry hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Messages delivered to a live node since cluster creation.
    pub messages_delivered: u64,
    /// Messages lost to partitions, random drops, or crashed recipients.
    pub messages_dropped: u64,
    /// The highest term any live node has observed.
    pub term: u64,
    /// Live node count.
    pub live_nodes: usize,
}

/// An in-memory cluster: nodes plus a message queue with fault injection.
///
/// Message delivery is deterministic given the seed; faults are injected
/// with [`Cluster::set_drop_rate`] and [`Cluster::partition`].
#[derive(Debug)]
pub struct Cluster {
    nodes: BTreeMap<NodeId, RaftNode>,
    queue: VecDeque<Envelope>,
    committed: BTreeMap<NodeId, Vec<Arc<[u8]>>>,
    /// Links currently severed, as ordered pairs `(from, to)`.
    severed: HashSet<(NodeId, NodeId)>,
    drop_rate: f64,
    rng: StdRng,
    messages_delivered: u64,
    messages_dropped: u64,
    /// Optional tracing pipeline; `raft.replicate` spans measure propose →
    /// first-commit latency per log entry.
    telemetry: Option<Telemetry>,
    /// Open replicate spans keyed by log index, finished (dropped) once
    /// the index first surfaces as committed at any node.
    inflight: Vec<(u64, SpanGuard)>,
    /// Highest log index any node has surfaced as committed.
    max_committed_index: u64,
}

impl Cluster {
    /// Builds a cluster of `n` nodes with IDs `1..=n`.
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_config(n, seed, RaftConfig::default())
    }

    /// Builds a cluster with custom Raft timing.
    pub fn with_config(n: usize, seed: u64, config: RaftConfig) -> Self {
        let ids: Vec<NodeId> = (1..=n as NodeId).collect();
        let mut nodes = BTreeMap::new();
        for &id in &ids {
            let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p != id).collect();
            nodes.insert(id, RaftNode::new(id, peers, config, seed));
        }
        Cluster {
            nodes,
            queue: VecDeque::new(),
            committed: ids.iter().map(|&id| (id, Vec::new())).collect(),
            severed: HashSet::new(),
            drop_rate: 0.0,
            rng: StdRng::seed_from_u64(seed),
            messages_delivered: 0,
            messages_dropped: 0,
            telemetry: None,
            inflight: Vec::new(),
            max_committed_index: 0,
        }
    }

    /// Attaches a telemetry pipeline; each successful proposal then opens
    /// a `raft.replicate` span that closes when the entry first commits.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Transport and consensus statistics since cluster creation.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            messages_delivered: self.messages_delivered,
            messages_dropped: self.messages_dropped,
            term: self.nodes.values().map(RaftNode::term).max().unwrap_or(0),
            live_nodes: self.nodes.len(),
        }
    }

    /// IDs of all nodes.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Sets a uniform message drop probability.
    pub fn set_drop_rate(&mut self, rate: f64) {
        self.drop_rate = rate;
    }

    /// Severs all links between `group_a` and `group_b` (both directions).
    pub fn partition(&mut self, group_a: &[NodeId], group_b: &[NodeId]) {
        for &a in group_a {
            for &b in group_b {
                self.severed.insert((a, b));
                self.severed.insert((b, a));
            }
        }
    }

    /// Heals all partitions.
    pub fn heal(&mut self) {
        self.severed.clear();
    }

    /// Runs one tick on every node, then delivers all queued messages.
    pub fn tick(&mut self) {
        let mut outbound = Vec::new();
        for node in self.nodes.values_mut() {
            outbound.extend(node.tick());
        }
        self.enqueue(outbound);
        self.deliver_all();
        self.drain_committed();
    }

    /// Runs `n` ticks.
    pub fn run_ticks(&mut self, n: usize) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Ticks until some node is leader; returns its ID or `None` after
    /// `max_ticks`.
    pub fn run_until_leader(&mut self, max_ticks: usize) -> Option<NodeId> {
        for _ in 0..max_ticks {
            self.tick();
            if let Some(l) = self.leader() {
                return Some(l);
            }
        }
        None
    }

    /// The current leader with the highest term, if any.
    pub fn leader(&self) -> Option<NodeId> {
        self.nodes
            .values()
            .filter(|n| n.role() == Role::Leader)
            .max_by_key(|n| n.term())
            .map(|n| n.id())
    }

    /// Proposes a command at `node`.
    ///
    /// # Errors
    ///
    /// [`NotLeader`] when `node` is not the leader.
    pub fn propose(
        &mut self,
        node: NodeId,
        command: impl Into<Arc<[u8]>>,
    ) -> Result<u64, NotLeader> {
        self.propose_with_trace(node, command, &[])
    }

    /// Proposes a command at `node`, opening one `raft.replicate` span per
    /// trace context (or a single untraced span when `traces` is empty)
    /// that closes when the entry first surfaces as committed. The caller
    /// (the ordering service) passes one context per transaction carried
    /// by the command, so replication latency lands in every
    /// transaction's cross-node timeline.
    ///
    /// # Errors
    ///
    /// [`NotLeader`] when `node` is not the leader.
    pub fn propose_with_trace(
        &mut self,
        node: NodeId,
        command: impl Into<Arc<[u8]>>,
        traces: &[TraceContext],
    ) -> Result<u64, NotLeader> {
        let n = self.nodes.get_mut(&node).expect("node exists");
        let index = n.propose(command)?;
        if let Some(t) = self.telemetry.as_ref().filter(|t| t.tracing_enabled()) {
            let open = |ctx: Option<&TraceContext>| {
                let mut span = t.span("raft.replicate");
                span.node(format!("raft{node}"));
                span.field("index", index);
                if let Some(ctx) = ctx {
                    span.trace(*ctx);
                }
                span
            };
            if traces.is_empty() {
                self.inflight.push((index, open(None)));
            } else {
                for ctx in traces {
                    self.inflight.push((index, open(Some(ctx))));
                }
            }
        }
        Ok(index)
    }

    /// Commands committed at `node` so far, in order. Each command is a
    /// refcount bump on the bytes allocated at `propose` time, not a copy.
    pub fn committed(&self, node: NodeId) -> Vec<Arc<[u8]>> {
        self.committed.get(&node).cloned().unwrap_or_default()
    }

    /// Number of commands committed at `node` so far.
    pub fn committed_len(&self, node: NodeId) -> usize {
        self.committed.get(&node).map_or(0, Vec::len)
    }

    /// Commands committed at `node` from offset `from` onward, borrowed —
    /// so per-tick pollers do O(new entries) work instead of cloning the
    /// whole history. An out-of-range `from` (e.g. a cursor carried over to
    /// a node that has not caught up yet) yields an empty slice.
    pub fn committed_since(&self, node: NodeId, from: usize) -> &[Arc<[u8]>] {
        self.committed
            .get(&node)
            .map_or(&[][..], |log| &log[from.min(log.len())..])
    }

    /// Direct access to a node (tests and invariants).
    pub fn node(&self, id: NodeId) -> &RaftNode {
        &self.nodes[&id]
    }

    /// Crashes a node: removes it entirely (messages to it are dropped).
    pub fn crash(&mut self, id: NodeId) {
        self.nodes.remove(&id);
    }

    /// Compacts a node's log through its applied index, storing `data` as
    /// the application snapshot. Returns the discarded entry count.
    pub fn take_snapshot(&mut self, id: NodeId, data: Vec<u8>) -> usize {
        self.nodes
            .get_mut(&id)
            .expect("node exists")
            .take_snapshot(data)
    }

    /// Drains a leader-installed snapshot at `id`, if one arrived.
    pub fn take_installed_snapshot(&mut self, id: NodeId) -> Option<crate::message::Snapshot> {
        self.nodes
            .get_mut(&id)
            .and_then(|n| n.take_installed_snapshot())
    }

    fn enqueue(&mut self, envelopes: Vec<Envelope>) {
        for env in envelopes {
            self.queue.push_back(env);
        }
    }

    fn deliver_all(&mut self) {
        // Deliver everything queued at the start of this round; responses
        // generated during delivery go to the next round to avoid
        // unbounded cascades within one tick.
        let mut batch: Vec<Envelope> = self.queue.drain(..).collect();
        let mut next = Vec::new();
        for env in batch.drain(..) {
            if self.severed.contains(&(env.from, env.to)) {
                self.messages_dropped += 1;
                continue;
            }
            if self.drop_rate > 0.0 && self.rng.gen_bool(self.drop_rate) {
                self.messages_dropped += 1;
                continue;
            }
            if let Some(node) = self.nodes.get_mut(&env.to) {
                self.messages_delivered += 1;
                next.extend(node.receive(env.from, env.message));
            } else {
                self.messages_dropped += 1;
            }
        }
        self.enqueue(next);
    }

    fn drain_committed(&mut self) {
        for (id, node) in &mut self.nodes {
            let newly = node.take_committed();
            let log = self.committed.entry(*id).or_default();
            for entry in newly {
                self.max_committed_index = self.max_committed_index.max(entry.index);
                log.push(entry.command);
            }
        }
        if !self.inflight.is_empty() {
            // Dropping a guard records the span: propose → first commit.
            let max = self.max_committed_index;
            self.inflight.retain(|(index, _)| *index > max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Committed commands at `node` as owned byte vectors, for comparison
    /// against `Vec<u8>` literals.
    fn bytes(c: &Cluster, node: NodeId) -> Vec<Vec<u8>> {
        c.committed(node).iter().map(|cmd| cmd.to_vec()).collect()
    }

    #[test]
    fn three_node_cluster_elects_and_replicates() {
        let mut c = Cluster::new(3, 1);
        let leader = c.run_until_leader(500).expect("leader elected");
        for i in 0..5u8 {
            c.propose(leader, vec![i]).unwrap();
        }
        c.run_ticks(30);
        for id in c.node_ids() {
            assert_eq!(
                bytes(&c, id),
                vec![vec![0], vec![1], vec![2], vec![3], vec![4]],
                "node {id}"
            );
        }
    }

    #[test]
    fn committed_since_slices_from_cursor() {
        let mut c = Cluster::new(3, 1);
        let leader = c.run_until_leader(500).expect("leader elected");
        for i in 0..4u8 {
            c.propose(leader, vec![i]).unwrap();
        }
        c.run_ticks(30);
        assert_eq!(c.committed_len(leader), 4);
        assert_eq!(c.committed_since(leader, 0), c.committed(leader));
        assert_eq!(c.committed_since(leader, 3), &[Arc::from(&[3u8][..])][..]);
        assert!(c.committed_since(leader, 4).is_empty());
        // Out-of-range cursors (a cursor carried to a node that has not
        // caught up) and unknown nodes are empty, not panics.
        assert!(c.committed_since(leader, 99).is_empty());
        assert_eq!(c.committed_len(99), 0);
        assert!(c.committed_since(99, 0).is_empty());
    }

    #[test]
    fn leader_crash_triggers_new_election() {
        let mut c = Cluster::new(5, 2);
        let leader = c.run_until_leader(500).unwrap();
        c.propose(leader, b"before".to_vec()).unwrap();
        c.run_ticks(30);
        c.crash(leader);
        let new_leader = c.run_until_leader(500).expect("new leader");
        assert_ne!(new_leader, leader);
        c.propose(new_leader, b"after".to_vec()).unwrap();
        c.run_ticks(30);
        for id in c.node_ids() {
            assert_eq!(
                bytes(&c, id),
                vec![b"before".to_vec(), b"after".to_vec()],
                "node {id}"
            );
        }
    }

    #[test]
    fn minority_partition_cannot_commit() {
        let mut c = Cluster::new(5, 3);
        let leader = c.run_until_leader(500).unwrap();
        // Cut the leader plus one node off from the other three.
        let others: Vec<NodeId> = c.node_ids().into_iter().filter(|&n| n != leader).collect();
        let follower_with_leader = others[0];
        let majority: Vec<NodeId> = others[1..].to_vec();
        c.partition(&[leader, follower_with_leader], &majority);
        // Old leader proposes into the minority side.
        let _ = c.propose(leader, b"lost".to_vec());
        c.run_ticks(100);
        // The majority side elected a new leader and can commit.
        let new_leader = c.leader().expect("majority side has a leader");
        assert!(majority.contains(&new_leader), "new leader from majority");
        c.propose(new_leader, b"won".to_vec()).unwrap();
        c.run_ticks(50);
        for &id in &majority {
            assert_eq!(bytes(&c, id), vec![b"won".to_vec()], "node {id}");
        }
        // Minority never committed the lost entry.
        assert!(c.committed(leader).is_empty());

        // After healing, the minority catches up and discards "lost".
        c.heal();
        c.run_ticks(100);
        for id in c.node_ids() {
            assert_eq!(bytes(&c, id), vec![b"won".to_vec()], "node {id}");
        }
    }

    #[test]
    fn survives_heavy_message_loss() {
        let mut c = Cluster::new(3, 4);
        c.set_drop_rate(0.3);
        let leader = c.run_until_leader(5000).expect("leader despite loss");
        let _ = c.propose(leader, b"x".to_vec());
        c.run_ticks(2000);
        // At least a majority eventually commits; with retransmission via
        // heartbeats all live nodes converge.
        let committed_count = c
            .node_ids()
            .iter()
            .filter(|&&id| bytes(&c, id) == vec![b"x".to_vec()])
            .count();
        assert!(committed_count >= 2, "only {committed_count} committed");
    }

    #[test]
    fn lagging_follower_catches_up_via_snapshot() {
        // Pre-vote keeps the cut-off follower from inflating its term, so
        // the leader survives the heal and the catch-up path is
        // deterministically InstallSnapshot (not re-election plus ordinary
        // replication from an uncompacted log).
        let config = RaftConfig {
            pre_vote: true,
            ..RaftConfig::default()
        };
        let mut c = Cluster::with_config(3, 6, config);
        let leader = c.run_until_leader(500).unwrap();
        // Cut one follower off.
        let lagging = c.node_ids().into_iter().find(|&n| n != leader).unwrap();
        let others: Vec<NodeId> = c.node_ids().into_iter().filter(|&n| n != lagging).collect();
        c.partition(&[lagging], &others);
        for i in 0..10u8 {
            c.propose(leader, vec![i]).unwrap();
        }
        c.run_ticks(50);
        // Compact the leader's log beyond what the follower has.
        let discarded = c.take_snapshot(leader, b"state@10".to_vec());
        assert_eq!(discarded, 10);
        assert_eq!(c.node(leader).snapshot_index(), 10);
        assert_eq!(c.node(leader).log_len(), 0);

        // More entries after the snapshot point.
        c.propose(leader, b"post".to_vec()).unwrap();
        c.run_ticks(30);

        // Heal: the follower must be restored via InstallSnapshot, then
        // replicate the post-snapshot entry normally.
        c.heal();
        c.run_ticks(100);
        let snap = c
            .take_installed_snapshot(lagging)
            .expect("snapshot was installed");
        assert_eq!(snap.last_included_index, 10);
        assert_eq!(snap.data, b"state@10");
        assert_eq!(c.node(lagging).snapshot_index(), 10);
        // The post-snapshot entry arrived through the normal path.
        assert_eq!(bytes(&c, lagging), vec![b"post".to_vec()]);
        // The healthy follower replicated everything normally and saw all 11.
        let healthy = others.into_iter().find(|&n| n != leader).unwrap();
        assert_eq!(c.committed(healthy).len(), 11);
    }

    #[test]
    fn pre_vote_prevents_term_inflation_by_partitioned_node() {
        let config = RaftConfig {
            pre_vote: true,
            ..RaftConfig::default()
        };
        let mut c = Cluster::with_config(5, 7, config);
        let leader = c.run_until_leader(1000).unwrap();
        let stable_term = c.node(leader).term();

        // Isolate one follower for a long time.
        let isolated = c.node_ids().into_iter().find(|&n| n != leader).unwrap();
        let rest: Vec<NodeId> = c
            .node_ids()
            .into_iter()
            .filter(|&n| n != isolated)
            .collect();
        c.partition(&[isolated], &rest);
        c.run_ticks(500);
        // With PreVote the isolated node never wins a pre-vote majority, so
        // its term stays put instead of climbing by hundreds.
        assert_eq!(c.node(isolated).term(), stable_term);

        // Healing does not depose the stable leader.
        c.heal();
        c.run_ticks(100);
        assert_eq!(c.leader(), Some(leader));
        assert_eq!(c.node(leader).term(), stable_term);
    }

    #[test]
    fn without_pre_vote_partitioned_node_inflates_terms() {
        // The contrast case documenting why PreVote matters.
        let mut c = Cluster::new(5, 8);
        let leader = c.run_until_leader(1000).unwrap();
        let stable_term = c.node(leader).term();
        let isolated = c.node_ids().into_iter().find(|&n| n != leader).unwrap();
        let rest: Vec<NodeId> = c
            .node_ids()
            .into_iter()
            .filter(|&n| n != isolated)
            .collect();
        c.partition(&[isolated], &rest);
        c.run_ticks(500);
        assert!(c.node(isolated).term() > stable_term + 5);
    }

    #[test]
    fn logs_are_prefix_consistent() {
        // Safety: committed logs at any two nodes are prefixes of each
        // other.
        let mut c = Cluster::new(5, 5);
        c.set_drop_rate(0.1);
        for round in 0..10u8 {
            if let Some(leader) = c.run_until_leader(1000) {
                let _ = c.propose(leader, vec![round]);
            }
            c.run_ticks(20);
        }
        c.set_drop_rate(0.0);
        c.run_ticks(200);
        let logs: Vec<Vec<Arc<[u8]>>> = c.node_ids().iter().map(|&id| c.committed(id)).collect();
        for a in &logs {
            for b in &logs {
                let n = a.len().min(b.len());
                assert_eq!(&a[..n], &b[..n], "diverging committed prefixes");
            }
        }
    }
}
